(* The fast planner: compiled Movement evaluators, the certified
   branch-and-bound lower bound, the shared domain pool, and — the
   acceptance criterion of the speedup work — exact plan equivalence
   with the reference path (Movement.analyze per evaluation, no
   pruning, serial) on every workload x preset. *)

open Helpers

let qcheck = QCheck_alcotest.to_alcotest

let presets =
  List.map
    (fun name -> (name, Option.get (Arch.Presets.by_name name)))
    [ "cpu"; "gpu"; "npu" ]

let workloads () =
  List.map
    (fun (c : Workloads.Gemm_configs.t) ->
      (c.name, Workloads.Gemm_configs.chain ~softmax:false c))
    Workloads.Gemm_configs.all
  @ List.map
      (fun (c : Workloads.Conv_configs.t) ->
        (c.name, Workloads.Conv_configs.chain ~relu:false c))
      Workloads.Conv_configs.all

(* A pool with real worker domains even on a single-core CI machine
   (where [Pool.global] has one lane and runs everything inline). *)
let with_pool f =
  let pool = Util.Pool.create ~domains:3 () in
  Fun.protect ~finally:(fun () -> Util.Pool.shutdown pool) (fun () -> f pool)

(* ----------------------------------------------------------------- *)
(* Compiled evaluator = Movement.analyze, bit for bit                 *)
(* ----------------------------------------------------------------- *)

(* Exact [=] on the float DV: the evaluator performs the identical
   float operations in the identical order, and the planner relies on
   that to swap engines without moving any plan. *)
let prop_compile_matches_analyze name arb =
  QCheck.Test.make
    ~name:("compiled evaluator = analyze on random " ^ name)
    ~count:300 arb
    (fun (chain, seed) ->
      let prng = Util.Prng.create ~seed in
      let perm = Test_properties.random_perm_of prng chain in
      let tiling = Test_properties.random_tiling_of prng chain in
      let r = Analytical.Movement.analyze chain ~perm ~tiling in
      let ev = Analytical.Movement.compile chain ~perm in
      let dv, mu = Analytical.Movement.eval ev ~tiling in
      dv = r.Analytical.Movement.dv_bytes
      && mu = r.Analytical.Movement.mu_bytes)

let prop_compile_matches_analyze_charged =
  QCheck.Test.make
    ~name:"compiled evaluator = analyze with charged intermediates"
    ~count:150 Test_properties.arbitrary_conv_setup
    (fun (chain, seed) ->
      let prng = Util.Prng.create ~seed in
      let perm = Test_properties.random_perm_of prng chain in
      let tiling = Test_properties.random_tiling_of prng chain in
      let r =
        Analytical.Movement.analyze ~charge_intermediates:true chain ~perm
          ~tiling
      in
      let ev =
        Analytical.Movement.compile ~charge_intermediates:true chain ~perm
      in
      let dv, mu = Analytical.Movement.eval ev ~tiling in
      dv = r.Analytical.Movement.dv_bytes
      && mu = r.Analytical.Movement.mu_bytes)

(* [eval_array] is the allocation-light path the solver actually
   descends on; it must agree with the Tiling-keyed entry point. *)
let prop_eval_array_matches_eval =
  QCheck.Test.make ~name:"eval_array = eval through axis_names"
    ~count:150 Test_properties.arbitrary_gemm_setup
    (fun (chain, seed) ->
      let prng = Util.Prng.create ~seed in
      let perm = Test_properties.random_perm_of prng chain in
      let tiling = Test_properties.random_tiling_of prng chain in
      let ev = Analytical.Movement.compile chain ~perm in
      let tiles =
        Array.map
          (fun axis -> Analytical.Tiling.get tiling axis)
          (Analytical.Movement.axis_names ev)
      in
      Analytical.Movement.eval_array ev tiles
      = Analytical.Movement.eval ev ~tiling)

(* ----------------------------------------------------------------- *)
(* Batched SoA lanes = eval_array, bit for bit                        *)
(* ----------------------------------------------------------------- *)

(* The solver's batched engine sweeps whole candidate frontiers through
   [batch_sweep]'s memoized lanes; zero plan drift requires every lane
   to reproduce [eval_array]'s floats exactly ([=], not approximately).
   The property drives a random base point, a random axis frontier and
   a probe through one compiled batch, and additionally pins the
   cutoff contract: with the cutoff set to a lane's exact DV, lanes at
   or below it stay exact and lanes above it report [infinity]. *)
let prop_batch_matches_eval_array name arb =
  QCheck.Test.make
    ~name:("batched lanes = eval_array on random " ^ name)
    ~count:200 arb
    (fun (chain, seed) ->
      let prng = Util.Prng.create ~seed in
      let perm = Test_properties.random_perm_of prng chain in
      let ev = Analytical.Movement.compile chain ~perm in
      let axes = Analytical.Movement.axis_names ev in
      let n = Array.length axes in
      let base =
        Array.map
          (fun axis ->
            1 + Util.Prng.int prng ~bound:(Ir.Chain.extent_of chain axis))
          axes
      in
      let b = Analytical.Movement.compile_batch ev in
      let bdv, bmu = Analytical.Movement.batch_load b base in
      let load_ok = (bdv, bmu) = Analytical.Movement.eval_array ev base in
      let axis = Util.Prng.int prng ~bound:n in
      let extent = Ir.Chain.extent_of chain axes.(axis) in
      let count = 1 + Util.Prng.int prng ~bound:8 in
      let values =
        Array.init count (fun _ -> 1 + Util.Prng.int prng ~bound:extent)
      in
      let lane_exact v =
        let lane = Array.copy base in
        lane.(axis) <- v;
        Analytical.Movement.eval_array ev lane
      in
      let dv =
        Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout count
      in
      let mu = Bigarray.Array1.create Bigarray.int Bigarray.c_layout count in
      ignore (Analytical.Movement.batch_sweep b ~axis ~values ~count ~dv ~mu ());
      let sweep_ok = ref true in
      Array.iteri
        (fun k v ->
          if (dv.{k}, mu.{k}) <> lane_exact v then sweep_ok := false)
        values;
      let probe_ok =
        Analytical.Movement.batch_probe b ~axis values.(0)
        = lane_exact values.(0)
      in
      (* Cutoff contract: exact at or below, infinity above. *)
      let cutoff = fst (lane_exact values.(0)) in
      ignore
        (Analytical.Movement.batch_sweep b ~axis ~values ~count ~cutoff ~dv
           ~mu ());
      let cutoff_ok = ref true in
      Array.iteri
        (fun k v ->
          let exact, _ = lane_exact v in
          let want = if exact <= cutoff then exact else infinity in
          if dv.{k} <> want then cutoff_ok := false)
        values;
      load_ok && !sweep_ok && probe_ok && !cutoff_ok)

(* ----------------------------------------------------------------- *)
(* The branch-and-bound bound never undercuts a real point            *)
(* ----------------------------------------------------------------- *)

(* Random search box, mimicking the solver's use: non-fused axes stay
   at 1, full-tile axes are pinned at their (possibly capped) bound,
   the rest vary in [1, bound].  Whenever the bound speaks (Some), it
   must sit at or below the DV of every point the solver could visit —
   here one random point per trial. *)
let prop_lower_bound_sound name arb =
  QCheck.Test.make
    ~name:("dv_lower_bound is sound on random " ^ name)
    ~count:300 arb
    (fun (chain, seed) ->
      let prng = Util.Prng.create ~seed in
      let perm = Test_properties.random_perm_of prng chain in
      let ev = Analytical.Movement.compile chain ~perm in
      let axes = Analytical.Movement.axis_names ev in
      let n = Array.length axes in
      let fused = Analytical.Movement.fused_axes chain in
      let full_tile = Analytical.Permutations.full_tile_axes chain in
      let bounds = Array.make n 1 and fixed = Array.make n true in
      Array.iteri
        (fun i axis ->
          if List.mem axis fused then begin
            let extent = Ir.Chain.extent_of chain axis in
            let b = 1 + Util.Prng.int prng ~bound:extent in
            bounds.(i) <- b;
            fixed.(i) <- List.mem axis full_tile || b <= 1
          end)
        axes;
      let tiles =
        Array.mapi
          (fun i _ ->
            if fixed.(i) then bounds.(i)
            else 1 + Util.Prng.int prng ~bound:bounds.(i))
          axes
      in
      let dv, _ = Analytical.Movement.eval_array ev tiles in
      match Analytical.Movement.dv_lower_bound ev ~bounds ~fixed with
      | None -> true (* gate open: never wrong, just never prunes *)
      | Some lb -> lb <= dv)

(* ----------------------------------------------------------------- *)
(* Plan equivalence: fast path = reference path                       *)
(* ----------------------------------------------------------------- *)

let plan_signature (p : Analytical.Planner.plan) =
  (p.perm, Analytical.Tiling.bindings p.tiling)

let check_same_plan what (fast : Analytical.Planner.plan)
    (reference : Analytical.Planner.plan) =
  check_true
    (Printf.sprintf "%s: same order and tiling" what)
    (plan_signature fast = plan_signature reference);
  check_true
    (Printf.sprintf "%s: bit-identical DV" what)
    (fast.movement.Analytical.Movement.dv_bytes
    = reference.movement.Analytical.Movement.dv_bytes);
  check_int
    (Printf.sprintf "%s: identical MU" what)
    reference.movement.Analytical.Movement.mu_bytes
    fast.movement.Analytical.Movement.mu_bytes;
  check_int
    (Printf.sprintf "%s: same order space" what)
    reference.candidates_evaluated fast.candidates_evaluated

(* The acceptance sweep: for every workload x preset, the multilevel
   plan of the fast path (compiled evaluators + pruning + pool) is
   identical — order, tiling, exact DV/MU — to the pre-change serial
   reference planner.  Slow: the reference path re-runs the full
   un-pruned Movement.analyze search. *)
let multilevel_equivalence_case (preset, machine) =
  slow_case
    (Printf.sprintf "multilevel plans on %s match the reference planner"
       preset)
    (fun () ->
      with_pool (fun pool ->
          List.iter
            (fun (name, chain) ->
              let reference =
                Analytical.Planner.optimize_multilevel ~prune:false
                  ~engine:`Reference chain ~machine
              in
              let fast =
                Analytical.Planner.optimize_multilevel ~pool chain ~machine
              in
              check_int
                (Printf.sprintf "%s/%s: level count" preset name)
                (List.length reference) (List.length fast);
              List.iter2
                (fun (r : Analytical.Planner.level_plan)
                     (f : Analytical.Planner.level_plan) ->
                  check_same_plan
                    (Printf.sprintf "%s/%s@%s" preset name
                       r.level.Arch.Level.name)
                    f.plan r.plan;
                  (* Each order's bound check costs one model eval, and
                     the batched engine honestly counts work the
                     single-candidate path skips: the incumbent's own
                     lane in every axis sweep and the base reload after
                     an adoption — at most a couple of lanes per axis
                     visit, so well under half the sweep's lane count.
                     The fast path may therefore exceed the reference
                     by one eval per order plus that per-sweep margin,
                     and never by a blowup. *)
                  check_true
                    (Printf.sprintf "%s/%s@%s: pruning never inflates evals"
                       preset name r.level.Arch.Level.name)
                    (f.plan.solver_evals
                    <= r.plan.solver_evals + r.plan.candidates_evaluated
                       + (r.plan.solver_evals / 2)))
                reference fast)
            (workloads ())))

(* Same exactness at a single level through [explore]: the pooled,
   pruned ranking keeps the identical head. *)
let explore_head_cases =
  List.map
    (fun (label, chain) ->
      case ("pooled pruned explore keeps the best order on " ^ label)
        (fun () ->
          with_pool (fun pool ->
              List.iter
                (fun (preset, machine) ->
                  let capacity_bytes =
                    (Arch.Machine.primary_on_chip machine)
                      .Arch.Level.capacity_bytes
                  in
                  let reference, ref_stats =
                    Analytical.Planner.explore chain ~capacity_bytes
                      ~prune:false ~engine:`Reference ()
                  in
                  let fast =
                    Analytical.Planner.optimize chain ~capacity_bytes ~pool ()
                  in
                  let best = List.hd reference in
                  check_true
                    (Printf.sprintf "%s/%s: same winner" preset label)
                    (plan_signature fast
                    = ( best.Analytical.Planner.c_perm,
                        Analytical.Tiling.bindings
                          best.Analytical.Planner.c_tiling ));
                  check_true
                    (Printf.sprintf "%s/%s: same winning DV" preset label)
                    (fast.movement.Analytical.Movement.dv_bytes
                    = best.Analytical.Planner.c_dv_bytes);
                  check_int
                    (Printf.sprintf "%s/%s: full order space considered"
                       preset label)
                    ref_stats.Analytical.Planner.evaluated
                    fast.candidates_evaluated)
                presets)))
    [
      ("gemm", small_gemm_chain ());
      ("softmax gemm", small_gemm_chain ~softmax:true ());
      ("conv", small_conv_chain ());
      ("figure2", figure2_chain ());
    ]

(* Tie-aware pruning: on a real (non-gapped) GEMM the box lower bound
   ties the winner's DV for whole classes of orders, so in-descent
   pruning only fires at all because ties behind the tie-break are
   excludable.  The pruned plan must keep the exact reference winner,
   actually prune, and still emit a certificate the independent
   checker accepts. *)
let tie_prune_case =
  case "tie pruning fires on a real GEMM and the certificate checks"
    (fun () ->
      let c = List.hd Workloads.Gemm_configs.all in
      let chain = Workloads.Gemm_configs.chain ~softmax:false c in
      List.iter
        (fun (preset, machine) ->
          let level = Arch.Machine.primary_on_chip machine in
          let capacity_bytes = level.Arch.Level.capacity_bytes in
          let plan = Analytical.Planner.optimize chain ~capacity_bytes () in
          let reference, _ =
            Analytical.Planner.explore chain ~capacity_bytes ~prune:false
              ~engine:`Reference ()
          in
          let best = List.hd reference in
          check_true
            (preset ^ ": pruned plan keeps the reference winner")
            (plan_signature plan
            = ( best.Analytical.Planner.c_perm,
                Analytical.Tiling.bindings best.Analytical.Planner.c_tiling
              ));
          check_true
            (preset ^ ": tie pruning fired")
            (plan.Analytical.Planner.perms_pruned > 0);
          check_true
            (preset ^ ": certificate checks clean after pruning")
            (Verify.Cert_check.check_level_plans chain
               [
                 {
                   Analytical.Planner.level;
                   plan;
                   feed_bandwidth_gbps = 1.0;
                   cost_seconds = 0.0;
                 };
               ]
            = []))
        presets)

(* The remaining engine pairing: `Compiled (single-candidate descent,
   no batch memoization) must land on the same plans as the default
   batched engine — the batch is a pure evaluation-strategy change. *)
let compiled_engine_case =
  slow_case "single-candidate engine reproduces the batched plans"
    (fun () ->
      let machine = List.assoc "cpu" presets in
      List.iter
        (fun (name, chain) ->
          let batched =
            Analytical.Planner.optimize_multilevel chain ~machine
          in
          let compiled =
            Analytical.Planner.optimize_multilevel ~engine:`Compiled chain
              ~machine
          in
          check_int
            (name ^ ": level count")
            (List.length batched) (List.length compiled);
          List.iter2
            (fun (b : Analytical.Planner.level_plan)
                 (c : Analytical.Planner.level_plan) ->
              check_same_plan
                (Printf.sprintf "%s@%s" name b.level.Arch.Level.name)
                c.plan b.plan)
            batched compiled)
        (workloads ()))

(* Pruning bookkeeping: every order is either solved or pruned, and
   pruned ones spent no descent. *)
let prune_accounting_case =
  case "explore accounts every order as solved or pruned" (fun () ->
      let chain = small_conv_chain () in
      List.iter
        (fun (preset, machine) ->
          let capacity_bytes =
            (Arch.Machine.primary_on_chip machine).Arch.Level.capacity_bytes
          in
          let ranked, stats =
            Analytical.Planner.explore chain ~capacity_bytes ~prune:true ()
          in
          check_int
            (preset ^ ": ranked + pruned = evaluated")
            stats.Analytical.Planner.evaluated
            (List.length ranked + stats.Analytical.Planner.pruned);
          check_true
            (preset ^ ": pruning is a subset")
            (stats.Analytical.Planner.pruned >= 0
            && stats.Analytical.Planner.pruned
               < stats.Analytical.Planner.evaluated))
        presets)

(* ----------------------------------------------------------------- *)
(* The domain pool                                                    *)
(* ----------------------------------------------------------------- *)

exception Boom of int

let pool_tests =
  [
    case "run returns results in index order" (fun () ->
        with_pool (fun pool ->
            check_int "lanes" 3 (Util.Pool.size pool);
            let out = Util.Pool.run pool (fun i -> i * i) 100 in
            Array.iteri (fun i v -> check_int "square" (i * i) v) out;
            check_int "length" 100 (Array.length out)));
    case "empty and singleton jobs" (fun () ->
        with_pool (fun pool ->
            check_int "empty" 0 (Array.length (Util.Pool.run pool succ 0));
            check_int "singleton" 1 (Util.Pool.run pool succ 1).(0)));
    case "a raising task re-raises after the job settles" (fun () ->
        with_pool (fun pool ->
            match Util.Pool.run pool (fun i -> if i = 17 then raise (Boom i) else i) 64 with
            | _ -> Alcotest.fail "expected Boom"
            | exception Boom 17 -> ()
            | exception e ->
                Alcotest.failf "wrong exception: %s" (Printexc.to_string e)));
    case "nested run falls back inline and still answers" (fun () ->
        with_pool (fun pool ->
            let out =
              Util.Pool.run pool
                (fun i ->
                  Array.fold_left ( + ) 0
                    (Util.Pool.run pool (fun j -> (10 * i) + j) 4))
                8
            in
            Array.iteri
              (fun i v -> check_int "nested sum" ((40 * i) + 6) v)
              out));
    case "max_workers:1 is serial but correct" (fun () ->
        with_pool (fun pool ->
            let out = Util.Pool.run ~max_workers:1 pool (fun i -> i + 1) 32 in
            Array.iteri (fun i v -> check_int "succ" (i + 1) v) out));
    case "a single-lane pool runs everything inline" (fun () ->
        let pool = Util.Pool.create ~domains:1 () in
        let out = Util.Pool.run pool (fun i -> 2 * i) 16 in
        Array.iteri (fun i v -> check_int "double" (2 * i) v) out;
        Util.Pool.shutdown pool);
    case "shutdown is idempotent and leaves run usable inline" (fun () ->
        let pool = Util.Pool.create ~domains:2 () in
        Util.Pool.shutdown pool;
        Util.Pool.shutdown pool;
        let out = Util.Pool.run pool (fun i -> i - 1) 8 in
        Array.iteri (fun i v -> check_int "pred" (i - 1) v) out);
    case "the global pool answers and has at least one lane" (fun () ->
        let pool = Util.Pool.global () in
        check_true "size" (Util.Pool.size pool >= 1);
        let out = Util.Pool.run pool (fun i -> 3 * i) 10 in
        check_int "value" 27 out.(9));
  ]

(* ----------------------------------------------------------------- *)
(* Permutation memoization                                            *)
(* ----------------------------------------------------------------- *)

let memo_tests =
  [
    case "candidates and classify are memoized per structure" (fun () ->
        let chain = small_gemm_chain () in
        check_true "candidates shared"
          (Analytical.Permutations.candidates chain
          == Analytical.Permutations.candidates chain);
        check_true "classify shared"
          (Analytical.Permutations.classify chain
          == Analytical.Permutations.classify chain);
        (* An equal but distinct chain value hits the same cache entry:
           the key is the chain's structure, not its identity. *)
        check_true "structural key"
          (Analytical.Permutations.candidates chain
          == Analytical.Permutations.candidates (small_gemm_chain ())));
    case "memoization does not leak across structures" (fun () ->
        check_true "different chains differ"
          (Analytical.Permutations.candidates (small_gemm_chain ())
          != Analytical.Permutations.candidates (small_conv_chain ())));
  ]

(* ----------------------------------------------------------------- *)
(* Strict verification over pooled-planner output                     *)
(* ----------------------------------------------------------------- *)

let lint_strict_cases =
  List.map
    (fun (preset, machine) ->
      case ("pooled plans pass lint --strict on " ^ preset) (fun () ->
          with_pool (fun pool ->
              List.iter
                (fun chain ->
                  match
                    Service.Batch.compile ~pool
                      ~verify:Service.Batch.Verify_strict ~machine chain
                  with
                  | Ok r ->
                      check_true
                        (chain.Ir.Chain.name ^ " freshly compiled")
                        (r.Service.Batch.source = Service.Batch.Compiled);
                      check_true
                        (chain.Ir.Chain.name ^ " no error diagnostics")
                        (Verify.Diagnostic.ok r.Service.Batch.verification)
                  | Error e ->
                      Alcotest.failf "%s: %s" chain.Ir.Chain.name
                        (Service.Error.to_string e))
                [
                  small_gemm_chain ();
                  small_gemm_chain ~softmax:true ();
                  small_conv_chain ();
                  figure2_chain ();
                ])))
    presets

let suites =
  [
    ( "planner_fast.evaluator",
      List.map qcheck
        [
          prop_compile_matches_analyze "gemm chains"
            Test_properties.arbitrary_gemm_setup;
          prop_compile_matches_analyze "conv chains"
            Test_properties.arbitrary_conv_setup;
          prop_compile_matches_analyze_charged;
          prop_eval_array_matches_eval;
          prop_batch_matches_eval_array "gemm chains"
            Test_properties.arbitrary_gemm_setup;
          prop_batch_matches_eval_array "conv chains"
            Test_properties.arbitrary_conv_setup;
          prop_lower_bound_sound "gemm chains"
            Test_properties.arbitrary_gemm_setup;
          prop_lower_bound_sound "conv chains"
            Test_properties.arbitrary_conv_setup;
        ] );
    ( "planner_fast.equivalence",
      explore_head_cases
      @ [ prune_accounting_case; tie_prune_case; compiled_engine_case ]
      @ List.map multilevel_equivalence_case presets );
    ("planner_fast.pool", pool_tests);
    ("planner_fast.memo", memo_tests);
    ("planner_fast.lint", lint_strict_cases);
  ]
