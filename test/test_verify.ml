(* The verifier test suite (lib/verify):

   - the differential block-walk cross-check on 22 chain configurations
     x the three machine presets: the walk's peak working set must equal
     the analytical MU exactly, and the edge-aware DV must bracket the
     model within the documented tolerance (the issue's acceptance bar);
   - the closed-form cross-check (CHIM024) on a grid of two-GEMM shapes;
   - full-driver runs over planner-compiled workloads;
   - property fuzz: random small chains pushed through plan -> verify
     come back clean from every pass;
   - seeded-bug fixtures: forged IR, decompositions, cached analyses and
     codegen structures that strict verification must reject. *)

open Helpers

let qcheck = QCheck_alcotest.to_alcotest
let presets = Arch.Presets.all

module D = Verify.Diagnostic

let has_code code ds = List.exists (fun (d : D.t) -> d.code = code) ds

(* ----------------------------------------------------------------- *)
(* Differential model checking: the config sweep                      *)
(* ----------------------------------------------------------------- *)

(* (batch, m, n, k, l, softmax): extents of 1, primes, powers of two
   and mixed shapes — the corners where edge blocks appear. *)
let gemm_cfgs =
  [
    (1, 8, 8, 8, 8, false);
    (2, 12, 6, 5, 10, false);
    (1, 1, 16, 16, 16, false);
    (3, 7, 11, 13, 5, false);
    (1, 16, 1, 16, 4, false);
    (2, 5, 5, 5, 5, true);
    (1, 127, 8, 8, 8, false);
    (4, 9, 6, 12, 3, true);
    (1, 32, 32, 32, 32, false);
    (2, 17, 4, 19, 6, false);
    (1, 6, 10, 14, 21, false);
    (2, 3, 3, 3, 3, true);
    (1, 64, 16, 8, 24, false);
    (5, 4, 8, 2, 6, false);
  ]

(* (ic, h, w, oc1, oc2, st1, st2, k1, k2, relu): strided and unit
   windows, odd spatial extents, relu on and off. *)
let conv_cfgs =
  [
    (3, 9, 9, 4, 3, 2, 1, 3, 3, false);
    (1, 7, 7, 2, 2, 1, 1, 3, 3, true);
    (4, 11, 11, 8, 4, 1, 2, 3, 1, false);
    (2, 8, 8, 3, 5, 2, 2, 1, 3, false);
    (3, 13, 13, 4, 4, 1, 1, 1, 1, false);
    (1, 9, 7, 6, 2, 1, 1, 3, 3, true);
    (2, 10, 10, 2, 3, 2, 1, 1, 1, false);
    (3, 15, 15, 5, 6, 1, 2, 3, 3, false);
  ]

let sweep_chains () =
  List.mapi
    (fun i (b, m, n, k, l, softmax) ->
      Ir.Chain.batch_gemm_chain
        ~name:(Printf.sprintf "dg%d" i)
        ~batch:b ~m ~n ~k ~l ~softmax ())
    gemm_cfgs
  @ List.mapi
      (fun i (ic, h, w, oc1, oc2, st1, st2, k1, k2, relu) ->
        Ir.Chain.conv_chain
          ~name:(Printf.sprintf "dc%d" i)
          ~batch:1 ~ic ~h ~w ~oc1 ~oc2 ~st1 ~st2 ~k1 ~k2 ~relu ())
      conv_cfgs

let diff_on machine (chain : Ir.Chain.t) =
  match Chimera.Advisor.heuristic_plan ~machine chain with
  | Error msg ->
      Alcotest.failf "%s: heuristic plan failed: %s" chain.name msg
  | Ok plan -> (
      let open Analytical.Planner in
      let ds = Verify.Plan_check.check_plan chain plan in
      check_true (chain.name ^ ": plan check clean") (D.ok ds);
      let ds =
        Verify.Diff_check.check chain ~perm:plan.perm ~tiling:plan.tiling
          ~movement:plan.movement
      in
      check_true (chain.name ^ ": differential clean") (D.ok ds);
      match
        Verify.Diff_check.simulate chain ~perm:plan.perm ~tiling:plan.tiling
      with
      | None -> Alcotest.failf "%s: block walk over budget" chain.name
      | Some sim ->
          (* The acceptance bar, asserted directly rather than through
             the absence of diagnostics. *)
          check_int
            (chain.name ^ ": simulated MU = analytical MU")
            plan.movement.Analytical.Movement.mu_bytes
            sim.Verify.Diff_check.mu_bytes;
          let tol = Verify.Diff_check.default_dv_tolerance chain in
          let model = sim.Verify.Diff_check.model_dv_bytes in
          let edge = sim.Verify.Diff_check.edge_dv_bytes in
          check_true
            (chain.name ^ ": edge DV <= model DV")
            (edge <= model *. (1.0 +. 1e-9));
          check_true
            (chain.name ^ ": model DV within documented tolerance")
            (model <= tol *. edge *. (1.0 +. 1e-9)))

let differential_tests =
  List.map
    (fun (aname, machine) ->
      case
        (Printf.sprintf "sweep: %d configs on %s"
           (List.length gemm_cfgs + List.length conv_cfgs)
           aname)
        (fun () -> List.iter (diff_on machine) (sweep_chains ())))
    presets
  @ [
      case "closed-form cross-check over a shape grid" (fun () ->
          List.iter
            (fun capacity_elems ->
              List.iter
                (fun (m, n, k, l) ->
                  let ds =
                    Verify.Diff_check.check_closed_form ~m ~n ~k ~l
                      ~capacity_elems ()
                  in
                  check_true
                    (Printf.sprintf "m=%d n=%d k=%d l=%d cap=%d" m n k l
                       capacity_elems)
                    (D.ok ds))
                [
                  (512, 64, 64, 512);
                  (2048, 2048, 2048, 2048);
                  (128, 128, 128, 128);
                  (1024, 64, 512, 256);
                  (64, 8, 8, 64);
                ])
            [ 16 * 1024; 96 * 1024; 512 * 1024 ]);
    ]

(* ----------------------------------------------------------------- *)
(* The driver over planner-compiled workloads                         *)
(* ----------------------------------------------------------------- *)

let driver_tests =
  List.map
    (fun (aname, machine) ->
      case ("compiled workloads verify clean on " ^ aname) (fun () ->
          List.iter
            (fun (chain : Ir.Chain.t) ->
              let compiled = Chimera.Compiler.optimize ~machine chain in
              let ds = Verify.Driver.check_compiled compiled in
              check_true
                (chain.name ^ " clean: " ^ D.summary ds)
                (D.ok ds))
            [
              small_gemm_chain ();
              small_gemm_chain ~softmax:true ();
              small_conv_chain ();
              figure2_chain ();
            ]))
    presets

(* ----------------------------------------------------------------- *)
(* Property fuzz: random chains through plan -> verify                *)
(* ----------------------------------------------------------------- *)

let print_chain (chain : Ir.Chain.t) =
  Format.asprintf "%a" Ir.Chain.pp chain

let gemm_gen =
  QCheck.Gen.(
    map
      (fun (b, m, n, k, l, softmax) ->
        Ir.Chain.batch_gemm_chain ~name:"fuzz-gemm" ~batch:b ~m ~n ~k ~l
          ~softmax ())
      (tup6 (int_range 1 3) (int_range 1 12) (int_range 1 12)
         (int_range 1 12) (int_range 1 12) bool))

let conv_gen =
  QCheck.Gen.(
    map
      (fun ((ic, h, w, oc1, oc2), (st1, st2, k1, k2, relu)) ->
        let h = max h (k1 + 2) and w = max w (k1 + 2) in
        Ir.Chain.conv_chain ~name:"fuzz-conv" ~batch:1 ~ic ~h ~w ~oc1 ~oc2
          ~st1 ~st2 ~k1 ~k2 ~relu ())
      (tup2
         (tup5 (int_range 1 3) (int_range 5 10) (int_range 5 10)
            (int_range 1 4) (int_range 1 3))
         (tup5 (int_range 1 2) (int_range 1 2)
            (oneofl [ 1; 3 ])
            (oneofl [ 1; 3 ])
            bool)))

(* Plan the chain on the last degradation rung (cheap, deterministic),
   rebuild the kernel exactly as the service would, and demand that all
   four verifier passes come back clean. *)
let verify_clean (chain, mi) =
  let _, machine = List.nth presets (mi mod List.length presets) in
  match Chimera.Advisor.heuristic_unit_plan ~machine chain with
  | Error _ -> true (* capacity genuinely too small: nothing to verify *)
  | Ok up ->
      let registry =
        Chimera.Compiler.registry_for Chimera.Config.default
      in
      let u =
        Chimera.Compiler.kernel_of_unit_plan ~machine ~registry chain up
      in
      D.ok (Verify.Driver.check_unit u)

let fuzz_arbitrary gen =
  QCheck.make
    ~print:(fun (chain, mi) ->
      Printf.sprintf "%s on %s" (print_chain chain)
        (fst (List.nth presets (mi mod List.length presets))))
    QCheck.Gen.(tup2 gen (int_range 0 2))

let fuzz_tests =
  [
    qcheck
      (QCheck.Test.make ~count:60
         ~name:"random GEMM chains verify clean after heuristic planning"
         (fuzz_arbitrary gemm_gen) verify_clean);
    qcheck
      (QCheck.Test.make ~count:40
         ~name:"random conv chains verify clean after heuristic planning"
         (fuzz_arbitrary conv_gen) verify_clean);
  ]

(* ----------------------------------------------------------------- *)
(* Seeded-bug fixtures                                                *)
(* ----------------------------------------------------------------- *)

let seeded_bug_tests =
  [
    case "forged IR: output indexed by a reduction axis is rejected"
      (fun () ->
        let chain =
          Ir.Chain.single_batch_gemm ~name:"bug-ir" ~batch:2 ~m:8 ~n:8 ~k:8
            ()
        in
        (* Bypass Chain.make's validation by rebuilding the records
           directly — the forgery a marshalled artifact could carry. *)
        let stage = List.hd chain.Ir.Chain.stages in
        let op = stage.Ir.Chain.op in
        let forged_op =
          {
            op with
            Ir.Operator.output =
              {
                op.Ir.Operator.output with
                access = Ir.Access.simple [ "b"; "m"; "k" ];
              };
          }
        in
        let forged =
          {
            chain with
            Ir.Chain.stages =
              [ { stage with op = forged_op; standalone = forged_op } ];
          }
        in
        let ds = Verify.Driver.check_chain forged in
        check_false "strict would reject" (D.ok ds);
        check_true "CHIM006 reported" (has_code "CHIM006" ds));
    case "forged decomposition: out-of-range tiles are rejected" (fun () ->
        let chain = small_gemm_chain () in
        let perm = Analytical.Movement.fused_axes chain in
        let tiling =
          Analytical.Tiling.unchecked chain [ ("m", 4096); ("k", 0) ]
        in
        let ds = Verify.Plan_check.check_decomposition chain ~perm ~tiling in
        check_false "strict would reject" (D.ok ds);
        check_true "CHIM010 reported" (has_code "CHIM010" ds));
    case "forged block order: duplicate axis is rejected" (fun () ->
        let chain = small_gemm_chain () in
        let ds =
          Verify.Plan_check.check_decomposition chain
            ~perm:[ "b"; "m"; "m"; "k"; "l" ]
            ~tiling:(Analytical.Tiling.ones chain)
        in
        check_false "strict would reject" (D.ok ds);
        check_true "CHIM011 reported" (has_code "CHIM011" ds));
    case "corrupt stored analysis: DV and MU drift are rejected" (fun () ->
        let chain = small_gemm_chain () in
        let machine = Arch.Presets.xeon_gold_6240 in
        match Chimera.Advisor.heuristic_plan ~machine chain with
        | Error msg -> Alcotest.failf "heuristic plan failed: %s" msg
        | Ok plan ->
            let open Analytical.Planner in
            let m = plan.movement in
            let dv_bug =
              {
                plan with
                movement =
                  {
                    m with
                    Analytical.Movement.dv_bytes =
                      m.Analytical.Movement.dv_bytes *. 0.5;
                  };
              }
            in
            let ds = Verify.Plan_check.check_plan chain dv_bug in
            check_false "DV drift rejected" (D.ok ds);
            check_true "CHIM014 reported" (has_code "CHIM014" ds);
            let mu_bug =
              {
                plan with
                movement =
                  {
                    m with
                    Analytical.Movement.mu_bytes =
                      m.Analytical.Movement.mu_bytes + 4096;
                  };
              }
            in
            let ds = Verify.Plan_check.check_plan chain mu_bug in
            check_false "MU drift rejected" (D.ok ds);
            check_true "CHIM013 reported" (has_code "CHIM013" ds));
    case "forged codegen structure: undeclared and duplicate buffers"
      (fun () ->
        let machine = Arch.Presets.xeon_gold_6240 in
        let compiled =
          Chimera.Compiler.optimize ~machine (small_gemm_chain ())
        in
        let u = List.hd compiled.Chimera.Compiler.units in
        let s = Codegen.Source.structure u.kernel in
        let chain = u.Chimera.Compiler.sub_chain in
        let undeclared =
          { s with Codegen.Source.buffers = List.tl s.Codegen.Source.buffers }
        in
        let ds =
          Verify.Codegen_check.check_structure ~unit_name:"forged" chain
            undeclared
        in
        check_false "undeclared buffer rejected" (D.ok ds);
        check_true "CHIM030 reported" (has_code "CHIM030" ds);
        let duplicated =
          {
            s with
            Codegen.Source.buffers =
              List.hd s.Codegen.Source.buffers :: s.Codegen.Source.buffers;
          }
        in
        let ds =
          Verify.Codegen_check.check_structure ~unit_name:"forged" chain
            duplicated
        in
        check_false "duplicate buffer rejected" (D.ok ds);
        check_true "CHIM035 reported" (has_code "CHIM035" ds));
    case "corrupt cache entry: service strict mode rejects it end-to-end"
      (fun () ->
        let chain = small_gemm_chain () in
        let machine = Arch.Presets.nvidia_a100 in
        let metrics = Service.Metrics.create () in
        let cache = Service.Plan_cache.create ~metrics () in
        (match Service.Batch.compile ~cache ~metrics ~machine chain with
        | Error e ->
            Alcotest.failf "seed compile failed: %s"
              (Service.Error.to_string e)
        | Ok _ -> ());
        let fp =
          Service.Fingerprint.of_request ~chain ~machine
            ~config:Chimera.Config.default
        in
        let entry = Option.get (Service.Plan_cache.find cache fp) in
        (* Corrupt the marshalled analysis the way a stale or bit-rotted
           cache file would: the stored DV no longer matches the plan. *)
        let corrupt_lp (lp : Analytical.Planner.level_plan) =
          let open Analytical.Planner in
          let m = lp.plan.movement in
          {
            lp with
            plan =
              {
                lp.plan with
                movement =
                  {
                    m with
                    Analytical.Movement.dv_bytes =
                      m.Analytical.Movement.dv_bytes *. 0.25;
                  };
              };
          }
        in
        let corrupt_units =
          List.map
            (fun (up : Chimera.Compiler.unit_plan) ->
              {
                up with
                Chimera.Compiler.level_plans =
                  List.map corrupt_lp up.Chimera.Compiler.level_plans;
              })
            entry.Service.Plan_cache.units
        in
        Service.Plan_cache.add cache fp
          { entry with Service.Plan_cache.units = corrupt_units };
        (* Warn mode answers but attaches the findings... *)
        (match
           Service.Batch.compile ~cache ~metrics ~machine
             ~verify:Service.Batch.Verify_warn chain
         with
        | Error e ->
            Alcotest.failf "warn mode should answer: %s"
              (Service.Error.to_string e)
        | Ok r ->
            check_true "cache hit" (r.Service.Batch.source = Service.Batch.Cache);
            check_false "diagnostics attached"
              (D.ok r.Service.Batch.verification));
        (* ...strict mode rejects with the typed error. *)
        (match
           Service.Batch.compile ~cache ~metrics ~machine
             ~verify:Service.Batch.Verify_strict chain
         with
        | Ok _ -> Alcotest.fail "strict mode accepted a corrupt cache entry"
        | Error (Service.Error.Verify_failed _) -> ()
        | Error e ->
            Alcotest.failf "wrong error: %s" (Service.Error.to_string e));
        check_true "failures counted"
          (metrics.Service.Metrics.verify_failures >= 2));
  ]

(* ----------------------------------------------------------------- *)
(* Diagnostics plumbing                                               *)
(* ----------------------------------------------------------------- *)

let diagnostic_tests =
  [
    case "codes are registered, unique and well-formed" (fun () ->
        let codes = List.map fst D.registry in
        check_true "unique"
          (List.length codes
          = List.length (List.sort_uniq compare codes));
        List.iter
          (fun c ->
            check_true (c ^ " shape")
              (String.length c = 7 && String.sub c 0 4 = "CHIM"))
          codes);
    case "summary and JSON carry the code" (fun () ->
        let d =
          D.error ~code:"CHIM012" (D.loc ~part:"level L1" "g")
            "MU exceeds capacity"
        in
        check_false "not ok" (D.ok [ d ]);
        check_true "summary mentions code"
          (let s = D.summary [ d ] in
           let needle = "CHIM012" in
           let nl = String.length needle and sl = String.length s in
           let rec go i =
             i + nl <= sl && (String.sub s i nl = needle || go (i + 1))
           in
           go 0);
        match D.to_json d with
        | Util.Json.Obj fields ->
            check_true "code field"
              (List.assoc_opt "code" fields
              = Some (Util.Json.String "CHIM012"))
        | _ -> Alcotest.fail "expected an object");
  ]

let suites =
  [
    ("verify.diagnostics", diagnostic_tests);
    ("verify.differential", differential_tests);
    ("verify.driver", driver_tests);
    ("verify.fuzz", fuzz_tests);
    ("verify.fixtures", seeded_bug_tests);
  ]
