open Helpers

let ints_tests =
  [
    case "ceil_div exact" (fun () -> check_int "8/4" 2 (Util.Ints.ceil_div 8 4));
    case "ceil_div rounds up" (fun () ->
        check_int "9/4" 3 (Util.Ints.ceil_div 9 4));
    case "ceil_div of zero" (fun () ->
        check_int "0/4" 0 (Util.Ints.ceil_div 0 4));
    case "ceil_div one" (fun () -> check_int "7/1" 7 (Util.Ints.ceil_div 7 1));
    case "ceil_div rejects zero divisor" (fun () ->
        check_raises_invalid "div by 0" (fun () -> Util.Ints.ceil_div 4 0));
    case "ceil_div rejects negative dividend" (fun () ->
        check_raises_invalid "neg" (fun () -> Util.Ints.ceil_div (-1) 2));
    case "clamp inside" (fun () ->
        check_int "5 in [1,9]" 5 (Util.Ints.clamp ~lo:1 ~hi:9 5));
    case "clamp below" (fun () ->
        check_int "0 -> 1" 1 (Util.Ints.clamp ~lo:1 ~hi:9 0));
    case "clamp above" (fun () ->
        check_int "12 -> 9" 9 (Util.Ints.clamp ~lo:1 ~hi:9 12));
    case "clamp rejects inverted range" (fun () ->
        check_raises_invalid "lo>hi" (fun () -> Util.Ints.clamp ~lo:3 ~hi:1 2));
    case "pow basics" (fun () ->
        check_int "2^10" 1024 (Util.Ints.pow 2 10);
        check_int "3^0" 1 (Util.Ints.pow 3 0);
        check_int "7^1" 7 (Util.Ints.pow 7 1));
    case "pow rejects negative exponent" (fun () ->
        check_raises_invalid "neg exp" (fun () -> Util.Ints.pow 2 (-1)));
    case "gcd and lcm" (fun () ->
        check_int "gcd 12 18" 6 (Util.Ints.gcd 12 18);
        check_int "gcd 7 13" 1 (Util.Ints.gcd 7 13);
        check_int "gcd 0 5" 5 (Util.Ints.gcd 0 5);
        check_int "lcm 4 6" 12 (Util.Ints.lcm 4 6);
        check_int "lcm 0" 0 (Util.Ints.lcm 0 9));
    case "divisors of 12" (fun () ->
        Alcotest.(check (list int))
          "divisors" [ 1; 2; 3; 4; 6; 12 ]
          (Util.Ints.divisors 12));
    case "divisors of prime" (fun () ->
        Alcotest.(check (list int)) "13" [ 1; 13 ] (Util.Ints.divisors 13));
    case "divisors of square" (fun () ->
        Alcotest.(check (list int)) "16" [ 1; 2; 4; 8; 16 ]
          (Util.Ints.divisors 16));
    case "round_down_to_divisor" (fun () ->
        check_int "12@5" 4 (Util.Ints.round_down_to_divisor 12 5);
        check_int "12@6" 6 (Util.Ints.round_down_to_divisor 12 6);
        check_int "12@0" 1 (Util.Ints.round_down_to_divisor 12 0));
    case "pow2 family" (fun () ->
        check_true "1024 is pow2" (Util.Ints.is_pow2 1024);
        check_false "1000 is not" (Util.Ints.is_pow2 1000);
        check_false "0 is not" (Util.Ints.is_pow2 0);
        check_int "prev 1000" 512 (Util.Ints.prev_pow2 1000);
        check_int "next 1000" 1024 (Util.Ints.next_pow2 1000);
        check_int "next of pow2" 64 (Util.Ints.next_pow2 64));
    case "sum and prod" (fun () ->
        check_int "sum" 10 (Util.Ints.sum [ 1; 2; 3; 4 ]);
        check_int "prod" 24 (Util.Ints.prod [ 1; 2; 3; 4 ]);
        check_int "empty prod" 1 (Util.Ints.prod []));
  ]

let perm_tests =
  [
    case "factorial" (fun () ->
        check_int "0!" 1 (Util.Perm.factorial 0);
        check_int "4!" 24 (Util.Perm.factorial 4);
        check_int "10!" 3628800 (Util.Perm.factorial 10));
    case "factorial range" (fun () ->
        check_raises_invalid "21!" (fun () -> Util.Perm.factorial 21));
    case "all permutations count" (fun () ->
        check_int "3 elems" 6 (List.length (Util.Perm.all [ 1; 2; 3 ]));
        check_int "empty" 1 (List.length (Util.Perm.all []));
        check_int "4 elems" 24 (List.length (Util.Perm.all [ 1; 2; 3; 4 ])));
    case "all permutations are distinct" (fun () ->
        let perms = Util.Perm.all [ 1; 2; 3; 4 ] in
        check_int "unique" 24 (List.length (List.sort_uniq compare perms)));
    case "all permutations preserve elements" (fun () ->
        List.iter
          (fun p ->
            Alcotest.(check (list int))
              "sorted" [ 1; 2; 3 ]
              (List.sort compare p))
          (Util.Perm.all [ 3; 1; 2 ]));
    case "all refuses oversized input" (fun () ->
        check_raises_invalid "11 elems" (fun () ->
            Util.Perm.all (List.init 11 Fun.id)));
    case "interleavings" (fun () ->
        let merges = Util.Perm.interleavings [ 1; 2 ] [ 3 ] in
        check_int "count C(3,1)" 3 (List.length merges);
        List.iter
          (fun m ->
            let ones = List.filter (fun x -> x < 3) m in
            Alcotest.(check (list int)) "order kept" [ 1; 2 ] ones)
          merges);
    case "rank_of identity is zero" (fun () ->
        check_int "rank" 0 (Util.Perm.rank_of ~cmp:compare [ 1; 2; 3 ]));
    case "rank_of reverse is max" (fun () ->
        check_int "rank" 23 (Util.Perm.rank_of ~cmp:compare [ 4; 3; 2; 1 ]));
    case "rank_of middle" (fun () ->
        check_int "213" 2 (Util.Perm.rank_of ~cmp:compare [ 2; 1; 3 ]));
  ]

let prng_tests =
  [
    case "deterministic for a seed" (fun () ->
        let a = Util.Prng.create ~seed:7 and b = Util.Prng.create ~seed:7 in
        for _ = 1 to 100 do
          Alcotest.(check int64)
            "same stream" (Util.Prng.next_int64 a) (Util.Prng.next_int64 b)
        done);
    case "different seeds differ" (fun () ->
        let a = Util.Prng.create ~seed:1 and b = Util.Prng.create ~seed:2 in
        check_false "streams differ"
          (Util.Prng.next_int64 a = Util.Prng.next_int64 b));
    case "int respects bound" (fun () ->
        let g = Util.Prng.create ~seed:3 in
        for _ = 1 to 1000 do
          let v = Util.Prng.int g ~bound:17 in
          check_true "in range" (v >= 0 && v < 17)
        done);
    case "int rejects non-positive bound" (fun () ->
        let g = Util.Prng.create ~seed:3 in
        check_raises_invalid "bound 0" (fun () -> Util.Prng.int g ~bound:0));
    case "float in unit interval" (fun () ->
        let g = Util.Prng.create ~seed:4 in
        for _ = 1 to 1000 do
          let v = Util.Prng.float g in
          check_true "[0,1)" (v >= 0.0 && v < 1.0)
        done);
    case "uniform respects range" (fun () ->
        let g = Util.Prng.create ~seed:5 in
        for _ = 1 to 100 do
          let v = Util.Prng.uniform g ~lo:(-2.0) ~hi:3.0 in
          check_true "[-2,3)" (v >= -2.0 && v < 3.0)
        done);
    case "copy preserves stream" (fun () ->
        let a = Util.Prng.create ~seed:9 in
        ignore (Util.Prng.next_int64 a);
        let b = Util.Prng.copy a in
        Alcotest.(check int64)
          "same future" (Util.Prng.next_int64 a) (Util.Prng.next_int64 b));
    case "split children are independent" (fun () ->
        let parent = Util.Prng.create ~seed:10 in
        let c1 = Util.Prng.split parent in
        let c2 = Util.Prng.split parent in
        check_false "children differ"
          (Util.Prng.next_int64 c1 = Util.Prng.next_int64 c2));
    case "pick returns members" (fun () ->
        let g = Util.Prng.create ~seed:11 in
        let arr = [| 10; 20; 30 |] in
        for _ = 1 to 50 do
          check_true "member" (Array.mem (Util.Prng.pick g arr) arr)
        done);
    case "pick rejects empty" (fun () ->
        let g = Util.Prng.create ~seed:11 in
        check_raises_invalid "empty" (fun () -> Util.Prng.pick g [||]));
    case "shuffle permutes" (fun () ->
        let g = Util.Prng.create ~seed:12 in
        let arr = Array.init 20 Fun.id in
        Util.Prng.shuffle g arr;
        let sorted = Array.copy arr in
        Array.sort compare sorted;
        Alcotest.(check (array int)) "same multiset" (Array.init 20 Fun.id)
          sorted);
  ]

let stats_tests =
  [
    case "mean" (fun () ->
        check_float "mean" 2.5 (Util.Stats.mean [ 1.0; 2.0; 3.0; 4.0 ]));
    case "mean rejects empty" (fun () ->
        check_raises_invalid "empty" (fun () -> Util.Stats.mean []));
    case "geomean" (fun () ->
        check_float ~eps:1e-9 "geomean" 2.0 (Util.Stats.geomean [ 1.0; 2.0; 4.0 ]));
    case "geomean rejects non-positive" (fun () ->
        check_raises_invalid "zero" (fun () -> Util.Stats.geomean [ 1.0; 0.0 ]));
    case "stddev" (fun () ->
        check_float ~eps:1e-9 "constant" 0.0 (Util.Stats.stddev [ 3.0; 3.0 ]);
        check_float ~eps:1e-9 "pm1" 1.0 (Util.Stats.stddev [ 2.0; 4.0 ]));
    case "minimum maximum" (fun () ->
        check_float "min" (-1.0) (Util.Stats.minimum [ 3.0; -1.0; 2.0 ]);
        check_float "max" 3.0 (Util.Stats.maximum [ 3.0; -1.0; 2.0 ]));
    case "r_squared perfect" (fun () ->
        check_float "1.0" 1.0
          (Util.Stats.r_squared ~predicted:[ 1.0; 2.0; 3.0 ]
             ~measured:[ 1.0; 2.0; 3.0 ]));
    case "r_squared poor fit below perfect" (fun () ->
        let r2 =
          Util.Stats.r_squared ~predicted:[ 1.0; 1.0; 1.0 ]
            ~measured:[ 1.0; 2.0; 3.0 ]
        in
        check_true "below 1" (r2 < 1.0));
    case "r_squared mismatched lengths" (fun () ->
        check_raises_invalid "lengths" (fun () ->
            Util.Stats.r_squared ~predicted:[ 1.0 ] ~measured:[ 1.0; 2.0 ]));
    case "pearson of linear data" (fun () ->
        check_float ~eps:1e-9 "corr 1" 1.0
          (Util.Stats.pearson [ 1.0; 2.0; 3.0 ] [ 2.0; 4.0; 6.0 ]);
        check_float ~eps:1e-9 "corr -1" (-1.0)
          (Util.Stats.pearson [ 1.0; 2.0; 3.0 ] [ 6.0; 4.0; 2.0 ]));
    case "linear_fit recovers line" (fun () ->
        let slope, intercept =
          Util.Stats.linear_fit [ 0.0; 1.0; 2.0 ] [ 1.0; 3.0; 5.0 ]
        in
        check_float ~eps:1e-9 "slope" 2.0 slope;
        check_float ~eps:1e-9 "intercept" 1.0 intercept);
    case "linear_fit constant x" (fun () ->
        let slope, intercept =
          Util.Stats.linear_fit [ 2.0; 2.0 ] [ 1.0; 3.0 ]
        in
        check_float "slope" 0.0 slope;
        check_float "intercept" 2.0 intercept);
  ]

let table_tests =
  [
    case "render aligns columns" (fun () ->
        let t = Util.Table.create ~columns:[ "name"; "value" ] in
        Util.Table.add_row t [ "a"; "1" ];
        Util.Table.add_row t [ "longer"; "2" ];
        let s = Util.Table.render t in
        check_true "has header" (String.length s > 0);
        let lines = String.split_on_char '\n' s in
        check_int "4 lines" 4 (List.length lines);
        (* All lines padded to equal width modulo trailing spaces. *)
        check_true "rule line"
          (String.for_all (fun c -> c = '-') (List.nth lines 1)));
    case "add_row validates arity" (fun () ->
        let t = Util.Table.create ~columns:[ "a"; "b" ] in
        check_raises_invalid "1 cell" (fun () -> Util.Table.add_row t [ "x" ]));
    case "add_float_row formats" (fun () ->
        let t = Util.Table.create ~columns:[ "w"; "x" ] in
        let t = Util.Table.add_float_row t "row" [ 1.5 ] in
        check_true "contains" (String.length (Util.Table.render t) > 0));
    case "rows render in insertion order" (fun () ->
        let t = Util.Table.create ~columns:[ "c" ] in
        Util.Table.add_row t [ "first" ];
        Util.Table.add_row t [ "second" ];
        let lines = String.split_on_char '\n' (Util.Table.render t) in
        check_true "first before second"
          (String.length (List.nth lines 2) > 0
          && String.sub (List.nth lines 2) 0 5 = "first"));
  ]

let json_tests =
  [
    case "non-finite floats emit null, never nan/inf tokens" (fun () ->
        let open Util.Json in
        check_string "nan" "null" (to_string (Float nan));
        check_string "inf" "null" (to_string (Float infinity));
        check_string "-inf" "null" (to_string (Float neg_infinity));
        check_string "nested in an object"
          {|{"x":null,"y":1.5}|}
          (to_string (Obj [ ("x", Float nan); ("y", Float 1.5) ]));
        check_string "nested in a list" "[null,2.0]"
          (to_string (List [ Float infinity; Float 2.0 ])));
    case "a non-finite emission still parses back" (fun () ->
        let open Util.Json in
        let s = to_string (Obj [ ("dv", Float (0.0 /. 0.0)) ]) in
        match parse s with
        | Error e -> Alcotest.failf "own output rejected: %s" e
        | Ok json -> check_true "null member" (member "dv" json = Some Null));
    case "finite floats round-trip" (fun () ->
        let open Util.Json in
        List.iter
          (fun f ->
            match parse (to_string (Float f)) with
            | Ok (Float g) -> check_float "round-trip" f g
            | Ok (Int i) -> check_float "as int" f (float_of_int i)
            | _ -> Alcotest.fail "did not parse as a number")
          [ 0.0; -1.5; 3.14159265358979; 1e-300; 1.7976931348623157e308 ]);
  ]

let suites =
  [
    ("util.ints", ints_tests);
    ("util.json", json_tests);
    ("util.perm", perm_tests);
    ("util.prng", prng_tests);
    ("util.stats", stats_tests);
    ("util.table", table_tests);
  ]
