(* The compilation service: fingerprints, the plan cache, batch
   compilation and the JSONL serve loop. *)

open Helpers

let cpu = Option.get (Arch.Presets.by_name "cpu")
let gpu = Option.get (Arch.Presets.by_name "gpu")
let default = Chimera.Config.default

(* A one-level machine whose on-chip capacity we control, for driving
   the planner into degradation and infeasibility. *)
let tiny_machine ?(name = "tiny") capacity =
  Arch.Machine.make ~name ~backend:Arch.Machine.Cpu ~peak_tflops:1.0
    ~freq_ghz:1.0 ~cores:2 ~vector_registers:32 ~vector_lanes:8
    ~levels:
      [
        Arch.Level.make ~name:"L1" ~capacity_bytes:capacity
          ~link_bandwidth_gbps:100.0 ();
        Arch.Level.dram ~bandwidth_gbps:50.0;
      ]
    ()

let gemm ?(name = "fp-gemm") ?(m = 12) ?(softmax = false) () =
  Ir.Chain.batch_gemm_chain ~name ~batch:2 ~m ~n:6 ~k:5 ~l:10 ~softmax ()

let fp ?(config = default) ?(machine = cpu) chain =
  Service.Fingerprint.of_request ~chain ~machine ~config

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "chimera-svc-test-%d-%d" (Unix.getpid ()) !n)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let err_str = Service.Error.to_string

(* Activate a fault-injection spec for the duration of [f] only; the
   global failpoint table is always restored to empty, so suites stay
   independent. *)
let with_failpoints spec f =
  (match Service.Failpoint.configure spec with
  | Ok () -> ()
  | Error e -> Alcotest.failf "failpoint spec %S: %s" spec e);
  Fun.protect ~finally:Service.Failpoint.clear f

(* ------------------------------------------------------------------ *)
(* Util.Json                                                           *)
(* ------------------------------------------------------------------ *)

let json_tests =
  let open Util.Json in
  [
    case "print/parse round trip" (fun () ->
        let v =
          Obj
            [
              ("a", Int 1);
              ("b", List [ Bool true; Null; Float 1.5; Int (-3) ]);
              ("s", String "he\"llo\n\t\\");
              ("nested", Obj [ ("empty", List []); ("o", Obj []) ]);
            ]
        in
        check_true "round trip" (parse (to_string v) = Ok v));
    case "ints and floats stay distinct" (fun () ->
        check_true "int" (parse "3" = Ok (Int 3));
        check_true "float" (parse "3.5" = Ok (Float 3.5));
        check_true "exponent is a float" (parse "3e2" = Ok (Float 300.0));
        check_string "int prints bare" "3" (to_string (Int 3)));
    case "string escapes" (fun () ->
        check_string "printed" "\"a\\\"b\\n\"" (to_string (String "a\"b\n"));
        check_true "unicode escape"
          (parse "\"\\u00e9\"" = Ok (String "\xc3\xa9"));
        check_true "surrogate pair"
          (parse "\"\\ud83d\\ude00\"" = Ok (String "\xf0\x9f\x98\x80")));
    case "non-finite floats render as null" (fun () ->
        check_string "nan" "null" (to_string (Float Float.nan));
        check_string "inf" "null" (to_string (Float Float.infinity)));
    case "parse errors are reported" (fun () ->
        let bad s =
          match parse s with
          | Error _ -> ()
          | Ok _ -> Alcotest.failf "expected a parse error for %S" s
        in
        bad "{";
        bad "[1,]";
        bad "nul";
        bad "12 x";
        bad "{\"a\" 1}";
        bad "");
    case "accessors are total" (fun () ->
        let j = Obj [ ("n", Int 4); ("s", String "x"); ("f", Float 0.5) ] in
        check_true "member" (member "n" j = Some (Int 4));
        check_true "absent" (member "zz" j = None);
        check_true "non-object" (member "n" (Int 1) = None);
        check_true "int of float" (to_int_opt (Float 4.0) = Some 4);
        check_true "not an int" (to_int_opt (Float 4.5) = None);
        check_true "float of int" (to_float_opt (Int 2) = Some 2.0);
        check_true "string mismatch" (to_string_opt (Int 2) = None));
  ]

(* ------------------------------------------------------------------ *)
(* Fingerprints                                                        *)
(* ------------------------------------------------------------------ *)

let fingerprint_tests =
  let open Service.Fingerprint in
  [
    case "same request built twice hashes equal" (fun () ->
        let a = fp (gemm ()) and b = fp (gemm ()) in
        check_true "equal" (equal a b);
        check_int "compare" 0 (compare a b);
        check_string "hex stable" (to_hex a) (to_hex b);
        check_int "hex width" 32 (String.length (to_hex a)));
    case "display names are excluded" (fun () ->
        check_true "chain name"
          (equal (fp (gemm ~name:"x" ())) (fp (gemm ~name:"y" ())));
        check_true "machine name"
          (equal
             (fp ~machine:(tiny_machine ~name:"a" 4096) (gemm ()))
             (fp ~machine:(tiny_machine ~name:"b" 4096) (gemm ()))));
    case "axis extent changes the hash" (fun () ->
        check_false "m flip"
          (equal (fp (gemm ~m:12 ())) (fp (gemm ~m:13 ()))));
    case "epilogue changes the hash" (fun () ->
        check_false "softmax flip"
          (equal (fp (gemm ())) (fp (gemm ~softmax:true ()))));
    case "config switch changes the hash" (fun () ->
        let ablated =
          { default with Chimera.Config.use_micro_kernel = false }
        in
        check_false "use_micro_kernel flip"
          (equal (fp (gemm ())) (fp ~config:ablated (gemm ())));
        let unfused = { default with Chimera.Config.use_fusion = false } in
        check_false "use_fusion flip"
          (equal (fp (gemm ())) (fp ~config:unfused (gemm ()))));
    case "machine capacity changes the hash" (fun () ->
        check_false "capacity flip"
          (equal
             (fp ~machine:(tiny_machine 4096) (gemm ()))
             (fp ~machine:(tiny_machine 8192) (gemm ()))));
    case "machine preset changes the hash" (fun () ->
        check_false "cpu vs gpu"
          (equal (fp ~machine:cpu (gemm ())) (fp ~machine:gpu (gemm ()))));
  ]

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

let request_tests =
  let open Service.Request in
  [
    case "wire form round trips" (fun () ->
        let r =
          make ~workload:"G3" ~arch:"gpu" ~softmax:true ~batch:4
            ~fusion:false ~deadline_ms:250.0 ()
        in
        check_true "round trip" (of_json (to_json r) = Ok r);
        let plain = make ~workload:"C1" ~arch:"npu" () in
        check_true "defaults round trip"
          (of_json (to_json plain) = Ok plain));
    case "decoding rejects missing fields" (fun () ->
        let bad s =
          match Util.Json.parse s with
          | Error e -> Alcotest.failf "setup: %S does not parse: %s" s e
          | Ok j -> (
              match of_json j with
              | Error _ -> ()
              | Ok _ -> Alcotest.failf "expected a decode error for %S" s)
        in
        bad "{\"arch\": \"cpu\"}";
        bad "{\"workload\": \"G1\"}";
        bad "[1]");
    case "resolve names unknown workloads and archs" (fun () ->
        (match resolve (make ~workload:"G99" ~arch:"cpu" ()) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "G99 resolved");
        match resolve (make ~workload:"G1" ~arch:"xpu" ()) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "xpu resolved");
    case "all_gemm_x_arch covers G1-G12 on every preset" (fun () ->
        let reqs = all_gemm_x_arch () in
        check_int "count" 36 (List.length reqs);
        List.iter
          (fun r ->
            match resolve r with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "%s: %s" (describe r) (err_str e))
          reqs);
    case "describe flags the non-defaults" (fun () ->
        check_string "softmax" "G2@cpu+softmax"
          (describe (make ~workload:"G2" ~arch:"cpu" ~softmax:true ()));
        check_string "nofusion" "G2@gpu+nofusion"
          (describe (make ~workload:"G2" ~arch:"gpu" ~fusion:false ())));
    case "config_of applies the fusion switch" (fun () ->
        let r = make ~workload:"G1" ~arch:"cpu" ~fusion:false () in
        check_false "fusion off" (config_of r).Chimera.Config.use_fusion;
        let r = make ~workload:"G1" ~arch:"cpu" () in
        check_true "fusion on" (config_of r).Chimera.Config.use_fusion);
  ]

(* ------------------------------------------------------------------ *)
(* Plan cache                                                          *)
(* ------------------------------------------------------------------ *)

let dummy_entry =
  {
    Service.Plan_cache.rung = Service.Plan_cache.Fused;
    degrade_reason = None;
    units = [];
  }

let cache_tests =
  let open Service.Plan_cache in
  let fp_m m = fp (gemm ~m ()) in
  [
    case "hit and miss counters mirror into metrics" (fun () ->
        let metrics = Service.Metrics.create () in
        let cache = create ~metrics () in
        check_true "miss" (find cache (fp_m 10) = None);
        add cache (fp_m 10) dummy_entry;
        check_true "hit" (find cache (fp_m 10) <> None);
        check_int "hits" 1 (hits cache);
        check_int "misses" 1 (misses cache);
        check_int "metrics hits" 1 metrics.Service.Metrics.hits;
        check_int "metrics misses" 1 metrics.Service.Metrics.misses);
    case "lru evicts the least recently used" (fun () ->
        let cache = create ~capacity:2 () in
        add cache (fp_m 10) dummy_entry;
        add cache (fp_m 11) dummy_entry;
        add cache (fp_m 12) dummy_entry;
        check_int "length" 2 (length cache);
        check_int "evictions" 1 (evictions cache);
        check_false "oldest gone" (mem cache (fp_m 10));
        check_true "rest stay" (mem cache (fp_m 11) && mem cache (fp_m 12)));
    case "find refreshes recency" (fun () ->
        let cache = create ~capacity:2 () in
        add cache (fp_m 10) dummy_entry;
        add cache (fp_m 11) dummy_entry;
        ignore (find cache (fp_m 10));
        add cache (fp_m 12) dummy_entry;
        check_true "refreshed survives" (mem cache (fp_m 10));
        check_false "stale evicted" (mem cache (fp_m 11)));
    case "disk round trip is bit-identical" (fun () ->
        let cache = create () in
        let chain = small_gemm_chain () in
        (match Service.Batch.compile ~cache ~machine:cpu chain with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (err_str e));
        let key = fp chain in
        let entry = Option.get (find cache key) in
        let bytes = Marshal.to_string entry [] in
        let dir = fresh_dir () in
        save cache ~dir;
        check_false "dirty cleared" (dirty cache);
        let cache2 = create () in
        check_int "loaded" 1 (loaded_count (load cache2 ~dir));
        let entry2 = Option.get (find cache2 key) in
        check_true "bit-identical entry"
          (String.equal bytes (Marshal.to_string entry2 []));
        rm_rf dir);
    case "save preserves recency order" (fun () ->
        let cache = create ~capacity:2 () in
        add cache (fp_m 10) dummy_entry;
        add cache (fp_m 11) dummy_entry;
        let dir = fresh_dir () in
        save cache ~dir;
        let cache2 = create ~capacity:2 () in
        check_int "loaded" 2 (loaded_count (load cache2 ~dir));
        (* fp_m 11 was most recent; adding one more must evict fp_m 10. *)
        add cache2 (fp_m 12) dummy_entry;
        check_false "oldest evicted first" (mem cache2 (fp_m 10));
        check_true "recent kept" (mem cache2 (fp_m 11));
        rm_rf dir);
    case "scheme version mismatch discards the file wholesale" (fun () ->
        let cache = create () in
        add cache (fp_m 10) dummy_entry;
        let dir = fresh_dir () in
        save cache ~dir;
        let file = cache_file ~dir in
        let ic = open_in_bin file in
        let data = really_input_string ic (in_channel_length ic) in
        close_in ic;
        let body_start = String.index data '\n' + 1 in
        let oc = open_out_bin file in
        Printf.fprintf oc "CHIMERA-PLAN-CACHE %d %d\n" file_version
          (Service.Fingerprint.scheme_version + 1);
        output_string oc
          (String.sub data body_start (String.length data - body_start));
        close_out oc;
        let cache2 = create () in
        (match load cache2 ~dir with
        | Discarded _ -> ()
        | Loaded _ | Absent -> Alcotest.fail "expected Discarded");
        check_int "stays empty" 0 (length cache2);
        rm_rf dir);
    case "a garbage body yields zero trusted entries" (fun () ->
        let dir = fresh_dir () in
        let cache = create () in
        add cache (fp_m 10) dummy_entry;
        save cache ~dir;
        let oc = open_out_bin (cache_file ~dir) in
        Printf.fprintf oc "CHIMERA-PLAN-CACHE %d %d\nnot framed data"
          file_version Service.Fingerprint.scheme_version;
        close_out oc;
        let metrics = Service.Metrics.create () in
        let cache2 = create ~metrics () in
        (match load cache2 ~dir with
        | Loaded { entries = 0; skipped; _ } ->
            check_true "the garbage is skipped" (skipped >= 1)
        | Loaded { entries; _ } ->
            Alcotest.failf "trusted %d entries of garbage" entries
        | Discarded _ | Absent -> Alcotest.fail "expected a skipping load");
        check_true "skips counted"
          (metrics.Service.Metrics.cache_entries_skipped >= 1);
        check_int "stays empty" 0 (length cache2);
        rm_rf dir);
    case "loading a missing file is a clean cold start" (fun () ->
        let cache = create () in
        check_true "absent" (load cache ~dir:(fresh_dir ()) = Absent));
  ]

(* ------------------------------------------------------------------ *)
(* Typed planner/tuner failure                                         *)
(* ------------------------------------------------------------------ *)

let tuner_error_tests =
  [
    case "tuner reports no feasible tiling as a typed error" (fun () ->
        let machine = tiny_machine 8 in
        match
          Chimera.Tuner.search (small_gemm_chain ()) ~machine
            ~trials_per_order:3 ~seed:1 ()
        with
        | Error `No_feasible_tiling -> ()
        | Ok _ -> Alcotest.fail "8 bytes of scratchpad should not fit");
    case "plan_unit surfaces the sampling failure" (fun () ->
        let machine = tiny_machine 8 in
        let config =
          {
            default with
            Chimera.Config.use_cost_model = false;
            tuning_trials = 3;
          }
        in
        let registry = Chimera.Compiler.registry_for config in
        match
          Chimera.Compiler.plan_unit config ~machine ~registry
            (small_gemm_chain ())
        with
        | Error `No_feasible_tiling -> ()
        | Ok _ -> Alcotest.fail "expected Error `No_feasible_tiling");
    case "optimize raises a typed exception on the sampling path"
      (fun () ->
        let machine = tiny_machine 8 in
        let config =
          {
            default with
            Chimera.Config.use_cost_model = false;
            tuning_trials = 3;
          }
        in
        match Chimera.Compiler.optimize ~config ~machine (small_gemm_chain ())
        with
        | _ -> Alcotest.fail "expected No_feasible_tiling"
        | exception Chimera.Compiler.No_feasible_tiling _ -> ());
  ]

(* ------------------------------------------------------------------ *)
(* Batch compilation                                                   *)
(* ------------------------------------------------------------------ *)

let all_requests = lazy (Service.Request.all_gemm_x_arch ())

(* One sequential cold pass over every G x arch request, shared by the
   acceptance tests below. *)
let cold_sequential =
  lazy
    (let metrics = Service.Metrics.create () in
     let cache = Service.Plan_cache.create ~metrics () in
     let results =
       Service.Batch.run ~jobs:1 ~cache ~metrics (Lazy.force all_requests)
     in
     (cache, metrics, results))

let unit_signature (u : Chimera.Compiler.unit_) =
  ( u.Chimera.Compiler.sub_chain.Ir.Chain.name,
    u.Chimera.Compiler.kernel.Codegen.Kernel.perm,
    Analytical.Tiling.bindings u.Chimera.Compiler.kernel.Codegen.Kernel.tiling
  )

let response_signature (r : Service.Batch.response) =
  ( Service.Fingerprint.to_hex r.Service.Batch.fingerprint,
    r.Service.Batch.degraded,
    List.map unit_signature
      r.Service.Batch.compiled.Chimera.Compiler.units )

let batch_tests =
  [
    slow_case "cold batch compiles every request" (fun () ->
        let _, metrics, results = Lazy.force cold_sequential in
        check_int "responses" 36 (List.length results);
        List.iter
          (fun (req, result) ->
            match result with
            | Ok r ->
                check_true
                  (Service.Request.describe req ^ " freshly compiled")
                  (r.Service.Batch.source = Service.Batch.Compiled)
            | Error e ->
                Alcotest.failf "%s: %s" (Service.Request.describe req)
                  (err_str e))
          results;
        check_int "requests" 36 metrics.Service.Metrics.requests;
        check_int "misses" 36 metrics.Service.Metrics.misses;
        check_int "no failures" 0 metrics.Service.Metrics.failed;
        check_true "solves happened"
          (metrics.Service.Metrics.planner_solves >= 36));
    slow_case "warm batch performs zero planner solves" (fun () ->
        let cache, metrics, _ = Lazy.force cold_sequential in
        Service.Metrics.reset metrics;
        let results =
          Service.Batch.run ~jobs:1 ~cache ~metrics
            (Lazy.force all_requests)
        in
        List.iter
          (fun (req, result) ->
            match result with
            | Ok r ->
                check_true
                  (Service.Request.describe req ^ " from cache")
                  (r.Service.Batch.source = Service.Batch.Cache)
            | Error e ->
                Alcotest.failf "%s: %s" (Service.Request.describe req)
                  (err_str e))
          results;
        check_int "zero planner solves" 0
          metrics.Service.Metrics.planner_solves;
        check_int "all hits" 36 metrics.Service.Metrics.hits;
        check_int "no misses" 0 metrics.Service.Metrics.misses;
        check_float "no planning time" 0.0
          (Service.Metrics.compile_seconds metrics));
    slow_case "parallel batch matches sequential plans exactly" (fun () ->
        let _, _, sequential = Lazy.force cold_sequential in
        let metrics = Service.Metrics.create () in
        let parallel =
          Service.Batch.run ~jobs:4 ~metrics (Lazy.force all_requests)
        in
        check_int "same cardinality" (List.length sequential)
          (List.length parallel);
        List.iter2
          (fun (req, seq_r) (_, par_r) ->
            match (seq_r, par_r) with
            | Ok a, Ok b ->
                check_true
                  (Service.Request.describe req ^ " identical plan")
                  (response_signature a = response_signature b)
            | _ ->
                Alcotest.failf "%s: not Ok on both paths"
                  (Service.Request.describe req))
          sequential parallel;
        check_int "no failures" 0 metrics.Service.Metrics.failed);
    case "duplicate requests are planned once" (fun () ->
        let metrics = Service.Metrics.create () in
        let req = Service.Request.make ~workload:"G1" ~arch:"cpu" () in
        let results = Service.Batch.run ~metrics [ req; req; req ] in
        check_int "responses" 3 (List.length results);
        List.iter
          (fun (_, r) ->
            match r with
            | Ok _ -> ()
            | Error e -> Alcotest.fail (err_str e))
          results;
        (* All three probe the cache before any plan lands, so each
           counts a miss — but the fused chain is solved exactly once. *)
        check_int "three probes missed" 3 metrics.Service.Metrics.misses;
        check_int "planned once" 1 metrics.Service.Metrics.planner_solves);
    case "unresolvable requests are isolated" (fun () ->
        let metrics = Service.Metrics.create () in
        let reqs =
          [
            Service.Request.make ~workload:"G1" ~arch:"cpu" ();
            Service.Request.make ~workload:"G99" ~arch:"cpu" ();
            Service.Request.make ~workload:"G1" ~arch:"xpu" ();
          ]
        in
        match Service.Batch.run ~metrics reqs with
        | [ (_, Ok _); (_, Error e1); (_, Error e2) ] ->
            check_int "failed counted" 2 metrics.Service.Metrics.failed;
            check_int "typed as invalid" 2
              metrics.Service.Metrics.invalid_requests;
            check_string "workload named" "invalid_request"
              (Service.Error.code e1);
            check_string "arch named" "invalid_request"
              (Service.Error.code e2)
        | _ -> Alcotest.fail "expected [Ok; Error; Error] in order");
  ]

(* ------------------------------------------------------------------ *)
(* Degradation                                                         *)
(* ------------------------------------------------------------------ *)

(* A capacity small enough that the fused chain has no feasible tiling
   yet each single stage still fits — found by probing, so the test
   tracks the cost model instead of hard-coding its constants. *)
let find_degrading_capacity chain =
  let candidates =
    [
      16; 24; 32; 48; 64; 96; 128; 192; 256; 384; 512; 768; 1024; 1536;
      2048; 3072; 4096; 6144; 8192;
    ]
  in
  List.find_opt
    (fun cap ->
      match Service.Batch.compile ~machine:(tiny_machine cap) chain with
      | Ok r -> r.Service.Batch.degraded <> None
      | Error _ -> false)
    candidates

let degradation_tests =
  [
    case "fused solve failure degrades to split stages" (fun () ->
        let chain = small_conv_chain () in
        match find_degrading_capacity chain with
        | None ->
            Alcotest.fail
              "no probed capacity separates fused from split feasibility"
        | Some cap ->
            let machine = tiny_machine cap in
            let metrics = Service.Metrics.create () in
            let cache = Service.Plan_cache.create ~metrics () in
            let r =
              match Service.Batch.compile ~cache ~metrics ~machine chain with
              | Ok r -> r
              | Error e -> Alcotest.fail (err_str e)
            in
            check_true "reported degraded"
              (r.Service.Batch.degraded <> None);
            check_true "below the fused rung"
              (r.Service.Batch.rung <> Service.Plan_cache.Fused);
            check_int "one kernel per stage"
              (List.length (Chimera.Compiler.split_stages chain))
              (List.length r.Service.Batch.compiled.Chimera.Compiler.units);
            check_int "counted" 1 metrics.Service.Metrics.degraded;
            (* The degraded entry is cached with its reason and rung. *)
            let r2 =
              match Service.Batch.compile ~cache ~metrics ~machine chain with
              | Ok r -> r
              | Error e -> Alcotest.fail (err_str e)
            in
            check_true "warm hit"
              (r2.Service.Batch.source = Service.Batch.Cache);
            check_true "rung persisted"
              (r2.Service.Batch.rung = r.Service.Batch.rung);
            check_true "reason persisted"
              (r2.Service.Batch.degraded = r.Service.Batch.degraded));
    case "total infeasibility is a typed error, not an exception" (fun () ->
        let metrics = Service.Metrics.create () in
        match
          Service.Batch.compile ~metrics ~machine:(tiny_machine 8)
            (small_gemm_chain ())
        with
        | Error e ->
            check_string "typed" "no_feasible_tiling" (Service.Error.code e);
            check_false "not retryable" (Service.Error.retryable e);
            check_int "failed counted" 1 metrics.Service.Metrics.failed
        | Ok _ -> Alcotest.fail "8 bytes of scratchpad should not compile");
  ]

(* ------------------------------------------------------------------ *)
(* Serve loop                                                          *)
(* ------------------------------------------------------------------ *)

let serve lines =
  let in_path = Filename.temp_file "chimera-serve" ".in" in
  let out_path = Filename.temp_file "chimera-serve" ".out" in
  let oc = open_out in_path in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc;
  let ic = open_in in_path and oc = open_out out_path in
  Service.Serve.run ic oc;
  close_in ic;
  close_out oc;
  let ic = open_in out_path in
  let rec read acc =
    match input_line ic with
    | l -> read (l :: acc)
    | exception End_of_file -> List.rev acc
  in
  let out = read [] in
  close_in ic;
  Sys.remove in_path;
  Sys.remove out_path;
  List.map
    (fun l ->
      match Util.Json.parse l with
      | Ok j -> j
      | Error e -> Alcotest.failf "unparsable response %S: %s" l e)
    out

let jfield k j =
  match Util.Json.member k j with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S" k

let serve_tests =
  [
    slow_case "the loop answers, caches, and survives bad input" (fun () ->
        let out =
          serve
            [
              "{\"workload\":\"G1\",\"arch\":\"cpu\",\"id\":\"a\"}";
              "";
              "{\"workload\":\"G1\",\"arch\":\"cpu\",\"id\":\"b\"}";
              "not json";
              "{\"workload\":\"G99\",\"arch\":\"cpu\"}";
              "{\"cmd\":\"nope\"}";
              "{\"cmd\":\"stats\"}";
              "{\"cmd\":\"quit\"}";
            ]
        in
        match out with
        | [ first; second; bad_json; bad_workload; bad_cmd; stats; quit ] ->
            check_true "first ok" (jfield "ok" first = Util.Json.Bool true);
            check_true "id echoed"
              (jfield "id" first = Util.Json.String "a");
            check_true "first compiled"
              (jfield "source" first = Util.Json.String "compiled");
            check_true "rung reported"
              (jfield "rung" first = Util.Json.String "fused");
            check_true "second from cache"
              (jfield "source" second = Util.Json.String "cache");
            check_true "same fingerprint"
              (jfield "fingerprint" first = jfield "fingerprint" second);
            check_true "bad json flagged"
              (jfield "ok" bad_json = Util.Json.Bool false);
            check_true "bad json is typed"
              (jfield "code" bad_json = Util.Json.String "invalid_request");
            check_true "unknown workload flagged"
              (jfield "ok" bad_workload = Util.Json.Bool false);
            check_true "unknown workload names its field"
              (jfield "field" bad_workload = Util.Json.String "workload");
            check_true "unknown cmd flagged"
              (jfield "ok" bad_cmd = Util.Json.Bool false);
            check_true "unknown cmd is typed"
              (jfield "code" bad_cmd = Util.Json.String "invalid_request");
            check_true "stats counted the three requests"
              (jfield "requests" stats = Util.Json.Int 3);
            check_true "stats counted the invalid lines"
              (jfield "invalid_requests" stats = Util.Json.Int 3);
            check_true "stats saw the cache hit"
              (jfield "cache_hits" stats = Util.Json.Int 1);
            check_true "quit acknowledged"
              (jfield "ok" quit = Util.Json.Bool true)
        | _ ->
            Alcotest.failf "expected 7 response lines, got %d"
              (List.length out));
    slow_case "a cache_dir makes a restarted server warm" (fun () ->
        let dir = fresh_dir () in
        let request = "{\"workload\":\"G1\",\"arch\":\"cpu\"}" in
        let run_one () =
          let in_path = Filename.temp_file "chimera-serve" ".in" in
          let out_path = Filename.temp_file "chimera-serve" ".out" in
          let oc = open_out in_path in
          output_string oc (request ^ "\n");
          close_out oc;
          let ic = open_in in_path and oc = open_out out_path in
          Service.Serve.run ~cache_dir:dir ic oc;
          close_in ic;
          close_out oc;
          let ic = open_in out_path in
          let line = input_line ic in
          close_in ic;
          Sys.remove in_path;
          Sys.remove out_path;
          Result.get_ok (Util.Json.parse line)
        in
        let cold = run_one () in
        let warm = run_one () in
        check_true "cold compiled"
          (jfield "source" cold = Util.Json.String "compiled");
        check_true "warm across processes"
          (jfield "source" warm = Util.Json.String "cache");
        rm_rf dir);
  ]

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let metrics_tests =
  [
    case "table and json expose every counter" (fun () ->
        let m = Service.Metrics.create () in
        m.Service.Metrics.requests <- 3;
        m.Service.Metrics.hits <- 2;
        (* The legacy float totals are now derived from the solve-latency
           histogram's sum, but keep their old wire keys. *)
        Obs.Histogram.observe m.Service.Metrics.solve_ms 500.0;
        check_float "derived seconds" 0.5 (Service.Metrics.compile_seconds m);
        let json = Service.Metrics.to_json m in
        check_true "requests" (jfield "requests" json = Util.Json.Int 3);
        check_true "hits" (jfield "cache_hits" json = Util.Json.Int 2);
        check_true "seconds"
          (jfield "compile_seconds" json = Util.Json.Float 0.5);
        (* The histogram itself is on the wire as a summary object. *)
        (match jfield "solve_ms" json with
        | Util.Json.Obj fields ->
            check_true "histogram count"
              (List.assoc "count" fields = Util.Json.Int 1);
            check_true "histogram p50"
              (match List.assoc "p50_ms" fields with
              | Util.Json.Float p -> p > 0.0
              | _ -> false)
        | _ -> Alcotest.fail "solve_ms is not a summary object");
        Service.Metrics.reset m;
        check_int "reset" 0 m.Service.Metrics.requests;
        check_float "reset clears histograms" 0.0
          (Service.Metrics.compile_seconds m));
    case "plan search counters track cold solves only" (fun () ->
        let metrics = Service.Metrics.create () in
        let cache = Service.Plan_cache.create ~metrics () in
        let chain = gemm () in
        (match Service.Batch.compile ~cache ~metrics ~machine:cpu chain with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (err_str e));
        check_true "cold solve spent time"
          (Service.Metrics.plan_solve_ms_total metrics > 0.0);
        check_true "cold solve evaluated the model"
          (metrics.Service.Metrics.plan_evals_total > 0);
        check_true "pruned counter is sane"
          (metrics.Service.Metrics.plan_perms_pruned_total >= 0);
        let ms = Service.Metrics.plan_solve_ms_total metrics in
        let evals = metrics.Service.Metrics.plan_evals_total in
        let pruned = metrics.Service.Metrics.plan_perms_pruned_total in
        (* A warm hit performs zero solves, so the counters freeze. *)
        (match Service.Batch.compile ~cache ~metrics ~machine:cpu chain with
        | Ok r ->
            check_true "hit" (r.Service.Batch.source = Service.Batch.Cache)
        | Error e -> Alcotest.fail (err_str e));
        check_float "hit adds no solve time" ms
          (Service.Metrics.plan_solve_ms_total metrics);
        check_int "hit adds no evals" evals
          metrics.Service.Metrics.plan_evals_total;
        check_int "hit prunes nothing" pruned
          metrics.Service.Metrics.plan_perms_pruned_total;
        (* The counters travel on the stats wire. *)
        let json = Service.Metrics.to_json metrics in
        check_true "solve ms on the wire"
          (jfield "plan_solve_ms_total" json = Util.Json.Float ms);
        check_true "evals on the wire"
          (jfield "plan_evals_total" json = Util.Json.Int evals);
        check_true "pruned on the wire"
          (jfield "plan_perms_pruned_total" json = Util.Json.Int pruned));
  ]

(* ------------------------------------------------------------------ *)
(* Error taxonomy                                                      *)
(* ------------------------------------------------------------------ *)

let error_tests =
  let open Service.Error in
  [
    case "codes are stable wire strings" (fun () ->
        check_string "invalid" "invalid_request"
          (code (Invalid_request { field = "batch"; reason = "x" }));
        check_string "infeasible" "no_feasible_tiling"
          (code (No_feasible_tiling "x"));
        check_string "deadline" "deadline_exceeded"
          (code (Deadline_exceeded "x"));
        check_string "corrupt" "cache_corrupt" (code (Cache_corrupt "x"));
        check_string "internal" "internal" (code (Internal "x")));
    case "retryability separates transient from deterministic" (fun () ->
        check_false "invalid"
          (retryable (Invalid_request { field = "f"; reason = "r" }));
        check_false "infeasible" (retryable (No_feasible_tiling "x"));
        check_true "deadline" (retryable (Deadline_exceeded "x"));
        check_true "corrupt" (retryable (Cache_corrupt "x"));
        check_true "internal" (retryable (Internal "x")));
    case "of_exn classifies the service's exceptions" (fun () ->
        check_string "expired" "deadline_exceeded"
          (code (of_exn Service.Deadline.Expired));
        check_string "injected" "internal"
          (code (of_exn (Service.Failpoint.Injected "x")));
        check_string "planner infeasibility" "no_feasible_tiling"
          (code (of_exn (Failure "G1: no feasible tiling at L1")));
        check_string "other failure" "internal" (code (of_exn (Failure "boom")));
        check_string "io" "internal" (code (of_exn (Sys_error "disk gone")));
        check_string "invalid argument" "invalid_request"
          (code (of_exn (Invalid_argument "negative extent"))));
    case "the error json carries code, retryable and field" (fun () ->
        let j =
          to_json ~id:(Util.Json.String "r1")
            (Invalid_request { field = "batch"; reason = "must be positive" })
        in
        check_true "id echoed" (jfield "id" j = Util.Json.String "r1");
        check_true "not ok" (jfield "ok" j = Util.Json.Bool false);
        check_true "code"
          (jfield "code" j = Util.Json.String "invalid_request");
        check_true "retryable" (jfield "retryable" j = Util.Json.Bool false);
        check_true "field" (jfield "field" j = Util.Json.String "batch");
        let j2 = to_json (Internal "boom") in
        check_true "no id" (Util.Json.member "id" j2 = None);
        check_true "no field" (Util.Json.member "field" j2 = None);
        check_true "internal is retryable"
          (jfield "retryable" j2 = Util.Json.Bool true));
  ]

(* ------------------------------------------------------------------ *)
(* Failpoints                                                          *)
(* ------------------------------------------------------------------ *)

let failpoint_tests =
  let open Service.Failpoint in
  [
    case "malformed specs are rejected with the reason" (fun () ->
        let bad s =
          match configure s with
          | Error _ -> ()
          | Ok () ->
              clear ();
              Alcotest.failf "expected a parse error for %S" s
        in
        bad "nonsense";
        bad "site=frob";
        bad "site=delay:xx";
        bad "site=prob:2.0:1";
        bad "=raise");
    case "raise fires, is counted, and clears" (fun () ->
        Fun.protect ~finally:clear (fun () ->
            (match configure "t.a=raise" with
            | Ok () -> ()
            | Error e -> Alcotest.fail e);
            check_true "active" (active ());
            (match hit "t.a" with
            | () -> Alcotest.fail "expected Injected"
            | exception Injected site -> check_string "site" "t.a" site);
            hit "t.other";
            check_int "hits" 1 (hits "t.a");
            check_int "fired" 1 (fired "t.a");
            check_int "other never fired" 0 (fired "t.other"));
        check_false "cleared" (active ());
        (* a hit on a cleared table is a free no-op *)
        hit "t.a");
    case "io injects a Sys_error" (fun () ->
        Fun.protect ~finally:clear (fun () ->
            (match configure "t.io=io" with
            | Ok () -> ()
            | Error e -> Alcotest.fail e);
            match hit "t.io" with
            | () -> Alcotest.fail "expected Sys_error"
            | exception Sys_error _ -> ()));
    case "@N fires on exactly the nth matching hit" (fun () ->
        Fun.protect ~finally:clear (fun () ->
            (match configure "t.n=raise@2" with
            | Ok () -> ()
            | Error e -> Alcotest.fail e);
            hit "t.n";
            (match hit "t.n" with
            | () -> Alcotest.fail "the second hit should fire"
            | exception Injected _ -> ());
            hit "t.n";
            check_int "fired once" 1 (fired "t.n")));
    case "ctx substring selects the target" (fun () ->
        Fun.protect ~finally:clear (fun () ->
            (match configure "plan.solve(G5)=raise" with
            | Ok () -> ()
            | Error e -> Alcotest.fail e);
            hit ~ctx:"G1" "plan.solve";
            hit "plan.solve";
            (match hit ~ctx:"G5.mm1" "plan.solve" with
            | () -> Alcotest.fail "a matching ctx should fire"
            | exception Injected _ -> ());
            check_int "fired for the ctx match only" 1 (fired "plan.solve")));
    case "prob draws are deterministic per seed" (fun () ->
        let draw () =
          Fun.protect ~finally:clear (fun () ->
              (match configure "t.p=prob:0.5:42" with
              | Ok () -> ()
              | Error e -> Alcotest.fail e);
              List.init 32 (fun _ ->
                  match hit "t.p" with
                  | () -> false
                  | exception Injected _ -> true))
        in
        let a = draw () and b = draw () in
        check_true "identical fire pattern" (a = b);
        check_true "some fired" (List.mem true a);
        check_true "some passed" (List.mem false a));
    case "delay waits without failing" (fun () ->
        Fun.protect ~finally:clear (fun () ->
            (match configure "t.d=delay:5" with
            | Ok () -> ()
            | Error e -> Alcotest.fail e);
            let t0 = Unix.gettimeofday () in
            hit "t.d";
            check_true "slept" (Unix.gettimeofday () -. t0 >= 0.004)));
  ]

(* ------------------------------------------------------------------ *)
(* Request validation limits                                           *)
(* ------------------------------------------------------------------ *)

let validation_tests =
  let open Service.Request in
  let rejects ~field:want req =
    match resolve req with
    | Ok _ -> Alcotest.failf "%s: expected a rejection" (describe req)
    | Error e -> (
        check_string "code" "invalid_request" (Service.Error.code e);
        check_false "not retryable" (Service.Error.retryable e);
        match e with
        | Service.Error.Invalid_request { field; _ } ->
            check_string "field" want field
        | e -> Alcotest.failf "expected invalid_request, got %s" (err_str e))
  in
  [
    case "batch must be positive" (fun () ->
        rejects ~field:"batch" (make ~workload:"G1" ~arch:"cpu" ~batch:0 ());
        rejects ~field:"batch"
          (make ~workload:"G1" ~arch:"cpu" ~batch:(-2) ()));
    case "batch is bounded" (fun () ->
        rejects ~field:"batch"
          (make ~workload:"G1" ~arch:"cpu" ~batch:(max_axis_extent + 1) ()));
    case "deadline must be positive and finite" (fun () ->
        rejects ~field:"deadline_ms"
          (make ~workload:"G1" ~arch:"cpu" ~deadline_ms:0.0 ());
        rejects ~field:"deadline_ms"
          (make ~workload:"G1" ~arch:"cpu" ~deadline_ms:(-10.0) ());
        rejects ~field:"deadline_ms"
          (make ~workload:"G1" ~arch:"cpu" ~deadline_ms:Float.infinity ()));
    case "unknown names carry their field" (fun () ->
        rejects ~field:"workload" (make ~workload:"G99" ~arch:"cpu" ());
        rejects ~field:"arch" (make ~workload:"G1" ~arch:"xpu" ()));
    case "valid requests still resolve" (fun () ->
        match
          resolve
            (make ~workload:"G1" ~arch:"cpu" ~batch:4 ~deadline_ms:50.0 ())
        with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (err_str e));
    slow_case "the serve loop answers a zero batch instead of dying"
      (fun () ->
        let out =
          serve
            [
              "{\"workload\":\"G1\",\"arch\":\"cpu\",\"batch\":0,\"id\":\"z\"}";
              "{\"cmd\":\"quit\"}";
            ]
        in
        match out with
        | [ rejected; quit ] ->
            check_true "flagged" (jfield "ok" rejected = Util.Json.Bool false);
            check_true "typed"
              (jfield "code" rejected = Util.Json.String "invalid_request");
            check_true "field named"
              (jfield "field" rejected = Util.Json.String "batch");
            check_true "id echoed"
              (jfield "id" rejected = Util.Json.String "z");
            check_true "loop survived to quit"
              (jfield "ok" quit = Util.Json.Bool true)
        | _ -> Alcotest.failf "expected 2 responses, got %d" (List.length out));
  ]

(* ------------------------------------------------------------------ *)
(* Deadlines                                                           *)
(* ------------------------------------------------------------------ *)

let deadline_tests =
  [
    case "the checker raises once expired" (fun () ->
        let d = Service.Deadline.after ~seconds:(-1.0) in
        check_true "expired" (Service.Deadline.expired d);
        check_true "remaining negative" (Service.Deadline.remaining d < 0.0);
        (match Service.Deadline.checker (Some d) with
        | None -> Alcotest.fail "expected a checker"
        | Some check -> (
            match check () with
            | () -> Alcotest.fail "expected Expired"
            | exception Service.Deadline.Expired -> ()));
        check_true "no deadline, no checker"
          (Service.Deadline.checker None = None);
        check_false "no deadline never expires"
          (Service.Deadline.expired_opt None));
    slow_case "an expired budget degrades to the heuristic rung" (fun () ->
        let metrics = Service.Metrics.create () in
        let t0 = Unix.gettimeofday () in
        let r =
          match
            Service.Batch.compile ~metrics ~machine:cpu
              ~deadline:(Service.Deadline.after ~seconds:(-1.0))
              (small_gemm_chain ())
          with
          | Ok r -> r
          | Error e -> Alcotest.fail (err_str e)
        in
        let wall = Unix.gettimeofday () -. t0 in
        check_true "heuristic rung"
          (r.Service.Batch.rung = Service.Plan_cache.Heuristic);
        check_true "degradation explained" (r.Service.Batch.degraded <> None);
        check_int "deadline hit counted" 1
          metrics.Service.Metrics.deadline_exceeded;
        check_int "heuristic counted" 1 metrics.Service.Metrics.heuristic;
        check_int "degraded counted" 1 metrics.Service.Metrics.degraded;
        check_int "no planner solves" 0 metrics.Service.Metrics.planner_solves;
        check_true "answered within budget plus slack" (wall < 5.0));
    case "an infeasible heuristic under deadline is the deadline error"
      (fun () ->
        let metrics = Service.Metrics.create () in
        match
          Service.Batch.compile ~metrics ~machine:(tiny_machine 8)
            ~deadline:(Service.Deadline.after ~seconds:(-1.0))
            (small_gemm_chain ())
        with
        | Ok _ -> Alcotest.fail "8 bytes should not fit even heuristically"
        | Error e ->
            check_string "code" "deadline_exceeded" (Service.Error.code e);
            check_true "retryable" (Service.Error.retryable e);
            check_int "counted once" 1
              metrics.Service.Metrics.deadline_exceeded);
    slow_case "a wire deadline_ms reaches the batch path" (fun () ->
        let req =
          Service.Request.make ~workload:"G1" ~arch:"cpu"
            ~deadline_ms:0.000001 ()
        in
        match Service.Batch.run [ req ] with
        | [ (_, Ok r) ] ->
            check_true "degraded below fused"
              (r.Service.Batch.rung <> Service.Plan_cache.Fused)
        | [ (_, Error e) ] -> Alcotest.fail (err_str e)
        | _ -> Alcotest.fail "expected exactly one response");
  ]

(* ------------------------------------------------------------------ *)
(* Crash recovery: corrupt cache files and bounded persistence retries  *)
(* ------------------------------------------------------------------ *)

let recovery_tests =
  let open Service.Plan_cache in
  let fp_m m = fp (gemm ~m ()) in
  [
    case "a truncated cache file skips torn frames, keeps the rest"
      (fun () ->
        let dir = fresh_dir () in
        let cache = create () in
        add cache (fp_m 10) dummy_entry;
        add cache (fp_m 11) dummy_entry;
        save cache ~dir;
        let file = cache_file ~dir in
        let ic = open_in_bin file in
        let len = in_channel_length ic in
        let data = really_input_string ic (len - (len / 3)) in
        close_in ic;
        let oc = open_out_bin file in
        output_string oc data;
        close_out oc;
        let metrics = Service.Metrics.create () in
        let cache2 = create ~metrics () in
        (match load cache2 ~dir with
        | Loaded { entries; skipped; _ } ->
            check_true "the torn tail is skipped" (skipped >= 1);
            check_true "never more than what was saved"
              (entries + skipped <= 2);
            check_int "survivors restored" entries (length cache2)
        | Discarded r -> Alcotest.failf "wholesale discard (%s)" r
        | Absent -> Alcotest.fail "the file exists");
        check_true "skips counted"
          (metrics.Service.Metrics.cache_entries_skipped >= 1);
        check_int "not a wholesale corruption" 0
          metrics.Service.Metrics.cache_corrupt;
        rm_rf dir);
    case "a bit-flipped frame is skipped, not unmarshalled" (fun () ->
        let dir = fresh_dir () in
        let cache = create () in
        add cache (fp_m 10) dummy_entry;
        save cache ~dir;
        let file = cache_file ~dir in
        let ic = open_in_bin file in
        let data = really_input_string ic (in_channel_length ic) in
        close_in ic;
        (* Flip a byte of the first frame's length field, the bytes
           right after the text header — the CRC/framing guards must
           catch it before any Marshal.from_* runs. *)
        let body_start = String.index data '\n' + 1 in
        let b = Bytes.of_string data in
        Bytes.set b body_start
          (Char.chr (Char.code (Bytes.get b body_start) lxor 0xff));
        let oc = open_out_bin file in
        output_bytes oc b;
        close_out oc;
        let metrics = Service.Metrics.create () in
        let cache2 = create ~metrics () in
        (match load cache2 ~dir with
        | Loaded { entries = 0; skipped; _ } ->
            check_true "the flipped frame is skipped" (skipped >= 1)
        | Loaded { entries; _ } ->
            Alcotest.failf "trusted %d corrupt entries" entries
        | Discarded _ | Absent -> Alcotest.fail "expected a skip, not a discard");
        check_true "skips counted"
          (metrics.Service.Metrics.cache_entries_skipped >= 1);
        rm_rf dir);
    case "a flip deep in a frame payload is caught by the CRC" (fun () ->
        let dir = fresh_dir () in
        let cache = create () in
        add cache (fp_m 10) dummy_entry;
        add cache (fp_m 11) dummy_entry;
        save cache ~dir;
        let file = cache_file ~dir in
        let ic = open_in_bin file in
        let data = really_input_string ic (in_channel_length ic) in
        close_in ic;
        (* Corrupt one byte in the middle of the second frame's payload
           (past length+CRC of frame 1): the framing stays intact, so
           the loader must skip exactly that entry and keep the other. *)
        let b = Bytes.of_string data in
        let pos = Bytes.length b - 8 in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x55));
        let oc = open_out_bin file in
        output_bytes oc b;
        close_out oc;
        let metrics = Service.Metrics.create () in
        let cache2 = create ~metrics () in
        (match load cache2 ~dir with
        | Loaded { entries = 1; skipped = 1; _ } -> ()
        | Loaded { entries; skipped; _ } ->
            Alcotest.failf "expected 1 kept / 1 skipped, got %d/%d" entries
              skipped
        | Discarded _ | Absent -> Alcotest.fail "expected a partial load");
        check_int "the good entry still loads" 1 (length cache2);
        check_int "skip counted" 1
          metrics.Service.Metrics.cache_entries_skipped;
        rm_rf dir);
    case "save retries through a transient I/O fault" (fun () ->
        with_failpoints "cache.save=io@1" (fun () ->
            let dir = fresh_dir () in
            let metrics = Service.Metrics.create () in
            let cache = create ~metrics () in
            add cache (fp_m 10) dummy_entry;
            (match save_with_retry ~backoff_s:0.001 cache ~dir with
            | Ok () -> ()
            | Error e -> Alcotest.fail e);
            check_int "one retry" 1 metrics.Service.Metrics.cache_io_retries;
            check_false "dirty cleared" (dirty cache);
            let cache2 = create () in
            check_int "second attempt persisted" 1
              (loaded_count (load cache2 ~dir));
            rm_rf dir));
    case "a persistent I/O fault is a bounded error" (fun () ->
        with_failpoints "cache.save=io" (fun () ->
            let dir = fresh_dir () in
            let metrics = Service.Metrics.create () in
            let cache = create ~metrics () in
            add cache (fp_m 10) dummy_entry;
            (match save_with_retry ~attempts:3 ~backoff_s:0.001 cache ~dir with
            | Error _ -> ()
            | Ok () -> Alcotest.fail "every attempt should fail");
            check_int "two retries before giving up" 2
              metrics.Service.Metrics.cache_io_retries;
            check_true "still dirty" (dirty cache);
            rm_rf dir));
    case "an injected load fault is a cold start, not a crash" (fun () ->
        let dir = fresh_dir () in
        let cache = create () in
        add cache (fp_m 10) dummy_entry;
        save cache ~dir;
        with_failpoints "cache.load=io" (fun () ->
            let metrics = Service.Metrics.create () in
            let cache2 = create ~metrics () in
            match load cache2 ~dir with
            | Discarded _ ->
                check_int "counted" 1 metrics.Service.Metrics.cache_corrupt
            | Loaded _ | Absent -> Alcotest.fail "expected Discarded");
        rm_rf dir);
  ]

(* ------------------------------------------------------------------ *)
(* Fault injection in batches                                          *)
(* ------------------------------------------------------------------ *)

let injection_workloads = [ "G1"; "G2"; "G4"; "G5"; "G6" ]

let injection_requests () =
  List.map
    (fun w -> Service.Request.make ~workload:w ~arch:"cpu" ())
    injection_workloads

let injection_tests =
  [
    slow_case "one poisoned request degrades alone in a parallel batch"
      (fun () ->
        (* Baseline first, without faults, so "unaffected" is checked
           against what these requests actually produce. *)
        let baseline = Service.Batch.run ~jobs:1 (injection_requests ()) in
        with_failpoints "plan.solve(G5)=raise" (fun () ->
            let metrics = Service.Metrics.create () in
            let results =
              Service.Batch.run ~jobs:4 ~metrics (injection_requests ())
            in
            check_int "all answered" 5 (List.length results);
            List.iter2
              (fun ((req : Service.Request.t), result) (_, base) ->
                match (result, base) with
                | Error e, _ ->
                    Alcotest.failf "%s: %s"
                      (Service.Request.describe req)
                      (err_str e)
                | Ok r, Ok b ->
                    if req.Service.Request.workload = "G5" then begin
                      check_true "G5 degraded below fused"
                        (r.Service.Batch.rung <> Service.Plan_cache.Fused);
                      check_true "G5 carries the injected reason"
                        (r.Service.Batch.degraded <> None)
                    end
                    else
                      check_true
                        (req.Service.Request.workload ^ " matches baseline")
                        (response_signature r = response_signature b)
                | Ok _, Error e ->
                    Alcotest.failf "baseline %s: %s"
                      (Service.Request.describe req)
                      (err_str e))
              results baseline;
            check_int "no failures" 0 metrics.Service.Metrics.failed;
            check_true "the degradation was counted"
              (metrics.Service.Metrics.degraded >= 1)));
    slow_case "a fully poisoned request is a typed error, alone" (fun () ->
        with_failpoints "plan.solve(G5)=raise;plan.heuristic(G5)=raise"
          (fun () ->
            let metrics = Service.Metrics.create () in
            let results =
              Service.Batch.run ~jobs:4 ~metrics (injection_requests ())
            in
            List.iter
              (fun ((req : Service.Request.t), result) ->
                match (req.Service.Request.workload, result) with
                | "G5", Error e ->
                    check_string "typed" "internal" (Service.Error.code e);
                    check_true "retryable" (Service.Error.retryable e)
                | "G5", Ok _ ->
                    Alcotest.fail "G5 should fail on every rung"
                | w, Error e -> Alcotest.failf "%s: %s" w (err_str e)
                | _, Ok _ -> ())
              results;
            check_int "exactly one failure" 1 metrics.Service.Metrics.failed;
            check_int "counted as internal" 1
              metrics.Service.Metrics.internal_errors));
  ]

(* ------------------------------------------------------------------ *)
(* Serve-loop resilience marathon                                      *)
(* ------------------------------------------------------------------ *)

let marathon_tests =
  [
    slow_case "a 1k-line hostile session answers every line and survives"
      (fun () ->
        with_failpoints "serve.handle=raise@17" (fun () ->
            let line i =
              match i mod 5 with
              | 0 -> "{\"workload\":\"G1\",\"arch\":\"cpu\"}"
              | 1 -> Printf.sprintf "not json %d" i
              | 2 -> "{\"cmd\":\"bogus\"}"
              | 3 -> "{\"workload\":\"G99\",\"arch\":\"cpu\"}"
              | _ -> "{\"workload\":\"G1\",\"arch\":\"cpu\",\"batch\":0}"
            in
            let lines =
              List.init 1000 line
              @ [ "{\"cmd\":\"stats\"}"; "{\"cmd\":\"quit\"}" ]
            in
            let out = serve lines in
            check_int "one response per line" 1002 (List.length out);
            (* every request line got a definite answer *)
            List.iteri
              (fun i j ->
                if i < 1000 && Util.Json.member "ok" j = None then
                  Alcotest.failf "line %d: response lacks \"ok\"" i)
              out;
            let stats = List.nth out 1000 in
            check_true "the injected crash was answered as internal"
              (jfield "internal_errors" stats = Util.Json.Int 1);
            check_true "invalid lines were counted"
              (match jfield "invalid_requests" stats with
              | Util.Json.Int n -> n >= 500
              | _ -> false);
            check_true "valid lines kept compiling"
              (match jfield "cache_hits" stats with
              | Util.Json.Int n -> n >= 190
              | _ -> false);
            check_true "still alive at quit"
              (jfield "ok" (List.nth out 1001) = Util.Json.Bool true)));
  ]

(* ------------------------------------------------------------------ *)
(* Observability: timings on the wire, trace ring, histograms           *)
(* ------------------------------------------------------------------ *)

let observability_tests =
  [
    slow_case "timings appear only when the request opts in" (fun () ->
        let out =
          serve
            [
              "{\"workload\":\"G1\",\"arch\":\"cpu\",\"timings\":true,\
               \"id\":\"t\"}";
              "{\"workload\":\"G1\",\"arch\":\"cpu\",\"id\":\"p\"}";
              "{\"cmd\":\"quit\"}";
            ]
        in
        match out with
        | [ timed; plain; _quit ] ->
            check_true "timed ok" (jfield "ok" timed = Util.Json.Bool true);
            (match jfield "trace_id" timed with
            | Util.Json.String tid -> check_int "trace id" 16 (String.length tid)
            | _ -> Alcotest.fail "trace_id missing or not a string");
            (match jfield "timings_ms" timed with
            | Util.Json.Obj phases ->
                check_true "cold compile has a solve phase"
                  (List.mem_assoc "solve" phases);
                check_true "fingerprint phase present"
                  (List.mem_assoc "fingerprint" phases);
                List.iter
                  (fun (_, v) ->
                    check_true "phase totals are floats"
                      (match v with Util.Json.Float f -> f >= 0.0 | _ -> false))
                  phases
            | _ -> Alcotest.fail "timings_ms missing or not an object");
            check_true "plain response has no timings"
              (Util.Json.member "timings_ms" plain = None);
            check_true "plain response has no trace id"
              (Util.Json.member "trace_id" plain = None)
        | _ -> Alcotest.failf "expected 3 lines, got %d" (List.length out));
    slow_case "the traces verb dumps the bounded ring" (fun () ->
        let out =
          serve
            [
              "{\"workload\":\"G1\",\"arch\":\"cpu\"}";
              "{\"workload\":\"G99\",\"arch\":\"cpu\"}";
              "{\"cmd\":\"traces\"}";
              "{\"cmd\":\"quit\"}";
            ]
        in
        match out with
        | [ _ok; _bad; traces; _quit ] ->
            check_true "verb ok" (jfield "ok" traces = Util.Json.Bool true);
            (* The invalid workload was rejected before compilation, so
               only the successful request left a trace. *)
            check_true "one trace in the ring"
              (jfield "count" traces = Util.Json.Int 1);
            (match jfield "traces" traces with
            | Util.Json.List [ t ] ->
                check_true "trace carries spans"
                  (match Util.Json.member "spans" t with
                  | Some (Util.Json.List (_ :: _)) -> true
                  | _ -> false)
            | _ -> Alcotest.fail "traces is not a one-element list")
        | _ -> Alcotest.failf "expected 4 lines, got %d" (List.length out));
    slow_case "stats report latency histograms with quantiles" (fun () ->
        let out =
          serve
            [
              "{\"workload\":\"G1\",\"arch\":\"cpu\"}";
              "{\"workload\":\"G1\",\"arch\":\"cpu\"}";
              "{\"cmd\":\"stats\"}";
              "{\"cmd\":\"quit\"}";
            ]
        in
        match out with
        | [ _a; _b; stats; _quit ] ->
            (match jfield "solve_ms" stats with
            | Util.Json.Obj fields ->
                check_true "one cold solve"
                  (List.assoc "count" fields = Util.Json.Int 1);
                List.iter
                  (fun k ->
                    check_true (k ^ " quantile present")
                      (List.mem_assoc k fields))
                  [ "p50_ms"; "p90_ms"; "p99_ms" ]
            | _ -> Alcotest.fail "solve_ms is not a histogram summary");
            (match jfield "cache_lookup_ms" stats with
            | Util.Json.Obj fields ->
                check_true "both lookups observed"
                  (List.assoc "count" fields = Util.Json.Int 2)
            | _ -> Alcotest.fail "cache_lookup_ms is not a histogram summary")
        | _ -> Alcotest.failf "expected 4 lines, got %d" (List.length out));
    case "prometheus exposition covers counters and histograms" (fun () ->
        let m = Service.Metrics.create () in
        m.Service.Metrics.requests <- 2;
        Obs.Histogram.observe m.Service.Metrics.solve_ms 3.0;
        let text = Service.Metrics.to_prometheus m in
        let contains needle =
          let nl = String.length needle and hl = String.length text in
          let rec go i =
            i + nl <= hl && (String.sub text i nl = needle || go (i + 1))
          in
          go 0
        in
        List.iter
          (fun needle ->
            check_true (Printf.sprintf "exposition has %S" needle)
              (contains needle))
          [
            "# TYPE chimera_requests counter";
            "chimera_requests 2";
            "# TYPE chimera_solve_ms histogram";
            "chimera_solve_ms_bucket{le=\"+Inf\"} 1";
            "chimera_solve_ms_sum";
            "chimera_solve_ms_count 1";
          ]);
    case "the tuner request flag disables the cost model" (fun () ->
        let req =
          match
            Result.bind
              (Util.Json.parse
                 "{\"workload\":\"G1\",\"arch\":\"cpu\",\"tuner\":true}")
              Service.Request.of_json
          with
          | Ok r -> r
          | Error e -> Alcotest.fail e
        in
        check_true "flag parsed" req.Service.Request.tuner;
        let config = Service.Request.config_of ~base:default req in
        check_false "cost model off" config.Chimera.Config.use_cost_model;
        check_true "describe names the tuner"
          (String.ends_with ~suffix:"+tuner" (Service.Request.describe req));
        (* The flag changes planning, so it must change the fingerprint;
           timings is response-shaping only, so it must not. *)
        let plain = Service.Request.make ~workload:"G1" ~arch:"cpu" () in
        let timed =
          Service.Request.make ~timings:true ~workload:"G1" ~arch:"cpu" ()
        in
        let fp_of r =
          match Service.Request.resolve r with
          | Ok (chain, machine) ->
              Service.Fingerprint.of_request ~chain ~machine
                ~config:(Service.Request.config_of ~base:default r)
          | Error e -> Alcotest.fail (err_str e)
        in
        check_true "tuner changes the fingerprint" (fp_of req <> fp_of plain);
        check_true "timings does not" (fp_of timed = fp_of plain);
        (* Round-trip: the flag survives to_json / of_json. *)
        match
          Result.bind
            (Util.Json.parse
               (Util.Json.to_string (Service.Request.to_json req)))
            Service.Request.of_json
        with
        | Ok r2 -> check_true "round-trips" r2.Service.Request.tuner
        | Error e -> Alcotest.fail e);
    slow_case "a tuner compile traces tuner.search spans" (fun () ->
        let metrics = Service.Metrics.create () in
        let cache = Service.Plan_cache.create ~metrics () in
        let config = { default with Chimera.Config.use_cost_model = false } in
        let trace = Obs.Trace.make ~label:"tuner" () in
        (match
           Service.Batch.compile ~cache ~metrics ~config ~obs:trace
             ~machine:cpu (gemm ())
         with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (err_str e));
        let names =
          List.map (fun (s : Obs.Trace.span) -> s.Obs.Trace.name)
            (Obs.Trace.spans trace)
        in
        check_true "tuner.search span present"
          (List.mem "tuner.search" names);
        check_true "tuner trials observed in the histogram"
          (Obs.Histogram.count metrics.Service.Metrics.tuner_trial_ms > 0));
  ]

(* ------------------------------------------------------------------ *)
(* Property fuzz: the error wire format round-trips, and no corruption  *)
(* of the cache file ever escapes the loader                            *)
(* ------------------------------------------------------------------ *)

let qcheck = QCheck_alcotest.to_alcotest

let error_arb =
  let open QCheck in
  let msg = Gen.(string_size ~gen:printable (int_range 0 24)) in
  make ~print:Service.Error.to_string
    Gen.(
      oneof
        [
          map2
            (fun field reason ->
              Service.Error.Invalid_request { field; reason })
            msg msg;
          map (fun m -> Service.Error.No_feasible_tiling m) msg;
          map (fun m -> Service.Error.Deadline_exceeded m) msg;
          map (fun m -> Service.Error.Cache_corrupt m) msg;
          map (fun m -> Service.Error.Verify_failed m) msg;
          map (fun m -> Service.Error.Overloaded m) msg;
          map (fun m -> Service.Error.Internal m) msg;
        ])

(* (truncate?, position, flip mask) — how to damage the saved file. *)
let corruption_arb =
  QCheck.(triple bool (int_bound 100_000) (int_range 1 255))

let fuzz_tests =
  [
    qcheck
      (QCheck.Test.make ~count:500
         ~name:"every typed error round-trips through the wire" error_arb
         (fun e ->
           let line = Util.Json.to_string (Service.Error.to_json e) in
           match Util.Json.parse line with
           | Error _ -> false
           | Ok json -> Service.Error.of_json json = Ok e));
    qcheck
      (QCheck.Test.make ~count:60
         ~name:"no cache-file corruption escapes the loader" corruption_arb
         (fun (truncate, pos, mask) ->
           let open Service.Plan_cache in
           let dir = fresh_dir () in
           let saved = 3 in
           let cache = create () in
           for m = 10 to 9 + saved do
             add cache (fp (gemm ~m ())) dummy_entry
           done;
           save cache ~dir;
           let file = cache_file ~dir in
           let ic = open_in_bin file in
           let data = really_input_string ic (in_channel_length ic) in
           close_in ic;
           let damaged =
             if truncate then String.sub data 0 (pos mod (String.length data + 1))
             else begin
               let b = Bytes.of_string data in
               let i = pos mod Bytes.length b in
               Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor mask));
               Bytes.to_string b
             end
           in
           let oc = open_out_bin file in
           output_string oc damaged;
           close_out oc;
           let cache2 = create () in
           let ok =
             match load cache2 ~dir with
             | Loaded { entries; skipped; _ } ->
                 (* Only intact frames may be trusted; nothing fabricated.
                    [skipped] is diagnostic only: a flipped length field
                    can shred the remainder into several bogus frames,
                    and a cut at an exact frame boundary reads as a clean
                    (shorter) file. *)
                 entries <= saved && entries = length cache2 && skipped >= 0
             | Discarded _ ->
                 (* A damaged header discards wholesale — still safe. *)
                 length cache2 = 0
             | Absent -> false
           in
           rm_rf dir;
           ok));
  ]

(* ------------------------------------------------------------------ *)
(* Distributed tracing on the serve wire                               *)
(* ------------------------------------------------------------------ *)

let tracing_tests =
  [
    slow_case "a traceparent joins the request to the caller's trace"
      (fun () ->
        let out =
          serve
            [
              "{\"workload\":\"G1\",\"arch\":\"cpu\",\"id\":\"t\","
              ^ "\"traceparent\":\"00-deadbeefcafef00d-000000ab-01\"}";
              "{\"workload\":\"G1\",\"arch\":\"cpu\",\"id\":\"u\"}";
              "{\"cmd\":\"quit\"}";
            ]
        in
        match out with
        | [ traced; untraced; _quit ] ->
            check_true "ok" (jfield "ok" traced = Util.Json.Bool true);
            let ship = jfield "trace" traced in
            check_true "the adopted distributed trace id"
              (jfield "trace_id" ship
              = Util.Json.String "deadbeefcafef00d");
            check_true "parented under the caller's span"
              (jfield "remote_parent" ship = Util.Json.Int 0xab);
            (match jfield "spans" ship with
            | Util.Json.List spans ->
                check_true "spans shipped" (spans <> []);
                check_true "the pipeline root span is present"
                  (List.exists
                     (fun s ->
                       Util.Json.member "name" s
                       = Some (Util.Json.String "request"))
                     spans)
            | _ -> Alcotest.fail "trace.spans is not a list");
            check_true "untraced requests ship nothing"
              (Util.Json.member "trace" untraced = None)
        | l -> Alcotest.failf "expected 3 responses, got %d" (List.length l));
    slow_case "a malformed traceparent never fails the request" (fun () ->
        let out =
          serve
            [
              "{\"workload\":\"G1\",\"arch\":\"cpu\",\"id\":\"m\","
              ^ "\"traceparent\":\"99-not-a-context\"}";
              "{\"cmd\":\"quit\"}";
            ]
        in
        match out with
        | [ resp; _quit ] ->
            check_true "still answers ok"
              (jfield "ok" resp = Util.Json.Bool true);
            check_true "but joins no trace"
              (Util.Json.member "trace" resp = None)
        | l -> Alcotest.failf "expected 2 responses, got %d" (List.length l));
    slow_case "a traced failure's spans wait in the spool for cmd:spans"
      (fun () ->
        with_failpoints "plan.solve(G5)=raise;plan.heuristic(G5)=raise"
          (fun () ->
            let out =
              serve
                [
                  "{\"workload\":\"G5\",\"arch\":\"cpu\",\"id\":\"f\","
                  ^ "\"traceparent\":\"00-deadbeefcafef00d-000000ab-01\"}";
                  "{\"cmd\":\"spans\"}";
                  "{\"cmd\":\"spans\"}";
                  "{\"cmd\":\"quit\"}";
                ]
            in
            match out with
            | [ failed; drained; empty; _quit ] ->
                check_true "the request failed"
                  (jfield "ok" failed = Util.Json.Bool false);
                check_true "error schema carries no trace"
                  (Util.Json.member "trace" failed = None);
                check_true "one spooled payload"
                  (jfield "count" drained = Util.Json.Int 1);
                (match jfield "spans" drained with
                | Util.Json.List [ ship ] ->
                    check_true "the failed request's trace"
                      (jfield "trace_id" ship
                      = Util.Json.String "deadbeefcafef00d")
                | _ -> Alcotest.fail "spans is not a one-payload list");
                check_true "the drain drains"
                  (jfield "count" empty = Util.Json.Int 0)
            | l ->
                Alcotest.failf "expected 4 responses, got %d"
                  (List.length l)));
    slow_case "trace-loss counters ride the stats wire" (fun () ->
        let out =
          serve
            [
              "{\"workload\":\"G1\",\"arch\":\"cpu\",\"id\":\"s\","
              ^ "\"traceparent\":\"00-deadbeefcafef00d-000000ab-01\"}";
              "{\"cmd\":\"stats\"}";
              "{\"cmd\":\"stats\",\"full\":true}";
              "{\"cmd\":\"quit\"}";
            ]
        in
        match out with
        | [ _resp; stats; full; _quit ] ->
            List.iter
              (fun j ->
                List.iter
                  (fun key ->
                    match jfield key j with
                    | Util.Json.Int n ->
                        check_true (key ^ " is non-negative") (n >= 0)
                    | _ -> Alcotest.failf "%s is not an integer" key)
                  [ "trace_spans_dropped"; "trace_ring_evictions" ])
              [ stats; full ]
        | l -> Alcotest.failf "expected 4 responses, got %d" (List.length l));
  ]

let suites =
  [
    ("service.json", json_tests);
    ("service.fingerprint", fingerprint_tests);
    ("service.request", request_tests);
    ("service.plan_cache", cache_tests);
    ("service.tuner_errors", tuner_error_tests);
    ("service.batch", batch_tests);
    ("service.degradation", degradation_tests);
    ("service.serve", serve_tests);
    ("service.metrics", metrics_tests);
    ("service.observability", observability_tests);
    ("service.errors", error_tests);
    ("service.failpoint", failpoint_tests);
    ("service.validation", validation_tests);
    ("service.deadline", deadline_tests);
    ("service.recovery", recovery_tests);
    ("service.fuzz", fuzz_tests);
    ("service.injection", injection_tests);
    ("service.marathon", marathon_tests);
    ("service.tracing", tracing_tests);
  ]
