(* The sharded compilation fleet: consistent-hash ring, traffic mixes,
   multi-process plan-cache safety, router admission control and
   restarts (against scripted shell workers), the lossless metrics
   wire format, and end-to-end runs against real serve workers. *)

open Helpers

(* cwd is _build/default/test under dune runtest, the project root
   under dune exec. *)
let cli_exe =
  List.find_opt Sys.file_exists
    [ "../bin/chimera_cli.exe"; "_build/default/bin/chimera_cli.exe" ]
  |> Option.value ~default:"../bin/chimera_cli.exe"

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "chimera-fleet-test-%d-%d" (Unix.getpid ()) !n)
    in
    Unix.mkdir dir 0o755;
    dir

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let contains_sub s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let jfield k j =
  match Util.Json.member k j with
  | Some v -> v
  | None -> Alcotest.failf "json lacks %S" k

(* ------------------------------------------------------------------ *)
(* Ring                                                                *)
(* ------------------------------------------------------------------ *)

let uniform_keys n = List.init n (Printf.sprintf "key-%d")

let ring_tests =
  [
    case "every worker's share stays near 1/N" (fun () ->
        let keys = uniform_keys 20_000 in
        List.iter
          (fun n ->
            let ring = Fleet.Ring.create (List.init n Fun.id) in
            let fair = 20_000.0 /. float_of_int n in
            List.iter
              (fun (w, c) ->
                let c = float_of_int c in
                if c > 1.35 *. fair || c < fair /. 1.35 then
                  Alcotest.failf
                    "worker %d of %d owns %.0f keys (fair %.0f): imbalance \
                     beyond 1.35x"
                    w n c fair)
              (Fleet.Ring.spread ring keys))
          [ 2; 4; 8 ]);
    case "spread accounts for every key" (fun () ->
        let keys = uniform_keys 5_000 in
        let ring = Fleet.Ring.create [ 0; 1; 2 ] in
        check_int "total" 5_000
          (List.fold_left (fun s (_, c) -> s + c) 0
             (Fleet.Ring.spread ring keys)));
    case "removing a worker moves only its keys (~1/N)" (fun () ->
        let keys = uniform_keys 10_000 in
        let ring = Fleet.Ring.create [ 0; 1; 2; 3; 4 ] in
        let smaller = Fleet.Ring.remove ring 2 in
        let moved = ref 0 in
        List.iter
          (fun key ->
            let before = Fleet.Ring.lookup ring key in
            let after = Fleet.Ring.lookup smaller key in
            if before <> after then begin
              incr moved;
              (* A key may only move because worker 2 owned it. *)
              check_int "moved key was owned by the removed worker" 2 before
            end)
          keys;
        let frac = float_of_int !moved /. 10_000.0 in
        check_true "about 1/5 of keys moved" (frac > 0.10 && frac < 0.35));
    case "deterministic across constructions" (fun () ->
        let a = Fleet.Ring.create [ 0; 1; 2; 3 ] in
        let b = Fleet.Ring.create [ 3; 2; 1; 0 ] in
        List.iter
          (fun key ->
            check_int "same owner" (Fleet.Ring.lookup a key)
              (Fleet.Ring.lookup b key))
          (uniform_keys 500));
    case "construction and removal validate their inputs" (fun () ->
        check_raises_invalid "empty" (fun () -> Fleet.Ring.create []);
        check_raises_invalid "duplicates" (fun () ->
            Fleet.Ring.create [ 1; 1 ]);
        check_raises_invalid "vnodes" (fun () ->
            Fleet.Ring.create ~vnodes:0 [ 0 ]);
        check_raises_invalid "remove last" (fun () ->
            Fleet.Ring.remove (Fleet.Ring.create [ 7 ]) 7));
  ]

(* ------------------------------------------------------------------ *)
(* Traffic                                                             *)
(* ------------------------------------------------------------------ *)

let traffic_tests =
  [
    case "all nine networks map onto resolvable named workloads" (fun () ->
        let mixes = Fleet.Traffic.all () in
        check_int "nine mixes" 9 (List.length mixes);
        List.iter
          (fun mix ->
            List.iter
              (fun (req, weight) ->
                check_true "positive weight" (weight > 0.0);
                match Service.Request.resolve req with
                | Ok _ -> ()
                | Error e ->
                    Alcotest.failf "%s: %s" (Fleet.Traffic.name mix)
                      (Service.Error.to_string e))
              (Fleet.Traffic.entries mix))
          mixes);
    case "mix requests reproduce the attention geometry exactly" (fun () ->
        List.iter
          (fun (net : Workloads.Networks.t) ->
            let a = Workloads.Networks.attention_config net in
            List.iter
              (fun ((req : Service.Request.t), _) ->
                match Workloads.Gemm_configs.by_name req.workload with
                | None -> Alcotest.failf "unknown workload %s" req.workload
                | Some g ->
                    check_int "m" a.Workloads.Gemm_configs.m
                      g.Workloads.Gemm_configs.m;
                    check_int "n" a.Workloads.Gemm_configs.n
                      g.Workloads.Gemm_configs.n;
                    check_int "k" a.Workloads.Gemm_configs.k
                      g.Workloads.Gemm_configs.k;
                    check_int "l" a.Workloads.Gemm_configs.l
                      g.Workloads.Gemm_configs.l;
                    check_int "batch = heads" a.Workloads.Gemm_configs.batch
                      (Option.value req.batch
                         ~default:g.Workloads.Gemm_configs.batch))
              (Fleet.Traffic.entries (Fleet.Traffic.of_network net)))
          Workloads.Networks.all);
    case "the union mix covers all nine networks" (fun () ->
        match Fleet.Traffic.by_name "all" with
        | None -> Alcotest.fail "no union mix"
        | Some mix ->
            check_int "two entries per network" 18
              (List.length (Fleet.Traffic.entries mix));
            check_true "prewarm set is deduplicated"
              (List.length (Fleet.Traffic.unique_requests mix) <= 18));
    case "sampling is deterministic in the seed" (fun () ->
        let mix = Option.get (Fleet.Traffic.by_name "all") in
        let draw seed =
          let prng = Util.Prng.create ~seed in
          List.init 50 (fun _ ->
              Service.Request.describe (Fleet.Traffic.sample prng mix))
        in
        check_true "same seed, same stream" (draw 7 = draw 7);
        check_true "different seed, different stream" (draw 7 <> draw 8));
    case "batch jitter keeps the batch within [base, base+N)" (fun () ->
        let mix = Fleet.Traffic.of_network Workloads.Networks.bert_base in
        let heads =
          (Workloads.Networks.attention_config Workloads.Networks.bert_base)
            .Workloads.Gemm_configs.batch
        in
        let prng = Util.Prng.create ~seed:1 in
        for _ = 1 to 100 do
          let req = Fleet.Traffic.sample ~batch_jitter:8 prng mix in
          match req.Service.Request.batch with
          | None -> Alcotest.fail "jittered request lost its batch"
          | Some b ->
              check_true "within the jitter window"
                (b >= heads && b < heads + 8)
        done);
    case "unknown mixes are refused" (fun () ->
        check_true "none" (Fleet.Traffic.by_name "Not-A-Network" = None));
  ]

(* ------------------------------------------------------------------ *)
(* Plan-cache multi-process safety                                     *)
(* ------------------------------------------------------------------ *)

let dummy_entry =
  {
    Service.Plan_cache.rung = Service.Plan_cache.Fused;
    degrade_reason = None;
    units = [];
  }

let gemm_fp m =
  let chain =
    Ir.Chain.batch_gemm_chain ~name:"fleet-fp" ~batch:2 ~m ~n:6 ~k:5 ~l:10 ()
  in
  Service.Fingerprint.of_request ~chain
    ~machine:(Option.get (Arch.Presets.by_name "cpu"))
    ~config:Chimera.Config.default

let cache_contention_tests =
  [
    case "a save merges with entries another process wrote" (fun () ->
        (* The regression: two caches over one directory, neither aware
           of the other.  Before the directory lock + read-merge-write,
           the second save clobbered the first's entries wholesale. *)
        let dir = fresh_dir () in
        Fun.protect
          ~finally:(fun () -> rm_rf dir)
          (fun () ->
            let a = Service.Plan_cache.create () in
            Service.Plan_cache.add a (gemm_fp 10) dummy_entry;
            Service.Plan_cache.save a ~dir;
            let b = Service.Plan_cache.create () in
            Service.Plan_cache.add b (gemm_fp 11) dummy_entry;
            Service.Plan_cache.save b ~dir;
            let c = Service.Plan_cache.create () in
            check_int "union survives" 2
              (Service.Plan_cache.loaded_count
                 (Service.Plan_cache.load c ~dir));
            check_true "first writer's entry kept"
              (Service.Plan_cache.mem c (gemm_fp 10));
            check_true "second writer's entry kept"
              (Service.Plan_cache.mem c (gemm_fp 11))));
    case "own entries win over stale disk entries" (fun () ->
        let dir = fresh_dir () in
        Fun.protect
          ~finally:(fun () -> rm_rf dir)
          (fun () ->
            let a = Service.Plan_cache.create () in
            Service.Plan_cache.add a (gemm_fp 10) dummy_entry;
            Service.Plan_cache.save a ~dir;
            let b = Service.Plan_cache.create () in
            Service.Plan_cache.add b (gemm_fp 10)
              {
                dummy_entry with
                Service.Plan_cache.rung = Service.Plan_cache.Heuristic;
              };
            Service.Plan_cache.save b ~dir;
            let c = Service.Plan_cache.create () in
            ignore (Service.Plan_cache.load c ~dir);
            match Service.Plan_cache.find c (gemm_fp 10) with
            | Some e ->
                check_true "memory won"
                  (e.Service.Plan_cache.rung = Service.Plan_cache.Heuristic)
            | None -> Alcotest.fail "entry lost"));
    case "a stale crashed tmp file is harmless" (fun () ->
        let dir = fresh_dir () in
        Fun.protect
          ~finally:(fun () -> rm_rf dir)
          (fun () ->
            let stale =
              Service.Plan_cache.cache_file ~dir ^ ".tmp.99999"
            in
            let oc = open_out stale in
            output_string oc "garbage from a crashed worker";
            close_out oc;
            let a = Service.Plan_cache.create () in
            Service.Plan_cache.add a (gemm_fp 10) dummy_entry;
            Service.Plan_cache.save a ~dir;
            let c = Service.Plan_cache.create () in
            check_int "saved cleanly" 1
              (Service.Plan_cache.loaded_count
                 (Service.Plan_cache.load c ~dir))));
    slow_case "concurrent batch processes lose no entries" (fun () ->
        let dir = fresh_dir () in
        let reqs_file tag workload =
          let path = Filename.temp_file ("chimera-fleet-" ^ tag) ".jsonl" in
          let oc = open_out path in
          for b = 1 to 6 do
            Printf.fprintf oc
              {|{"workload": "%s", "arch": "cpu", "batch": %d}|} workload b;
            output_char oc '\n'
          done;
          close_out oc;
          path
        in
        (* G2 and G7 differ in geometry (512x64x64x512 vs 208x64x64x208),
           so the twelve batch-overridden requests carry twelve distinct
           fingerprints — G2 vs G3 would collapse to six, since those
           differ only in head count, which the override replaces. *)
        let fa = reqs_file "a" "G2" and fb = reqs_file "b" "G7" in
        Fun.protect
          ~finally:(fun () ->
            rm_rf dir;
            Sys.remove fa;
            Sys.remove fb)
          (fun () ->
            let spawn f =
              Unix.create_process cli_exe
                [| cli_exe; "batch"; "-r"; f; "--cache-dir"; dir |]
                Unix.stdin
                (Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0o644)
                Unix.stderr
            in
            let pa = spawn fa and pb = spawn fb in
            let wait pid =
              match Unix.waitpid [] pid with
              | _, Unix.WEXITED 0 -> ()
              | _, _ -> Alcotest.fail "batch process failed"
            in
            wait pa;
            wait pb;
            let c = Service.Plan_cache.create () in
            check_int "all twelve plans on disk" 12
              (Service.Plan_cache.loaded_count
                 (Service.Plan_cache.load c ~dir))));
  ]

(* ------------------------------------------------------------------ *)
(* Router against scripted shell workers                               *)
(* ------------------------------------------------------------------ *)

let sh script = [| "/bin/sh"; "-c"; script |]

(* Answers every line with a fixed ok:true object. *)
let ok_worker = sh {|while read l; do echo '{"ok": true}'; done|}

(* Consumes nothing: every routed request stays queued forever. *)
let silent_worker = sh "exec sleep 1000"

(* Echoes each request line back verbatim (lets tests inspect exactly
   what the router forwarded). *)
let cat_worker = [| "/bin/cat" |]

(* Reads one line, then dies without answering. *)
let dying_worker = sh "read l; exit 7"

let g2 ?batch ?deadline_ms () =
  Service.Request.make ?batch ?deadline_ms ~workload:"G2" ~arch:"cpu" ()

let poll_until ?(timeout_s = 10.0) router n =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let acc = ref [] in
  while List.length !acc < n && Unix.gettimeofday () < deadline do
    acc := !acc @ Fleet.Router.poll ~timeout_s:0.05 router
  done;
  if List.length !acc < n then
    Alcotest.failf "expected %d events, got %d" n (List.length !acc);
  !acc

let counter router name =
  match List.assoc_opt name (Fleet.Router.counters router) with
  | Some v -> v
  | None -> Alcotest.failf "no router counter %S" name

let with_router ?cfg cmds f =
  let router = Fleet.Router.create ?cfg cmds in
  Fun.protect ~finally:(fun () -> Fleet.Router.shutdown ~timeout_s:0.5 router) (fun () -> f router)

let router_tests =
  [
    case "the hard band sheds with the typed retryable error" (fun () ->
        let cfg =
          {
            Fleet.Router.default_config with
            Fleet.Router.queue_depth = 4;
            soft_depth = 100;
          }
        in
        with_router ~cfg [| silent_worker |] (fun router ->
            let outcomes =
              List.init 10 (fun b ->
                  Fleet.Router.submit router (g2 ~batch:(b + 1) ()))
            in
            let routed, answered =
              List.partition
                (function Fleet.Router.Routed _ -> true | _ -> false)
                outcomes
            in
            check_int "hard band admits queue_depth" 4 (List.length routed);
            check_int "the rest shed" 6 (List.length answered);
            List.iter
              (function
                | Fleet.Router.Answered json ->
                    check_true "typed overloaded"
                      (Util.Json.member "code" json
                      = Some (Util.Json.String "overloaded"));
                    check_true "retryable"
                      (Util.Json.member "retryable" json
                      = Some (Util.Json.Bool true))
                | Fleet.Router.Routed _ -> ())
              answered;
            check_int "shed counter" 6 (counter router "shed");
            check_int "routed counter" 4 (counter router "routed")));
    case "the soft band stamps deadlines onto deep queues" (fun () ->
        let cfg =
          {
            Fleet.Router.default_config with
            Fleet.Router.queue_depth = 10;
            soft_depth = 1;
            degrade_deadline_ms = 25.0;
          }
        in
        with_router ~cfg [| cat_worker |] (fun router ->
            (* Distinct batches so the hot cache cannot short-circuit. *)
            for b = 1 to 3 do
              match Fleet.Router.submit router (g2 ~batch:b ()) with
              | Fleet.Router.Routed _ -> ()
              | Fleet.Router.Answered _ -> Alcotest.fail "unexpected answer"
            done;
            let events = poll_until router 3 in
            let deadlines =
              List.filter_map
                (fun (ev : Fleet.Router.event) ->
                  match ev.outcome with
                  | Fleet.Router.Reply { json; _ } ->
                      Util.Json.member "deadline_ms" json
                  | Fleet.Router.Dropped _ -> None)
                events
            in
            (* First request saw depth 0 (< soft band); the next two got
               the injected 25ms budget. *)
            check_int "two stamped" 2 (List.length deadlines);
            List.iter
              (fun d -> check_true "25ms" (d = Util.Json.Float 25.0))
              deadlines;
            check_int "admission_degraded counter" 2
              (counter router "admission_degraded");
            (* A request carrying its own deadline keeps it. *)
            (match
               Fleet.Router.submit router (g2 ~batch:9 ~deadline_ms:400.0 ())
             with
            | Fleet.Router.Routed _ -> ()
            | Fleet.Router.Answered _ -> Alcotest.fail "unexpected answer");
            (match poll_until router 1 with
            | [ { outcome = Fleet.Router.Reply { json; _ }; _ } ] ->
                check_true "own deadline kept"
                  (Util.Json.member "deadline_ms" json
                  = Some (Util.Json.Float 400.0))
            | _ -> Alcotest.fail "expected one reply");
            check_int "still two stamped" 2
              (counter router "admission_degraded")));
    case "client ids ride through routing" (fun () ->
        with_router [| cat_worker |] (fun router ->
            (match
               Fleet.Router.submit ~id:(Util.Json.Int 42)
                 ~raw:
                   (Util.Json.Obj
                      [
                        ("workload", Util.Json.String "G2");
                        ("arch", Util.Json.String "cpu");
                      ])
                 router (g2 ())
             with
            | Fleet.Router.Routed _ -> ()
            | Fleet.Router.Answered _ -> Alcotest.fail "unexpected answer");
            match poll_until router 1 with
            | [ { outcome = Fleet.Router.Reply { json; _ }; client_id; _ } ] ->
                check_true "id forwarded on the wire"
                  (Util.Json.member "id" json = Some (Util.Json.Int 42));
                check_true "id remembered on the ticket"
                  (client_id = Some (Util.Json.Int 42))
            | _ -> Alcotest.fail "expected one reply"));
    case "a dead worker drops its queue with typed errors and respawns"
      (fun () ->
        with_router [| dying_worker |] (fun router ->
            let pid0 = Fleet.Router.worker_pid router 0 in
            for b = 1 to 2 do
              match Fleet.Router.submit router (g2 ~batch:b ()) with
              | Fleet.Router.Routed _ -> ()
              | Fleet.Router.Answered _ -> Alcotest.fail "unexpected answer"
            done;
            let events = poll_until router 2 in
            List.iter
              (fun (ev : Fleet.Router.event) ->
                match ev.outcome with
                | Fleet.Router.Dropped e ->
                    check_string "typed overloaded" "overloaded"
                      (Service.Error.code e);
                    check_true "retryable" (Service.Error.retryable e)
                | Fleet.Router.Reply _ ->
                    Alcotest.fail "a dead worker cannot reply")
              events;
            check_int "one restart" 1 (Fleet.Router.worker_restarts_of router 0);
            check_true "fresh pid" (Fleet.Router.worker_pid router 0 <> pid0);
            (* The fresh slot accepts traffic again. *)
            match Fleet.Router.submit router (g2 ~batch:3 ()) with
            | Fleet.Router.Routed _ -> ()
            | Fleet.Router.Answered _ -> Alcotest.fail "slot should be open"));
    case "hot replication answers repeats at the router" (fun () ->
        let cfg =
          { Fleet.Router.default_config with Fleet.Router.replicate_after = 2 }
        in
        with_router ~cfg [| ok_worker |] (fun router ->
            let submit_and_wait () =
              match Fleet.Router.submit router (g2 ()) with
              | Fleet.Router.Routed _ -> ignore (poll_until router 1)
              | Fleet.Router.Answered _ -> ()
            in
            submit_and_wait ();
            submit_and_wait ();
            (* Two ok answers for this fingerprint: the third never
               reaches a worker. *)
            match Fleet.Router.submit ~id:(Util.Json.Int 7) router (g2 ()) with
            | Fleet.Router.Answered json ->
                check_true "served from the hot tier"
                  (Util.Json.member "ok" json = Some (Util.Json.Bool true));
                check_true "id attached"
                  (Util.Json.member "id" json = Some (Util.Json.Int 7));
                check_int "hot_hits counter" 1 (counter router "hot_hits")
            | Fleet.Router.Routed _ -> Alcotest.fail "expected a hot answer"));
    case "health sweeps restart unresponsive workers after K" (fun () ->
        let cfg =
          {
            Fleet.Router.default_config with
            Fleet.Router.restart_after = 2;
            health_timeout_s = 0.2;
          }
        in
        with_router ~cfg [| silent_worker |] (fun router ->
            (match Fleet.Router.check_health router with
            | [ (0, `Unanswered) ] -> ()
            | _ -> Alcotest.fail "expected one unanswered probe");
            (match Fleet.Router.check_health router with
            | [ (0, `Restarted) ] -> ()
            | _ -> Alcotest.fail "expected the second strike to restart");
            check_int "restart recorded" 1
              (Fleet.Router.worker_restarts_of router 0)));
    case "a responsive worker passes health sweeps" (fun () ->
        with_router [| ok_worker |] (fun router ->
            match Fleet.Router.check_health router with
            | [ (0, `Ok json) ] ->
                check_true "ok"
                  (Util.Json.member "ok" json = Some (Util.Json.Bool true))
            | _ -> Alcotest.fail "expected an ok probe"));
    case "invalid requests are rejected at the front door" (fun () ->
        with_router [| silent_worker |] (fun router ->
            match
              Fleet.Router.submit router
                (Service.Request.make ~workload:"NOPE" ~arch:"cpu" ())
            with
            | Fleet.Router.Answered json ->
                check_true "typed invalid_request"
                  (Util.Json.member "code" json
                  = Some (Util.Json.String "invalid_request"));
                check_int "counted" 1 (counter router "rejected_invalid");
                check_int "nothing routed" 0 (counter router "routed")
            | Fleet.Router.Routed _ ->
                Alcotest.fail "invalid request must not reach a worker"));
    case "garbage worker output synthesizes a typed internal error"
      (fun () ->
        let garbage_worker = sh {|while read l; do echo 'not json'; done|} in
        with_router [| garbage_worker |] (fun router ->
            (match Fleet.Router.submit router (g2 ()) with
            | Fleet.Router.Routed _ -> ()
            | Fleet.Router.Answered _ -> Alcotest.fail "unexpected answer");
            (match poll_until router 1 with
            | [ { outcome = Fleet.Router.Dropped e; _ } ] ->
                check_string "typed internal" "internal" (Service.Error.code e)
            | _ -> Alcotest.fail "expected a dropped event");
            check_int "protocol error counted" 1
              (counter router "protocol_errors")));
  ]

(* ------------------------------------------------------------------ *)
(* Metrics wire format and merge                                       *)
(* ------------------------------------------------------------------ *)

let wire_tests =
  [
    case "histogram wire roundtrip is lossless" (fun () ->
        let h = Obs.Histogram.create () in
        List.iter (Obs.Histogram.observe h) [ 0.004; 0.5; 3.0; 123.0; 9000.0 ];
        match Obs.Histogram.of_wire_json (Obs.Histogram.to_wire_json h) with
        | Error e -> Alcotest.fail e
        | Ok h' ->
            check_int "count" (Obs.Histogram.count h) (Obs.Histogram.count h');
            check_float ~eps:1e-9 "sum" (Obs.Histogram.sum_ms h)
              (Obs.Histogram.sum_ms h');
            check_float ~eps:1e-9 "max" (Obs.Histogram.max_ms h)
              (Obs.Histogram.max_ms h');
            List.iter
              (fun q ->
                check_float ~eps:1e-9
                  (Printf.sprintf "p%g" (q *. 100.0))
                  (Obs.Histogram.quantile h q)
                  (Obs.Histogram.quantile h' q))
              [ 0.5; 0.9; 0.99 ]);
    case "empty histogram roundtrips" (fun () ->
        let h = Obs.Histogram.create () in
        match Obs.Histogram.of_wire_json (Obs.Histogram.to_wire_json h) with
        | Error e -> Alcotest.fail e
        | Ok h' -> check_int "count" 0 (Obs.Histogram.count h'));
    case "histogram wire form rejects layout mismatches" (fun () ->
        check_true "not an object"
          (Result.is_error (Obs.Histogram.of_wire_json (Util.Json.Int 3)));
        let h = Obs.Histogram.create () in
        match Obs.Histogram.to_wire_json h with
        | Util.Json.Obj fields ->
            let broken =
              Util.Json.Obj
                (List.map
                   (fun (k, v) ->
                     if k = "counts" then
                       (k, Util.Json.List [ Util.Json.Int 1 ])
                     else (k, v))
                   fields)
            in
            check_true "bad counts length"
              (Result.is_error (Obs.Histogram.of_wire_json broken))
        | _ -> Alcotest.fail "wire form should be an object");
    case "metrics merge adds counters and pools histograms" (fun () ->
        let a = Service.Metrics.create () and b = Service.Metrics.create () in
        a.Service.Metrics.requests <- 3;
        b.Service.Metrics.requests <- 4;
        a.Service.Metrics.degraded <- 1;
        Obs.Histogram.observe a.Service.Metrics.solve_ms 10.0;
        Obs.Histogram.observe b.Service.Metrics.solve_ms 1000.0;
        let m = Service.Metrics.create () in
        Service.Metrics.merge ~into:m a;
        Service.Metrics.merge ~into:m b;
        check_int "requests add" 7 m.Service.Metrics.requests;
        check_int "degraded adds" 1 m.Service.Metrics.degraded;
        check_int "histogram pools" 2
          (Obs.Histogram.count m.Service.Metrics.solve_ms);
        (* The pooled p99 sees b's slow solve — an average of per-worker
           p99s could not. *)
        check_true "pooled tail"
          (Obs.Histogram.quantile m.Service.Metrics.solve_ms 0.99 > 500.0));
    case "metrics wire roundtrip preserves counters and histograms"
      (fun () ->
        let a = Service.Metrics.create () in
        a.Service.Metrics.requests <- 9;
        a.Service.Metrics.hits <- 4;
        a.Service.Metrics.deadline_exceeded <- 2;
        Obs.Histogram.observe a.Service.Metrics.cache_lookup_ms 0.02;
        match Service.Metrics.of_wire_json (Service.Metrics.to_wire_json a) with
        | Error e -> Alcotest.fail e
        | Ok a' ->
            check_int "requests" 9 a'.Service.Metrics.requests;
            check_int "hits" 4 a'.Service.Metrics.hits;
            check_int "deadline_exceeded" 2
              a'.Service.Metrics.deadline_exceeded;
            check_int "histogram count" 1
              (Obs.Histogram.count a'.Service.Metrics.cache_lookup_ms));
    case "prometheus labels reach every series" (fun () ->
        let m = Service.Metrics.create () in
        m.Service.Metrics.requests <- 1;
        Obs.Histogram.observe m.Service.Metrics.solve_ms 5.0;
        let text = Service.Metrics.to_prometheus ~labels:[ ("worker", "3") ] m in
        check_true "counter labelled"
          (contains_sub text {|chimera_requests{worker="3"}|});
        check_true "bucket carries both labels"
          (contains_sub text {|{worker="3",le="|}));
    case "loadgen classifies the wire taxonomy" (fun () ->
        let j s = Result.get_ok (Util.Json.parse s) in
        check_true "full"
          (Fleet.Loadgen.classify (j {|{"ok": true, "degraded": null}|})
          = `Ok);
        check_true "degraded"
          (Fleet.Loadgen.classify (j {|{"ok": true, "degraded": "split"}|})
          = `Degraded);
        check_true "shed"
          (Fleet.Loadgen.classify (j {|{"ok": false, "code": "overloaded"}|})
          = `Shed);
        check_true "rejected"
          (Fleet.Loadgen.classify
             (j {|{"ok": false, "code": "invalid_request"}|})
          = `Rejected);
        check_true "failed"
          (Fleet.Loadgen.classify (j {|{"ok": false, "code": "internal"}|})
          = `Failed));
  ]

(* ------------------------------------------------------------------ *)
(* End-to-end against real serve workers                               *)
(* ------------------------------------------------------------------ *)

let real_worker = [| cli_exe; "serve" |]

let e2e_tests =
  [
    slow_case "a two-worker fleet answers, health-checks and merges stats"
      (fun () ->
        with_router [| real_worker; real_worker |] (fun router ->
            let n = 4 in
            for b = 1 to n do
              match Fleet.Router.submit router (g2 ~batch:b ()) with
              | Fleet.Router.Routed _ -> ()
              | Fleet.Router.Answered json ->
                  Alcotest.failf "unexpected synchronous answer: %s"
                    (Util.Json.to_string json)
            done;
            let events = poll_until ~timeout_s:120.0 router n in
            let fps = Hashtbl.create 8 in
            List.iter
              (fun (ev : Fleet.Router.event) ->
                match ev.outcome with
                | Fleet.Router.Reply { json; _ } ->
                    check_true "ok"
                      (Util.Json.member "ok" json
                      = Some (Util.Json.Bool true));
                    Hashtbl.replace fps (jfield "fingerprint" json) ()
                | Fleet.Router.Dropped e ->
                    Alcotest.fail (Service.Error.to_string e))
              events;
            check_int "four distinct fingerprints" n (Hashtbl.length fps);
            (* Health: both workers answer with their own pids. *)
            let healths = Fleet.Router.check_health ~timeout_s:30.0 router in
            check_int "both probed" 2 (List.length healths);
            List.iter
              (fun (wid, st) ->
                match st with
                | `Ok json ->
                    check_true "pid matches"
                      (Util.Json.member "pid" json
                      = Some (Util.Json.Int (Fleet.Router.worker_pid router wid)))
                | _ -> Alcotest.failf "worker %d failed health" wid)
              healths;
            (* Stats: merged counters equal the sum over workers, and the
               merged histogram pools every solve. *)
            let merged, per_worker =
              Fleet.Router.collect_stats ~timeout_s:30.0 router
            in
            check_int "both reported" 2 (List.length per_worker);
            check_int "requests add up" n
              merged.Service.Metrics.requests;
            check_int "merged requests = sum of workers"
              (List.fold_left
                 (fun s (_, m) -> s + m.Service.Metrics.requests)
                 0 per_worker)
              merged.Service.Metrics.requests;
            check_int "merged solve histogram pools workers"
              (List.fold_left
                 (fun s (_, m) ->
                   s + Obs.Histogram.count m.Service.Metrics.solve_ms)
                 0 per_worker)
              (Obs.Histogram.count merged.Service.Metrics.solve_ms);
            (* The fleet exposition carries merged, per-worker and router
               series. *)
            let text = Fleet.Router.prometheus router ~merged ~per_worker in
            check_true "merged series"
              (contains_sub text "chimera_requests 4");
            check_true "worker label"
              (contains_sub text {|{worker="0"}|});
            check_true "router series"
              (contains_sub text "chimera_fleet_routed 4")));
    slow_case "prewarming fills the hot tier" (fun () ->
        with_router [| real_worker |] (fun router ->
            let mix =
              Fleet.Traffic.of_network Workloads.Networks.transformer_small
            in
            let reqs = Fleet.Traffic.unique_requests mix in
            check_int "everything warmed" (List.length reqs)
              (Fleet.Router.prewarm ~timeout_s:120.0 router reqs);
            (* The same requests now answer at the router, no worker
               round-trip. *)
            List.iter
              (fun req ->
                match Fleet.Router.submit router req with
                | Fleet.Router.Answered json ->
                    check_true "hot answer is a success"
                      (Util.Json.member "ok" json
                      = Some (Util.Json.Bool true))
                | Fleet.Router.Routed _ ->
                    Alcotest.fail "prewarmed request hit a worker")
              reqs;
            check_int "hot hits counted" (List.length reqs)
              (counter router "hot_hits")));
    slow_case "an open-loop run answers every request" (fun () ->
        with_router [| real_worker; real_worker |] (fun router ->
            let mix = Option.get (Fleet.Traffic.by_name "Bert-Base") in
            let r =
              Fleet.Loadgen.run ~seed:3 ~prewarm:true ~mix ~rps:25.0
                ~duration_s:1.5 router
            in
            check_true "offered some load" (r.Fleet.Loadgen.offered > 10);
            check_int "every request answered" r.Fleet.Loadgen.offered
              r.Fleet.Loadgen.answered;
            check_int "nothing unanswered" 0 r.Fleet.Loadgen.unanswered;
            check_int "nothing failed" 0 r.Fleet.Loadgen.failed;
            check_true "latency recorded"
              (Obs.Histogram.count r.Fleet.Loadgen.latency
              = r.Fleet.Loadgen.answered);
            (* Deterministic arrivals: the report's offered count depends
               only on the seed and clock, so just sanity-check JSON. *)
            match Fleet.Loadgen.report_json r with
            | Util.Json.Obj _ -> ()
            | _ -> Alcotest.fail "report_json should be an object"));
    slow_case "a chaos run terminally answers every request" (fun () ->
        let cfg =
          {
            Fleet.Router.default_config with
            Fleet.Router.response_deadline_s = 3.0;
            restart_backoff_s = 0.05;
          }
        in
        with_router ~cfg [| real_worker; real_worker |] (fun router ->
            let mix = Option.get (Fleet.Traffic.by_name "Bert-Base") in
            let spec =
              {
                Fleet.Chaos.none with
                Fleet.Chaos.kill_gap = 20.0;
                slow_gap = 25.0;
                garbage_gap = 30.0;
              }
            in
            let chaos = Fleet.Chaos.create ~spec ~seed:5 ~workers:2 () in
            let r =
              Fleet.Loadgen.run ~seed:3 ~drain_timeout_s:60.0 ~chaos
                ~retries:3 ~mix ~rps:40.0 ~duration_s:2.0 router
            in
            (* The chaos invariant: every request reaches a terminal
               typed answer — recovered, shed, or given up — none stuck. *)
            check_int "nothing unanswered" 0 r.Fleet.Loadgen.unanswered;
            check_int "every request terminally answered"
              r.Fleet.Loadgen.offered r.Fleet.Loadgen.answered;
            check_true "faults actually fired"
              (List.assoc "kill" r.Fleet.Loadgen.chaos > 0);
            check_true "injections reached the router"
              (counter router "chaos_injected" > 0)));
  ]

(* ------------------------------------------------------------------ *)
(* Chaos schedules: deterministic fault streams                        *)
(* ------------------------------------------------------------------ *)

let collect_events ~spec ~seed ~workers n =
  let c = Fleet.Chaos.create ~spec ~seed ~workers () in
  let evs =
    List.concat_map (fun _ -> Fleet.Chaos.advance c) (List.init n Fun.id)
  in
  (c, evs)

let chaos_tests =
  [
    case "a schedule replays exactly from its seed" (fun () ->
        let spec = Fleet.Chaos.default_spec in
        let _, a = collect_events ~spec ~seed:7 ~workers:4 2000 in
        let _, b = collect_events ~spec ~seed:7 ~workers:4 2000 in
        check_true "some faults fired" (List.length a > 0);
        check_true "identical replay" (a = b);
        let _, c = collect_events ~spec ~seed:8 ~workers:4 2000 in
        check_true "a different seed is a different schedule" (a <> c));
    case "the virtual clock and fired counts reconcile" (fun () ->
        let spec = Fleet.Chaos.default_spec in
        let c, evs = collect_events ~spec ~seed:3 ~workers:2 1500 in
        check_int "one tick per advance" 1500 (Fleet.Chaos.tick c);
        let fired = Fleet.Chaos.fired c in
        check_int "ticks reported" 1500 (List.assoc "ticks" fired);
        let count k =
          List.length
            (List.filter
               (fun (ev : Fleet.Chaos.event) ->
                 Fleet.Chaos.kind_to_string ev.kind = k)
               evs)
        in
        List.iter
          (fun k -> check_int k (count k) (List.assoc k fired))
          [ "kill"; "hang"; "slow"; "garbage" ];
        List.iter
          (fun (ev : Fleet.Chaos.event) ->
            check_true "tick in range" (ev.tick >= 1 && ev.tick <= 1500);
            check_true "worker in range" (ev.worker >= 0 && ev.worker < 2))
          evs);
    case "a zero gap disables the kind" (fun () ->
        let spec = { Fleet.Chaos.none with Fleet.Chaos.kill_gap = 5.0 } in
        let _, evs = collect_events ~spec ~seed:1 ~workers:3 500 in
        check_true "kills fired" (List.length evs > 10);
        List.iter
          (fun (ev : Fleet.Chaos.event) ->
            check_true "only kills" (ev.Fleet.Chaos.kind = Fleet.Chaos.Kill))
          evs);
    case "the spec grammar round-trips" (fun () ->
        let spec = Fleet.Chaos.default_spec in
        (match Fleet.Chaos.parse_spec (Fleet.Chaos.spec_to_string spec) with
        | Ok s -> check_true "round trip" (s = spec)
        | Error e -> Alcotest.fail e);
        (match Fleet.Chaos.parse_spec "kill:40;torn:0.5" with
        | Ok s ->
            check_true "kill set" (s.Fleet.Chaos.kill_gap = 40.0);
            check_true "torn set" (s.Fleet.Chaos.torn_prob = 0.5);
            check_true "others off" (s.Fleet.Chaos.hang_gap = 0.0)
        | Error e -> Alcotest.fail e);
        check_true "unknown kinds are refused"
          (Result.is_error (Fleet.Chaos.parse_spec "fire:3"));
        check_true "non-numeric rates are refused"
          (Result.is_error (Fleet.Chaos.parse_spec "kill:often"));
        check_true "probabilities beyond 1 are refused"
          (Result.is_error (Fleet.Chaos.parse_spec "torn:1.5")));
    case "torn-save failpoints derive per worker" (fun () ->
        let spec = Fleet.Chaos.default_spec in
        check_true "off when torn:0"
          (Fleet.Chaos.torn_failpoint Fleet.Chaos.none ~seed:1 ~worker:0
          = None);
        match
          ( Fleet.Chaos.torn_failpoint spec ~seed:1 ~worker:0,
            Fleet.Chaos.torn_failpoint spec ~seed:1 ~worker:0,
            Fleet.Chaos.torn_failpoint spec ~seed:1 ~worker:1 )
        with
        | Some a, Some a', Some b ->
            check_string "deterministic" a a';
            check_true "distinct workers, distinct streams" (a <> b);
            check_true "targets the torn failpoint"
              (contains_sub a "cache.save.torn=prob:")
        | _ -> Alcotest.fail "expected failpoint specs");
  ]

(* ------------------------------------------------------------------ *)
(* Supervisor: spawn failures, restarts, backoff, the breaker, and     *)
(* injected faults                                                     *)
(* ------------------------------------------------------------------ *)

let ev ?(tick = 1) worker kind = { Fleet.Chaos.tick; worker; kind }

(* Pump the router until [pred] holds, failing after [timeout_s]. *)
let wait_for ?(timeout_s = 10.0) ~what router pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if not (pred ()) then
      if Unix.gettimeofday () > deadline then
        Alcotest.failf "timed out waiting for %s" what
      else begin
        ignore (Fleet.Router.poll ~timeout_s:0.05 router);
        go ()
      end
  in
  go ()

let supervisor_tests =
  [
    case "a missing worker binary is a typed spawn failure" (fun () ->
        match Fleet.Router.create [| [| "/no/such/chimera-worker" |] |] with
        | router ->
            Fleet.Router.shutdown ~timeout_s:0.5 router;
            Alcotest.fail "expected Spawn_failed"
        | exception Fleet.Worker.Spawn_failed { cmd; reason } ->
            check_string "names the binary" "/no/such/chimera-worker" cmd;
            check_true "carries a reason" (String.length reason > 0));
    case "a worker dying at startup is a spawn failure, not a restart loop"
      (fun () ->
        let cfg =
          { Fleet.Router.default_config with Fleet.Router.spawn_grace_s = 0.5 }
        in
        match Fleet.Router.create ~cfg [| sh "exit 3" |] with
        | router ->
            Fleet.Router.shutdown ~timeout_s:0.5 router;
            Alcotest.fail "expected Spawn_failed"
        | exception Fleet.Worker.Spawn_failed { reason; _ } ->
            check_true "reports the early exit"
              (contains_sub reason "exit"));
    case "a hung worker's queued request is answered at the deadline"
      (fun () ->
        let cfg =
          {
            Fleet.Router.default_config with
            Fleet.Router.response_deadline_s = 0.3;
          }
        in
        with_router ~cfg [| ok_worker |] (fun router ->
            Fleet.Router.inject router (ev 0 Fleet.Chaos.Hang);
            check_int "injection counted" 1 (counter router "chaos_injected");
            (match Fleet.Router.submit router (g2 ()) with
            | Fleet.Router.Routed _ -> ()
            | Fleet.Router.Answered _ -> Alcotest.fail "unexpected answer");
            (match poll_until router 1 with
            | [ { outcome = Fleet.Router.Dropped e; _ } ] ->
                check_string "typed deadline_exceeded" "deadline_exceeded"
                  (Service.Error.code e);
                check_true "retryable" (Service.Error.retryable e)
            | _ -> Alcotest.fail "expected one dropped event");
            check_int "deadline drop counted" 1
              (counter router "deadline_drops");
            check_int "the worker was restarted" 1
              (Fleet.Router.worker_restarts_of router 0);
            (* The respawned worker serves again. *)
            match Fleet.Router.submit router (g2 ~batch:2 ()) with
            | Fleet.Router.Routed _ -> ignore (poll_until router 1)
            | Fleet.Router.Answered _ -> Alcotest.fail "slot should be open"));
    case "a slow injection stalls the worker but loses nothing" (fun () ->
        with_router [| ok_worker |] (fun router ->
            Fleet.Router.inject router
              (ev 0 (Fleet.Chaos.Slow { stall_ms = 150.0 }));
            (match Fleet.Router.submit router (g2 ()) with
            | Fleet.Router.Routed _ -> ()
            | Fleet.Router.Answered _ -> Alcotest.fail "unexpected answer");
            (match poll_until router 1 with
            | [ { outcome = Fleet.Router.Reply { json; _ }; _ } ] ->
                check_true "answered after the stall"
                  (Util.Json.member "ok" json = Some (Util.Json.Bool true))
            | _ -> Alcotest.fail "expected a reply");
            check_int "no restart" 0
              (Fleet.Router.worker_restarts_of router 0)));
    case "garbage on the wire restarts the worker with typed answers"
      (fun () ->
        with_router [| silent_worker |] (fun router ->
            (match Fleet.Router.submit router (g2 ()) with
            | Fleet.Router.Routed _ -> ()
            | Fleet.Router.Answered _ -> Alcotest.fail "unexpected answer");
            Fleet.Router.inject router (ev 0 Fleet.Chaos.Garbage);
            (match poll_until router 1 with
            | [ { outcome = Fleet.Router.Dropped e; _ } ] ->
                check_string "typed internal" "internal" (Service.Error.code e)
            | _ -> Alcotest.fail "expected one dropped event");
            check_int "protocol error counted" 1
              (counter router "protocol_errors");
            check_int "the worker was restarted" 1
              (Fleet.Router.worker_restarts_of router 0)));
    case "repeated kills strike out through the breaker and leave the ring"
      (fun () ->
        let cfg =
          {
            Fleet.Router.default_config with
            Fleet.Router.breaker_restarts = 2;
            breaker_window_s = 60.0;
            restart_backoff_s = 0.02;
          }
        in
        with_router ~cfg [| ok_worker; ok_worker |] (fun router ->
            Fleet.Router.inject router (ev 1 Fleet.Chaos.Kill);
            wait_for ~what:"first respawn" router (fun () ->
                Fleet.Router.worker_restarts_of router 1 = 1);
            Fleet.Router.inject router (ev 1 Fleet.Chaos.Kill);
            wait_for ~what:"the breaker" router (fun () ->
                List.exists
                  (fun (ws : Fleet.Router.worker_state) ->
                    ws.Fleet.Router.ws_id = 1
                    && ws.Fleet.Router.ws_permanently_down)
                  (Fleet.Router.worker_states router));
            check_int "taken down once" 1 (counter router "workers_down");
            (* Traffic keeps flowing through the survivor. *)
            let n = 6 in
            for b = 1 to n do
              match Fleet.Router.submit router (g2 ~batch:b ()) with
              | Fleet.Router.Routed _ -> ()
              | Fleet.Router.Answered json ->
                  Alcotest.failf "shed after ring removal: %s"
                    (Util.Json.to_string json)
            done;
            List.iter
              (fun (evt : Fleet.Router.event) ->
                match evt.outcome with
                | Fleet.Router.Reply { json; _ } ->
                    check_true "survivor answers"
                      (Util.Json.member "ok" json
                      = Some (Util.Json.Bool true))
                | Fleet.Router.Dropped e ->
                    Alcotest.fail (Service.Error.to_string e))
              (poll_until router n);
            (* The stricken worker never comes back. *)
            check_int "restarts stopped" 1
              (Fleet.Router.worker_restarts_of router 1)));
    case "worker lifecycle states reach stats and prometheus" (fun () ->
        with_router [| ok_worker |] (fun router ->
            (match Fleet.Router.worker_states router with
            | [ ws ] ->
                check_int "id" 0 ws.Fleet.Router.ws_id;
                check_true "alive" ws.Fleet.Router.ws_alive;
                check_true "not down"
                  (not ws.Fleet.Router.ws_permanently_down);
                check_int "no restarts" 0 ws.Fleet.Router.ws_restarts;
                (match Fleet.Router.worker_state_json ws with
                | Util.Json.Obj fields ->
                    List.iter
                      (fun k ->
                        check_true k (List.mem_assoc k fields))
                      [
                        "worker"; "pid"; "alive"; "permanently_down";
                        "restarts"; "consecutive_health_failures"; "depth";
                      ]
                | _ -> Alcotest.fail "worker state should be an object")
            | l ->
                Alcotest.failf "expected one worker state, got %d"
                  (List.length l));
            let merged = Service.Metrics.create () in
            let text =
              Fleet.Router.prometheus router ~merged ~per_worker:[]
            in
            check_true "restart series"
              (contains_sub text
                 {|chimera_fleet_worker_restarts_total{worker="0"} 0|});
            check_true "up gauge"
              (contains_sub text {|chimera_fleet_worker_up{worker="0"} 1|});
            check_true "down gauge"
              (contains_sub text
                 {|chimera_fleet_worker_permanently_down{worker="0"} 0|})));
  ]

(* ------------------------------------------------------------------ *)
(* Ring stability across death/respawn cycles                          *)
(* ------------------------------------------------------------------ *)

let stability_tests =
  [
    case "assignment survives repeated death and respawn cycles" (fun () ->
        let n = 4 in
        let keys = uniform_keys 4000 in
        let fresh = Fleet.Ring.create (List.init n Fun.id) in
        let baseline = List.map (Fleet.Ring.lookup fresh) keys in
        (* Each round a worker dies (leaves the ring) and respawns
           under the same id (the ring is rebuilt over the full set,
           exactly what the router does across a respawn).  Whatever
           the history, the rebuilt ring must equal a fresh one. *)
        let ring = ref fresh in
        for round = 0 to 9 do
          let victim = round mod n in
          let removed = Fleet.Ring.remove !ring victim in
          (* While the victim is out, only ~1/N of keys remap, and none
             of them to the dead worker. *)
          let remapped = ref 0 in
          List.iter2
            (fun key before ->
              let after = Fleet.Ring.lookup removed key in
              check_true "never the dead worker" (after <> victim);
              if before <> victim then
                check_int "survivors keep their keys" before after
              else incr remapped)
            keys baseline;
          let frac = float_of_int !remapped /. 4000.0 in
          check_true "remapped share near 1/N" (frac > 0.1 && frac < 0.45);
          ring := Fleet.Ring.create (Fleet.Ring.workers removed @ [ victim ])
        done;
        check_true "ten cycles later the assignment is the fresh one"
          (List.map (Fleet.Ring.lookup !ring) keys = baseline));
  ]

(* ------------------------------------------------------------------ *)
(* Distributed tracing through the router                              *)
(* ------------------------------------------------------------------ *)

let with_traced_router ?cfg cmds f =
  let router = Fleet.Router.create ?cfg ~tracing:true cmds in
  Fun.protect
    ~finally:(fun () -> Fleet.Router.shutdown ~timeout_s:0.5 router)
    (fun () -> f router)

(* A client-side trace with one open "client.request" span, plus its
   traceparent — what the load generator stamps on each request. *)
let client_span () =
  let tr = Obs.Trace.make ~label:"client" () in
  let os =
    Option.get (Obs.Trace.open_span (Obs.Trace.ctx tr) "client.request")
  in
  let tp = Option.get (Obs.Trace.to_wire (Obs.Trace.open_ctx os)) in
  (tr, os, tp)

let tracing_tests =
  [
    slow_case "a traced request runs the whole fleet pipeline" (fun () ->
        with_traced_router [| real_worker |] (fun router ->
            check_true "tracing on" (Fleet.Router.tracing_enabled router);
            let tr, os, tp = client_span () in
            let req =
              Service.Request.make ~traceparent:tp ~workload:"G2" ~arch:"cpu"
                ()
            in
            (match Fleet.Router.submit router req with
            | Fleet.Router.Routed _ -> ()
            | Fleet.Router.Answered j ->
                Alcotest.failf "answered synchronously: %s"
                  (Util.Json.to_string j));
            (match poll_until ~timeout_s:120.0 router 1 with
            | [ { Fleet.Router.outcome = Fleet.Router.Reply { json; _ }; _ } ]
              ->
                check_true "answered ok"
                  (jfield "ok" json = Util.Json.Bool true)
            | _ -> Alcotest.fail "expected one reply");
            Obs.Trace.close_span os;
            ignore (Fleet.Router.note_client_trace router tr);
            (match Fleet.Router.sampler_counters router with
            | Some counters ->
                check_true "the trace was judged"
                  (List.assoc "traces_seen" counters = 1);
                check_true "judged exactly once"
                  (List.assoc "flagged" counters
                   + List.assoc "sampled_retained" counters
                   + List.assoc "passed" counters
                  = 1)
            | None -> Alcotest.fail "no sampler with tracing on");
            (match Fleet.Router.collector_counters router with
            | Some counters ->
                check_int "no ship payload was rejected" 0
                  (List.assoc "shipped_rejected" counters)
            | None -> Alcotest.fail "no collector with tracing on");
            match Fleet.Router.flight_json router with
            | Some (Util.Json.Obj fields) ->
                check_true "a chrome trace"
                  (List.mem_assoc "traceEvents" fields);
                check_true "with sampler counters"
                  (List.mem_assoc "sampler" fields)
            | Some _ -> Alcotest.fail "flight dump is not an object"
            | None -> Alcotest.fail "no flight dump with tracing on"));
    case "shed requests are flagged, retained, and join the client span"
      (fun () ->
        let cfg =
          {
            Fleet.Router.default_config with
            Fleet.Router.queue_depth = 2;
            soft_depth = 100;
          }
        in
        with_traced_router ~cfg [| silent_worker |] (fun router ->
            (* The worker consumes nothing, so the hard band fills and
               later submissions shed synchronously. *)
            let shed_clients = ref [] in
            for b = 1 to 6 do
              let tr, os, tp = client_span () in
              let req =
                Service.Request.make ~traceparent:tp ~batch:b ~workload:"G2"
                  ~arch:"cpu" ()
              in
              match Fleet.Router.submit router req with
              | Fleet.Router.Routed _ -> Obs.Trace.close_span os
              | Fleet.Router.Answered json ->
                  check_true "the shed answer is the typed overload error"
                    (jfield "code" json = Util.Json.String "overloaded");
                  Obs.Trace.close_span ~err:true os;
                  shed_clients := tr :: !shed_clients
            done;
            check_true "something shed" (!shed_clients <> []);
            List.iter
              (fun tr ->
                check_true "the shed trace was retained, client piece merged"
                  (Fleet.Router.note_client_trace router tr))
              !shed_clients;
            check_false "an unknown trace finds nothing to join"
              (Fleet.Router.note_client_trace router (Obs.Trace.make ()));
            (match Fleet.Router.sampler_counters router with
            | Some counters ->
                let n_shed = List.length !shed_clients in
                check_int "every shed trace flagged" n_shed
                  (List.assoc "flagged" counters);
                check_int "and retained" n_shed
                  (List.assoc "flagged_retained" counters);
                check_int "none evicted" 0
                  (List.assoc "flagged_evicted" counters)
            | None -> Alcotest.fail "no sampler with tracing on");
            match Fleet.Router.flight_json router with
            | Some json ->
                let s = Util.Json.to_string json in
                check_true "client spans in the flight dump"
                  (contains_sub s "client.request");
                check_true "router spans in the flight dump"
                  (contains_sub s "fleet.request")
            | None -> Alcotest.fail "no flight dump with tracing on"));
    case "tracing off costs nothing and exposes nothing" (fun () ->
        with_router [| ok_worker |] (fun router ->
            check_false "off by default" (Fleet.Router.tracing_enabled router);
            check_true "no flight dump" (Fleet.Router.flight_json router = None);
            check_true "no sampler" (Fleet.Router.sampler_counters router = None);
            check_true "no collector"
              (Fleet.Router.collector_counters router = None);
            check_int "nothing to drain" 0 (Fleet.Router.drain_spans router);
            check_false "client pieces are dropped"
              (Fleet.Router.note_client_trace router (Obs.Trace.make ()))));
    case "the fleet scrape is a conformant exposition" (fun () ->
        with_router [| ok_worker; ok_worker |] (fun router ->
            let merged = Service.Metrics.create () in
            let per_worker =
              [ (0, Service.Metrics.create ()); (1, Service.Metrics.create ()) ]
            in
            let text = Fleet.Router.prometheus router ~merged ~per_worker in
            let lines = String.split_on_char '\n' text in
            let name_after prefix line =
              let p = String.length prefix in
              if String.length line > p && String.sub line 0 p = prefix then
                Some
                  (List.hd
                     (String.split_on_char ' '
                        (String.sub line p (String.length line - p))))
              else None
            in
            let helps = Hashtbl.create 64 and types = Hashtbl.create 64 in
            List.iter
              (fun line ->
                (match name_after "# HELP " line with
                | Some name ->
                    check_false ("one HELP for " ^ name) (Hashtbl.mem helps name);
                    Hashtbl.add helps name ()
                | None -> ());
                match name_after "# TYPE " line with
                | Some name ->
                    check_false ("one TYPE for " ^ name) (Hashtbl.mem types name);
                    Hashtbl.add types name ()
                | None -> ())
              lines;
            check_int "HELP and TYPE pair up" (Hashtbl.length helps)
              (Hashtbl.length types);
            Hashtbl.iter
              (fun name () ->
                check_true ("TYPE for " ^ name) (Hashtbl.mem types name))
              helps;
            (* Every series line belongs to a declared metric (histogram
               series declare under their base name). *)
            let strip_suffix name =
              List.fold_left
                (fun acc suf ->
                  let n = String.length name and s = String.length suf in
                  if acc = None && n > s && String.sub name (n - s) s = suf
                  then Some (String.sub name 0 (n - s))
                  else acc)
                None
                [ "_bucket"; "_sum"; "_count" ]
            in
            List.iter
              (fun line ->
                if line <> "" && line.[0] <> '#' then begin
                  let name =
                    List.hd
                      (String.split_on_char '{'
                         (List.hd (String.split_on_char ' ' line)))
                  in
                  check_true ("declared: " ^ name)
                    (Hashtbl.mem helps name
                    ||
                    match strip_suffix name with
                    | Some base -> Hashtbl.mem helps base
                    | None -> false)
                end)
              lines;
            List.iter
              (fun name ->
                check_true (name ^ " present") (Hashtbl.mem helps name))
              [
                "chimera_fleet_workers";
                "chimera_fleet_worker_up";
                "chimera_slo_target";
                "chimera_slo_burn_rate";
              ]));
  ]

let suites =
  [
    ("fleet.ring", ring_tests);
    ("fleet.traffic", traffic_tests);
    ("fleet.cache_contention", cache_contention_tests);
    ("fleet.router", router_tests);
    ("fleet.chaos", chaos_tests);
    ("fleet.supervisor", supervisor_tests);
    ("fleet.stability", stability_tests);
    ("fleet.wire", wire_tests);
    ("fleet.tracing", tracing_tests);
    ("fleet.e2e", e2e_tests);
  ]
