open Helpers

(* The dependency-preservation claim of Section III: every block order
   Chimera can select yields the same numerics as the unfused reference. *)

let check_fused_matches_reference ?(rtol = 1e-6) chain perm tiling =
  let ref_env = Sim.Exec.make_env chain ~seed:42 in
  Sim.Exec.run_reference chain ref_env;
  let env = Sim.Exec.make_env chain ~seed:42 in
  Sim.Exec.run_fused chain ~perm ~tiling env;
  check_true
    (Printf.sprintf "perm %s tiles %s" (String.concat "" perm)
       (Analytical.Tiling.to_string tiling))
    (Sim.Exec.outputs_match ~rtol ~atol:1e-9 chain ref_env env)

let env_tests =
  [
    case "make_env fills inputs, zeroes the rest" (fun () ->
        let chain = small_gemm_chain () in
        let env = Sim.Exec.make_env chain ~seed:1 in
        let a = Sim.Exec.tensor env "A" in
        let c = Sim.Exec.tensor env "C" in
        let nonzero = ref false in
        Tensor.Dense.iteri a (fun _ v -> if v <> 0.0 then nonzero := true);
        check_true "A has data" !nonzero;
        Tensor.Dense.iteri c (fun _ v -> check_float "C zero" 0.0 v));
    case "make_env is deterministic per seed" (fun () ->
        let chain = small_gemm_chain () in
        let a1 = Sim.Exec.tensor (Sim.Exec.make_env chain ~seed:7) "A" in
        let a2 = Sim.Exec.tensor (Sim.Exec.make_env chain ~seed:7) "A" in
        check_float "same" 0.0 (Tensor.Dense.max_abs_diff a1 a2));
    case "different seeds differ" (fun () ->
        let chain = small_gemm_chain () in
        let a1 = Sim.Exec.tensor (Sim.Exec.make_env chain ~seed:7) "A" in
        let a2 = Sim.Exec.tensor (Sim.Exec.make_env chain ~seed:8) "A" in
        check_true "differ" (Tensor.Dense.max_abs_diff a1 a2 > 0.0));
    case "tensor lookup raises for unknown names" (fun () ->
        let chain = small_gemm_chain () in
        let env = Sim.Exec.make_env chain ~seed:1 in
        check_true "not found"
          (match Sim.Exec.tensor env "Z" with
          | _ -> false
          | exception Not_found -> true));
  ]

let reference_tests =
  [
    case "reference GEMM chain computes E = (A x B) x D" (fun () ->
        (* Hand-computed 1x1 matrices: A=[2], B=[3], D=[5] => E = 30. *)
        let chain =
          Ir.Chain.batch_gemm_chain ~name:"unit" ~batch:1 ~m:1 ~n:1 ~k:1 ~l:1
            ()
        in
        let env = Sim.Exec.make_env chain ~seed:1 in
        Tensor.Dense.set (Sim.Exec.tensor env "A") [| 0; 0; 0 |] 2.0;
        Tensor.Dense.set (Sim.Exec.tensor env "B") [| 0; 0; 0 |] 3.0;
        Tensor.Dense.set (Sim.Exec.tensor env "D") [| 0; 0; 0 |] 5.0;
        Sim.Exec.run_reference chain env;
        check_float "C" 6.0 (Tensor.Dense.get (Sim.Exec.tensor env "C") [| 0; 0; 0 |]);
        check_float "E" 30.0 (Tensor.Dense.get (Sim.Exec.tensor env "E") [| 0; 0; 0 |]));
    case "reference softmax rows sum the consumer correctly" (fun () ->
        (* With softmax, C's rows are normalised before the second GEMM:
           for a 1x2 row (l=2) and D = identity-ish column of ones, E is
           a weighted average bounded by the row extrema. *)
        let chain =
          Ir.Chain.batch_gemm_chain ~name:"sm" ~batch:1 ~m:1 ~n:1 ~k:1 ~l:2
            ~softmax:true ()
        in
        let env = Sim.Exec.make_env chain ~seed:1 in
        Tensor.Dense.set (Sim.Exec.tensor env "A") [| 0; 0; 0 |] 1.0;
        Tensor.Dense.set (Sim.Exec.tensor env "B") [| 0; 0; 0 |] 0.5;
        Tensor.Dense.set (Sim.Exec.tensor env "B") [| 0; 0; 1 |] 1.5;
        Tensor.Dense.set (Sim.Exec.tensor env "D") [| 0; 0; 0 |] 10.0;
        Tensor.Dense.set (Sim.Exec.tensor env "D") [| 0; 1; 0 |] 20.0;
        Sim.Exec.run_reference chain env;
        let c0 = Tensor.Dense.get (Sim.Exec.tensor env "C") [| 0; 0; 0 |] in
        let c1 = Tensor.Dense.get (Sim.Exec.tensor env "C") [| 0; 0; 1 |] in
        check_float ~eps:1e-9 "softmax row sums to 1" 1.0 (c0 +. c1);
        let e = Tensor.Dense.get (Sim.Exec.tensor env "E") [| 0; 0; 0 |] in
        check_true "weighted average" (e > 10.0 && e < 20.0));
    case "reference ReLU clamps negatives" (fun () ->
        let chain = small_conv_chain ~relu:true () in
        let env = Sim.Exec.make_env chain ~seed:3 in
        Sim.Exec.run_reference chain env;
        Tensor.Dense.iteri (Sim.Exec.tensor env "O1") (fun _ v ->
            check_true "non-negative" (v >= 0.0)));
  ]

let all_gemm_perms chain =
  Analytical.Permutations.candidates chain

let fused_tests =
  [
    case "fused GEMM chain matches reference on all 24 orders" (fun () ->
        let chain = small_gemm_chain () in
        let tiling =
          Analytical.Tiling.make chain
            [ ("b", 1); ("m", 4); ("n", 3); ("k", 2); ("l", 5) ]
        in
        List.iter
          (fun perm -> check_fused_matches_reference chain perm tiling)
          (all_gemm_perms chain));
    case "fused softmax chain matches reference on all 24 orders" (fun () ->
        let chain = small_gemm_chain ~softmax:true () in
        let tiling =
          Analytical.Tiling.make chain
            [ ("b", 2); ("m", 5); ("n", 6); ("k", 5); ("l", 3) ]
        in
        List.iter
          (fun perm -> check_fused_matches_reference chain perm tiling)
          (all_gemm_perms chain));
    case "fused conv chain with ReLU matches reference" (fun () ->
        let chain = small_conv_chain ~relu:true () in
        let fused = Analytical.Movement.fused_axes chain in
        let tiling =
          Analytical.Tiling.make chain
            [
              ("oc2", 2); ("oh", 3); ("ow", 2); ("oc1", 2); ("kh2", 3);
              ("kw2", 3); ("ic", 2); ("kh1", 3); ("kw1", 3);
            ]
        in
        List.iter
          (fun perm -> check_fused_matches_reference chain perm tiling)
          [ fused; List.rev fused ]);
    case "strided conv chain matches reference" (fun () ->
        let chain =
          Ir.Chain.conv_chain ~name:"strided" ~batch:1 ~ic:2 ~h:11 ~w:7
            ~oc1:3 ~oc2:2 ~st1:2 ~st2:2 ~k1:3 ~k2:3 ~relu:true ()
        in
        let fused = Analytical.Movement.fused_axes chain in
        check_fused_matches_reference chain fused
          (Analytical.Tiling.make chain [ ("oh", 2); ("ow", 2); ("oc1", 2) ]));
    case "pointwise-then-3x3 chain (the C6 shape) matches" (fun () ->
        let chain =
          Ir.Chain.conv_chain ~name:"c6ish" ~batch:1 ~ic:3 ~h:8 ~w:8 ~oc1:4
            ~oc2:3 ~st1:1 ~st2:1 ~k1:1 ~k2:3 ()
        in
        let fused = Analytical.Movement.fused_axes chain in
        check_fused_matches_reference chain fused
          (Analytical.Tiling.make chain
             [ ("oh", 4); ("ow", 4); ("oc1", 4); ("kh2", 3); ("kw2", 3) ]));
    case "single-block tiling (everything on chip)" (fun () ->
        let chain = small_gemm_chain ~softmax:true () in
        check_fused_matches_reference chain
          (List.hd (all_gemm_perms chain))
          (Analytical.Tiling.full chain));
    case "one-element tiles (maximal blocking)" (fun () ->
        let chain = small_gemm_chain () in
        check_fused_matches_reference chain
          (List.hd (all_gemm_perms chain))
          (Analytical.Tiling.ones chain));
    case "non-dividing tile sizes" (fun () ->
        let chain = small_gemm_chain () in
        check_fused_matches_reference chain
          (List.hd (all_gemm_perms chain))
          (Analytical.Tiling.make chain
             [ ("b", 2); ("m", 7); ("n", 5); ("k", 3); ("l", 7) ]));
    case "run_kernel drives the compiled plan" (fun () ->
        let chain = small_gemm_chain ~softmax:true () in
        let compiled =
          Chimera.Compiler.optimize ~machine:Arch.Presets.xeon_gold_6240 chain
        in
        let ref_env = Sim.Exec.make_env chain ~seed:42 in
        Sim.Exec.run_reference chain ref_env;
        let env = Sim.Exec.make_env chain ~seed:42 in
        Chimera.Compiler.run compiled env;
        check_true "matches"
          (Sim.Exec.outputs_match ~rtol:1e-6 chain ref_env env));
    case "unfused compilation also matches the reference" (fun () ->
        let chain = small_gemm_chain ~softmax:true () in
        let config = { Chimera.Config.default with use_fusion = false } in
        let compiled =
          Chimera.Compiler.optimize ~config
            ~machine:Arch.Presets.xeon_gold_6240 chain
        in
        check_int "two kernels" 2 (List.length compiled.Chimera.Compiler.units);
        let ref_env = Sim.Exec.make_env chain ~seed:42 in
        Sim.Exec.run_reference chain ref_env;
        let env = Sim.Exec.make_env chain ~seed:42 in
        Chimera.Compiler.run compiled env;
        check_true "matches"
          (Sim.Exec.outputs_match ~rtol:1e-6 chain ref_env env));
    case "outputs_match detects corruption" (fun () ->
        let chain = small_gemm_chain () in
        let a = Sim.Exec.make_env chain ~seed:1 in
        Sim.Exec.run_reference chain a;
        let b = Sim.Exec.make_env chain ~seed:1 in
        Sim.Exec.run_reference chain b;
        check_true "initially equal" (Sim.Exec.outputs_match chain a b);
        let e = Sim.Exec.tensor b "E" in
        Tensor.Dense.set_flat e 0 (Tensor.Dense.get_flat e 0 +. 1.0);
        check_false "corruption caught" (Sim.Exec.outputs_match chain a b));
  ]

let suites =
  [
    ("exec.env", env_tests);
    ("exec.reference", reference_tests);
    ("exec.fused", fused_tests);
  ]
