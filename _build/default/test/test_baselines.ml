open Helpers

let cpu = Arch.Presets.xeon_gold_6240
let gpu = Arch.Presets.nvidia_a100
let npu = Arch.Presets.ascend_910

let g2 () =
  Workloads.Gemm_configs.chain
    (Option.get (Workloads.Gemm_configs.by_name "G2"))

let g2_softmax () =
  Workloads.Gemm_configs.chain ~softmax:true
    (Option.get (Workloads.Gemm_configs.by_name "G2"))

let profile_tests =
  [
    case "epilogue_passes" (fun () ->
        check_int "identity" 0 (Baselines.Profile.epilogue_passes Ir.Chain.Identity);
        check_int "relu" 2 (Baselines.Profile.epilogue_passes Ir.Chain.Relu);
        check_int "softmax" 2
          (Baselines.Profile.epilogue_passes (Ir.Chain.Softmax { axis = "l" })));
    case "unfused library launches one kernel per GEMM" (fun () ->
        let r = Baselines.Profile.estimate Baselines.Systems.cpu_pytorch ~machine:cpu (g2 ()) in
        check_int "two kernels" 2 r.Baselines.Profile.kernel_count);
    case "eager frameworks launch softmax separately" (fun () ->
        let r =
          Baselines.Profile.estimate Baselines.Systems.cpu_pytorch ~machine:cpu
            (g2_softmax ())
        in
        check_int "three kernels" 3 r.Baselines.Profile.kernel_count);
    case "elementwise fusers fold ReLU, not softmax" (fun () ->
        let conv =
          Workloads.Conv_configs.chain ~relu:true
            (Option.get (Workloads.Conv_configs.by_name "C3"))
        in
        let relay = Baselines.Profile.estimate Baselines.Systems.cpu_relay ~machine:cpu conv in
        check_int "two kernels (relu folded)" 2 relay.Baselines.Profile.kernel_count;
        let sm =
          Baselines.Profile.estimate Baselines.Systems.cpu_relay ~machine:cpu
            (g2_softmax ())
        in
        check_int "three kernels (softmax split)" 3 sm.Baselines.Profile.kernel_count);
    case "CUTLASS-style templates fuse the chain in one kernel" (fun () ->
        let r =
          Baselines.Profile.estimate Baselines.Systems.gpu_tvm_cutlass
            ~machine:gpu (g2 ())
        in
        check_int "one kernel" 1 r.Baselines.Profile.kernel_count);
    case "CUTLASS templates cannot fuse softmax (Section VI-B)" (fun () ->
        let r =
          Baselines.Profile.estimate Baselines.Systems.gpu_tvm_cutlass
            ~machine:gpu (g2_softmax ())
        in
        check_true "falls back to separate kernels"
          (r.Baselines.Profile.kernel_count >= 3));
    case "unfused traffic includes the spilled intermediate" (fun () ->
        let chain = g2 () in
        let r =
          Baselines.Profile.estimate Baselines.Systems.cpu_pytorch ~machine:cpu
            chain
        in
        check_true "at least write+read of C"
          (r.Baselines.Profile.dram_bytes
          >= Ir.Chain.unfused_dram_bytes chain *. 0.99));
    case "fixed order is never better than explored order" (fun () ->
        let chain = g2 () in
        let fixed =
          Baselines.Profile.estimate Baselines.Systems.gpu_tvm_cutlass
            ~machine:gpu chain
        in
        let explored =
          Baselines.Profile.estimate
            {
              Baselines.Systems.gpu_tvm_cutlass with
              Baselines.Profile.name = "explored";
              order_policy = Baselines.Profile.Explored;
            }
            ~machine:gpu chain
        in
        check_true "explored <= fixed"
          (explored.Baselines.Profile.time_seconds
          <= fixed.Baselines.Profile.time_seconds *. 1.0001));
  ]

let comparison_tests =
  [
    slow_case "Chimera beats every CPU baseline on G2 (Figure 5a)" (fun () ->
        let chain = g2 () in
        let chimera =
          Chimera.Compiler.total_time_seconds
            (Chimera.Compiler.optimize ~machine:cpu chain)
        in
        List.iter
          (fun p ->
            let r = Baselines.Profile.estimate p ~machine:cpu chain in
            check_true
              (p.Baselines.Profile.name ^ " slower")
              (r.Baselines.Profile.time_seconds > chimera))
          (Baselines.Systems.for_machine cpu));
    slow_case "Chimera beats every GPU baseline on G2 (Figure 6a)" (fun () ->
        let chain = g2 () in
        let chimera =
          Chimera.Compiler.total_time_seconds
            (Chimera.Compiler.optimize ~machine:gpu chain)
        in
        List.iter
          (fun p ->
            let r = Baselines.Profile.estimate p ~machine:gpu chain in
            check_true
              (p.Baselines.Profile.name ^ " slower")
              (r.Baselines.Profile.time_seconds > chimera))
          (Baselines.Systems.for_machine gpu));
    slow_case "NPU: Chimera beats TBE clearly, AKG narrowly (Figure 7)"
      (fun () ->
        let chain =
          Workloads.Gemm_configs.chain ~batch_override:1
            (Option.get (Workloads.Gemm_configs.by_name "G3"))
        in
        let chimera =
          Chimera.Compiler.total_time_seconds
            (Chimera.Compiler.optimize ~machine:npu chain)
        in
        let tbe =
          (Baselines.Profile.estimate Baselines.Systems.npu_tbe ~machine:npu chain)
            .Baselines.Profile.time_seconds
        in
        let akg =
          (Baselines.Profile.estimate Baselines.Systems.npu_akg ~machine:npu chain)
            .Baselines.Profile.time_seconds
        in
        check_true "beats TBE" (tbe /. chimera > 1.2);
        check_true "AKG is the close baseline" (akg < tbe));
  ]

let e2e_tests =
  [
    case "five GPU stacks in figure order" (fun () ->
        check_int "count" 5 (List.length Baselines.E2e.gpu_stacks);
        check_string "last is Relay+Chimera" "Relay+Chimera"
          (List.nth Baselines.E2e.gpu_stacks 4).Baselines.E2e.name);
    slow_case "Figure 9 ordering on Bert-Base" (fun () ->
        let net = Workloads.Networks.bert_base in
        let time stack = Baselines.E2e.estimate_network stack ~machine:gpu net in
        let chimera = time Baselines.E2e.relay_chimera in
        let pytorch = time Baselines.E2e.pytorch_cudnn in
        let tensorrt = time Baselines.E2e.relay_tensorrt in
        let cudnn = time Baselines.E2e.relay_cudnn in
        let ansor = time Baselines.E2e.relay_ansor in
        check_true "Chimera fastest"
          (chimera < tensorrt && chimera < cudnn && chimera < ansor);
        check_true "PyTorch slowest by far" (pytorch > 2.0 *. chimera);
        (* Paper geomeans: 1.42 / 1.31 / 1.22 over Chimera. *)
        check_true "TensorRT in range"
          (tensorrt /. chimera > 1.1 && tensorrt /. chimera < 2.2);
        check_true "Ansor the closest compiled stack"
          (ansor < tensorrt && ansor < cudnn));
  ]

let suites =
  [
    ("baselines.profile", profile_tests);
    ("baselines.comparisons", comparison_tests);
    ("baselines.e2e", e2e_tests);
  ]
