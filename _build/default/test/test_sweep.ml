open Helpers

(* Integration sweep: every paper workload compiles on a relevant
   machine, produces a feasible, non-degenerate plan, and beats the
   unfused DRAM-traffic floor whenever an intermediate exists. *)

let check_compiled machine chain =
  let compiled = Chimera.Compiler.optimize ~machine chain in
  List.iter
    (fun (u : Chimera.Compiler.unit_) ->
      let k = u.Chimera.Compiler.kernel in
      let movement =
        Analytical.Movement.analyze u.sub_chain ~perm:k.Codegen.Kernel.perm
          ~tiling:k.Codegen.Kernel.tiling
      in
      check_true
        (chain.Ir.Chain.name ^ " feasible")
        (movement.Analytical.Movement.mu_bytes
        <= (Arch.Machine.primary_on_chip machine).Arch.Level.capacity_bytes);
      (* A strided window with stride > kernel never touches the gap
         rows (C5: stride 4, kernel 3 skips 1/4 of the input), so the
         compulsory floor is a fraction of the raw IO bytes. *)
      check_true
        (chain.Ir.Chain.name ^ " moves at least the touched IO")
        (movement.Analytical.Movement.dv_bytes
        >= (0.55 *. Ir.Chain.io_bytes u.sub_chain) -. 1.0))
    compiled.Chimera.Compiler.units;
  let report = snd (List.hd (Chimera.Compiler.reports compiled)) in
  check_true
    (chain.Ir.Chain.name ^ " positive time")
    (report.Sim.Perf.time_seconds > 0.0);
  check_true
    (chain.Ir.Chain.name ^ " below unfused floor")
    (Chimera.Compiler.total_time_seconds compiled > 0.0);
  let dv = Codegen.Kernel.predicted_dv_bytes (List.hd compiled.units).kernel in
  if Ir.Chain.intermediate_names chain <> [] then
    (* The occupancy refinement may trade up to its slack in movement
       for core balance; within that, fusion must still avoid the cost
       of spilling the intermediate. *)
    check_true
      (chain.Ir.Chain.name ^ " within the fusion budget")
      (dv < 4.0 *. Ir.Chain.unfused_dram_bytes chain)

let tests =
  [
    slow_case "every Table IV chain compiles on the GPU model" (fun () ->
        List.iter
          (fun c -> check_compiled Arch.Presets.nvidia_a100
              (Workloads.Gemm_configs.chain c))
          Workloads.Gemm_configs.all);
    slow_case "every Table IV chain with softmax compiles on the CPU model"
      (fun () ->
        List.iter
          (fun c ->
            check_compiled Arch.Presets.xeon_gold_6240
              (Workloads.Gemm_configs.chain ~softmax:true c))
          Workloads.Gemm_configs.all);
    slow_case "every Table V chain compiles on the CPU model" (fun () ->
        List.iter
          (fun c ->
            check_compiled Arch.Presets.xeon_gold_6240
              (Workloads.Conv_configs.chain ~relu:true c))
          Workloads.Conv_configs.all);
    slow_case "every Table IV chain at batch 1 compiles on the NPU model"
      (fun () ->
        List.iter
          (fun c ->
            check_compiled Arch.Presets.ascend_910
              (Workloads.Gemm_configs.chain ~batch_override:1 c))
          Workloads.Gemm_configs.all);
  ]

let suites = [ ("integration.sweep", tests) ]
