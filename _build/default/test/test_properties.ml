(* Property-based tests (QCheck) on the core invariants:
   - Algorithm 1's outputs are bounded and monotone in the tile sizes;
   - the solver always returns feasible, non-trivial answers;
   - fused execution matches the reference on random chains, orders and
     tilings — the dependency-preservation claim of Section III;
   - the cache models conserve bytes. *)

let qcheck = QCheck_alcotest.to_alcotest

(* ----------------------------------------------------------------- *)
(* Generators                                                         *)
(* ----------------------------------------------------------------- *)

let small_dim = QCheck.Gen.int_range 1 10

let gemm_chain_gen =
  QCheck.Gen.(
    map
      (fun (b, m, n, k, l, softmax) ->
        Ir.Chain.batch_gemm_chain ~name:"prop-gemm" ~batch:b ~m ~n ~k ~l
          ~softmax ())
      (tup6 (int_range 1 3) small_dim small_dim small_dim
         (int_range 1 10) bool))

let conv_chain_gen =
  QCheck.Gen.(
    map
      (fun ((ic, h, w, oc1, oc2), (st1, st2, k1, k2, relu)) ->
        (* Keep the spatial extents above the kernel sizes. *)
        let h = max h (k1 + 2) and w = max w (k1 + 2) in
        Ir.Chain.conv_chain ~name:"prop-conv" ~batch:1 ~ic ~h ~w ~oc1 ~oc2
          ~st1 ~st2 ~k1 ~k2 ~relu ())
      (tup2
         (tup5 (int_range 1 3) (int_range 5 10) (int_range 5 10)
            (int_range 1 4) (int_range 1 3))
         (tup5 (int_range 1 2) (int_range 1 2)
            (oneofl [ 1; 3 ])
            (oneofl [ 1; 3 ])
            bool)))

let print_chain (chain : Ir.Chain.t) =
  Format.asprintf "%a" Ir.Chain.pp chain

let random_tiling_of prng chain =
  let axes = Analytical.Movement.fused_axes chain in
  List.fold_left
    (fun t axis ->
      let extent = Ir.Chain.extent_of chain axis in
      Analytical.Tiling.set t axis (1 + Util.Prng.int prng ~bound:extent))
    (Analytical.Tiling.ones chain)
    axes

let random_perm_of prng chain =
  let axes = Array.of_list (Analytical.Movement.fused_axes chain) in
  Util.Prng.shuffle prng axes;
  Array.to_list axes

(* A chain plus a seed for deriving a perm and tiling deterministically. *)
let chain_seed_gen base =
  QCheck.Gen.(tup2 base (int_range 0 1_000_000))

let arbitrary_gemm_setup =
  QCheck.make
    ~print:(fun (c, seed) -> print_chain c ^ Printf.sprintf " seed=%d" seed)
    (chain_seed_gen gemm_chain_gen)

let arbitrary_conv_setup =
  QCheck.make
    ~print:(fun (c, seed) -> print_chain c ^ Printf.sprintf " seed=%d" seed)
    (chain_seed_gen conv_chain_gen)

(* ----------------------------------------------------------------- *)
(* Algorithm 1 invariants                                             *)
(* ----------------------------------------------------------------- *)

let prop_dv_lower_bound =
  QCheck.Test.make ~name:"DV never undercuts the compulsory IO traffic"
    ~count:200 arbitrary_gemm_setup (fun (chain, seed) ->
      let prng = Util.Prng.create ~seed in
      let perm = random_perm_of prng chain in
      let tiling = random_tiling_of prng chain in
      let r = Analytical.Movement.analyze chain ~perm ~tiling in
      r.Analytical.Movement.dv_bytes >= Ir.Chain.io_bytes chain -. 1e-6)

let prop_per_tensor_lower_bound =
  QCheck.Test.make
    ~name:"each IO tensor moves at least its own size" ~count:200
    arbitrary_gemm_setup (fun (chain, seed) ->
      let prng = Util.Prng.create ~seed in
      let perm = random_perm_of prng chain in
      let tiling = random_tiling_of prng chain in
      let r = Analytical.Movement.analyze chain ~perm ~tiling in
      List.for_all
        (fun (p : Analytical.Movement.per_tensor) ->
          Ir.Chain.is_intermediate chain p.tensor
          || p.movement_bytes
             >= float_of_int
                  (Ir.Operator.tensor_bytes (Ir.Chain.find_ref chain p.tensor))
                -. 1e-6)
        r.Analytical.Movement.per_tensor)

let prop_mu_monotone =
  QCheck.Test.make ~name:"MU is non-decreasing in every tile size" ~count:200
    arbitrary_gemm_setup (fun (chain, seed) ->
      let prng = Util.Prng.create ~seed in
      let perm = random_perm_of prng chain in
      let tiling = random_tiling_of prng chain in
      let axes = Analytical.Movement.fused_axes chain in
      let axis = List.nth axes (Util.Prng.int prng ~bound:(List.length axes)) in
      let bigger =
        Analytical.Tiling.set tiling axis
          (Analytical.Tiling.get tiling axis + 1)
      in
      let mu t =
        (Analytical.Movement.analyze chain ~perm ~tiling:t)
          .Analytical.Movement.mu_bytes
      in
      mu bigger >= mu tiling)

let prop_intermediates_free =
  QCheck.Test.make ~name:"intermediates never contribute to DV" ~count:100
    arbitrary_conv_setup (fun (chain, seed) ->
      let prng = Util.Prng.create ~seed in
      let perm = random_perm_of prng chain in
      let tiling = random_tiling_of prng chain in
      let r = Analytical.Movement.analyze chain ~perm ~tiling in
      List.for_all
        (fun (p : Analytical.Movement.per_tensor) ->
          (not (Ir.Chain.is_intermediate chain p.tensor))
          || p.movement_bytes = 0.0)
        r.Analytical.Movement.per_tensor)

let prop_footprint_capped =
  QCheck.Test.make ~name:"tile footprints never exceed the tensor" ~count:200
    arbitrary_conv_setup (fun (chain, seed) ->
      let prng = Util.Prng.create ~seed in
      let tiling = random_tiling_of prng chain in
      let tile_of = Analytical.Tiling.tile_of tiling in
      List.for_all
        (fun (stage : Ir.Chain.stage) ->
          List.for_all
            (fun (ref_ : Ir.Operator.tensor_ref) ->
              Ir.Operator.tile_footprint_bytes ref_ ~tile_of
              <= Ir.Operator.tensor_bytes ref_)
            (Ir.Operator.all_refs stage.Ir.Chain.op))
        chain.Ir.Chain.stages)

(* ----------------------------------------------------------------- *)
(* Solver invariants                                                  *)
(* ----------------------------------------------------------------- *)

let prop_solver_feasible_and_dominant =
  QCheck.Test.make
    ~name:"solver answers are feasible and beat random samples" ~count:60
    arbitrary_gemm_setup (fun (chain, seed) ->
      let prng = Util.Prng.create ~seed in
      let perm = random_perm_of prng chain in
      let capacity = 4096 + Util.Prng.int prng ~bound:65536 in
      match
        Analytical.Solver.solve_for_perm chain ~perm ~capacity_bytes:capacity
          ()
      with
      | None ->
          (* Only acceptable when even all-ones tiles do not fit. *)
          (Analytical.Movement.analyze chain ~perm
             ~tiling:(Analytical.Tiling.ones chain))
            .Analytical.Movement.mu_bytes > capacity
      | Some sol ->
          let feasible =
            sol.Analytical.Solver.movement.Analytical.Movement.mu_bytes
            <= capacity
          in
          (* Compare against five random feasible samples. *)
          let beats_samples =
            List.for_all
              (fun _ ->
                let t = random_tiling_of prng chain in
                let r = Analytical.Movement.analyze chain ~perm ~tiling:t in
                r.Analytical.Movement.mu_bytes > capacity
                || sol.Analytical.Solver.movement.Analytical.Movement.dv_bytes
                   <= r.Analytical.Movement.dv_bytes +. 1e-6)
              [ 1; 2; 3; 4; 5 ]
          in
          feasible && beats_samples)

(* ----------------------------------------------------------------- *)
(* Execution: fused == reference                                      *)
(* ----------------------------------------------------------------- *)

let outputs_match chain perm tiling =
  let ref_env = Sim.Exec.make_env chain ~seed:17 in
  Sim.Exec.run_reference chain ref_env;
  let env = Sim.Exec.make_env chain ~seed:17 in
  Sim.Exec.run_fused chain ~perm ~tiling env;
  Sim.Exec.outputs_match ~rtol:1e-6 ~atol:1e-9 chain ref_env env

let prop_gemm_execution =
  QCheck.Test.make
    ~name:"fused GEMM chains match the reference on random orders/tilings"
    ~count:60 arbitrary_gemm_setup (fun (chain, seed) ->
      let prng = Util.Prng.create ~seed in
      let perm = random_perm_of prng chain in
      let tiling = random_tiling_of prng chain in
      outputs_match chain perm tiling)

let prop_conv_execution =
  QCheck.Test.make
    ~name:"fused conv chains match the reference on random orders/tilings"
    ~count:30 arbitrary_conv_setup (fun (chain, seed) ->
      let prng = Util.Prng.create ~seed in
      let perm = random_perm_of prng chain in
      let tiling = random_tiling_of prng chain in
      outputs_match chain perm tiling)

(* ----------------------------------------------------------------- *)
(* Cache model invariants                                             *)
(* ----------------------------------------------------------------- *)

let lru_trace_gen =
  QCheck.Gen.(
    list_size (int_range 1 200)
      (tup2 (int_range 0 20) (int_range 1 400)))

let prop_lru_conservation =
  QCheck.Test.make ~name:"LRU conserves counts and capacity" ~count:200
    (QCheck.make lru_trace_gen) (fun trace ->
      let c = Sim.Lru.create ~capacity_bytes:1000 in
      List.iter
        (fun (key, bytes) ->
          ignore (Sim.Lru.access c ~key:(string_of_int key) ~bytes))
        trace;
      Sim.Lru.accesses c = List.length trace
      && Sim.Lru.hits c + Sim.Lru.misses c = Sim.Lru.accesses c
      && Sim.Lru.resident_bytes c <= 1000
      && Sim.Lru.bytes_in c <= Sim.Lru.bytes_accessed c +. 1e-9)

let prop_measured_traffic_floor =
  QCheck.Test.make
    ~name:"simulated DRAM traffic is at least the compulsory misses"
    ~count:40 arbitrary_gemm_setup (fun (chain, seed) ->
      let prng = Util.Prng.create ~seed in
      let perm = random_perm_of prng chain in
      let tiling = random_tiling_of prng chain in
      let level =
        Arch.Level.make ~name:"L" ~capacity_bytes:4096
          ~link_bandwidth_gbps:10.0 ()
      in
      let stats =
        Sim.Trace.measure_chain chain ~levels:[ level ] ~perm ~tiling ()
      in
      stats.Sim.Trace.dram_bytes >= Ir.Chain.io_bytes chain *. 0.99)

(* ----------------------------------------------------------------- *)
(* Hierarchical iteration invariants                                   *)
(* ----------------------------------------------------------------- *)

let prop_hier_single_level_matches_flat =
  QCheck.Test.make
    ~name:"one-level hierarchical iteration equals flat iteration"
    ~count:60 arbitrary_gemm_setup (fun (chain, seed) ->
      let prng = Util.Prng.create ~seed in
      let perm = random_perm_of prng chain in
      let tiling = random_tiling_of prng chain in
      let flat = ref [] in
      Sim.Trace.iter_blocks ~perm ~tiling
        ~f:(fun s -> flat := List.sort compare s :: !flat)
        ();
      let hier = ref [] in
      Sim.Trace.iter_blocks_hier ~levels:[ (perm, tiling) ] ~f:(fun s ->
          hier := List.sort compare s :: !hier);
      !flat = !hier)

let prop_hier_partitions_iteration_space =
  QCheck.Test.make
    ~name:"two-level hierarchical iteration visits each block exactly once"
    ~count:40 arbitrary_gemm_setup (fun (chain, seed) ->
      let prng = Util.Prng.create ~seed in
      let outer_perm = random_perm_of prng chain in
      let inner_perm = random_perm_of prng chain in
      let outer = random_tiling_of prng chain in
      (* Inner tiles nest within the outer ones. *)
      let inner =
        List.fold_left
          (fun t axis ->
            let parent = Analytical.Tiling.get outer axis in
            Analytical.Tiling.set t axis
              (1 + Util.Prng.int prng ~bound:parent))
          (Analytical.Tiling.ones chain)
          (Analytical.Movement.fused_axes chain)
      in
      let visits = ref [] in
      Sim.Trace.iter_blocks_hier
        ~levels:[ (outer_perm, outer); (inner_perm, inner) ]
        ~f:(fun s -> visits := List.sort compare s :: !visits);
      let sorted = List.sort compare !visits in
      let distinct = List.sort_uniq compare !visits in
      (* No duplicates... *)
      List.length sorted = List.length distinct
      (* ...and the innermost origins tile the space like a flat walk at
         a hybrid granularity: every axis value is a multiple of the
         inner tile within its outer block. *)
      && List.for_all
           (fun starts ->
             List.for_all
               (fun (axis, start) ->
                 let ot = Analytical.Tiling.get outer axis in
                 let it = Analytical.Tiling.get inner axis in
                 let within = start mod ot in
                 start >= 0
                 && start < Analytical.Tiling.extent_of outer axis
                 && within mod it = 0)
               starts)
           !visits)

let prop_hier_count =
  QCheck.Test.make
    ~name:"hierarchical visit count is the product of per-axis splits"
    ~count:40 arbitrary_gemm_setup (fun (chain, seed) ->
      let prng = Util.Prng.create ~seed in
      let perm = random_perm_of prng chain in
      let outer = random_tiling_of prng chain in
      let inner =
        List.fold_left
          (fun t axis ->
            let parent = Analytical.Tiling.get outer axis in
            Analytical.Tiling.set t axis
              (1 + Util.Prng.int prng ~bound:parent))
          (Analytical.Tiling.ones chain)
          (Analytical.Movement.fused_axes chain)
      in
      let count = ref 0 in
      Sim.Trace.iter_blocks_hier
        ~levels:[ (perm, outer); (perm, inner) ]
        ~f:(fun _ -> incr count);
      let expected =
        List.fold_left
          (fun acc axis ->
            let extent = Analytical.Tiling.extent_of outer axis in
            let ot = Analytical.Tiling.get outer axis in
            let it = Analytical.Tiling.get inner axis in
            (* full outer blocks and the ragged tail each split by the
               inner tile *)
            let full = extent / ot and tail = extent mod ot in
            let per_full = Util.Ints.ceil_div ot it in
            let per_tail = if tail = 0 then 0 else Util.Ints.ceil_div tail it in
            acc * ((full * per_full) + per_tail))
          1 (Analytical.Movement.fused_axes chain)
      in
      !count = expected)

let suites =
  [
    ( "properties",
      List.map qcheck
        [
          prop_dv_lower_bound;
          prop_per_tensor_lower_bound;
          prop_mu_monotone;
          prop_intermediates_free;
          prop_footprint_capped;
          prop_solver_feasible_and_dominant;
          prop_gemm_execution;
          prop_conv_execution;
          prop_lru_conservation;
          prop_measured_traffic_floor;
          prop_hier_single_level_matches_flat;
          prop_hier_partitions_iteration_space;
          prop_hier_count;
        ] );
  ]
