open Helpers

let level_tests =
  [
    case "make validates" (fun () ->
        check_raises_invalid "capacity" (fun () ->
            Arch.Level.make ~name:"x" ~capacity_bytes:0 ~link_bandwidth_gbps:1.0
              ());
        check_raises_invalid "bandwidth" (fun () ->
            Arch.Level.make ~name:"x" ~capacity_bytes:1024
              ~link_bandwidth_gbps:0.0 ()));
    case "dram is unbounded" (fun () ->
        let d = Arch.Level.dram ~bandwidth_gbps:100.0 in
        check_true "is_dram" (Arch.Level.is_dram d);
        check_false "regular level is not"
          (Arch.Level.is_dram
             (Arch.Level.make ~name:"L1" ~capacity_bytes:1024
                ~link_bandwidth_gbps:1.0 ())));
    case "default line bytes" (fun () ->
        let l =
          Arch.Level.make ~name:"L1" ~capacity_bytes:1024
            ~link_bandwidth_gbps:1.0 ()
        in
        check_int "64" 64 l.Arch.Level.line_bytes);
  ]

let machine_tests =
  [
    case "hierarchy must end at DRAM" (fun () ->
        check_raises_invalid "no dram" (fun () ->
            Arch.Machine.make ~name:"m" ~backend:Arch.Machine.Cpu
              ~peak_tflops:1.0 ~freq_ghz:1.0 ~cores:1 ~vector_registers:16
              ~vector_lanes:8
              ~levels:
                [
                  Arch.Level.make ~name:"L1" ~capacity_bytes:1024
                    ~link_bandwidth_gbps:1.0 ();
                ]
              ()));
    case "capacities must be monotone" (fun () ->
        check_raises_invalid "inverted" (fun () ->
            Arch.Machine.make ~name:"m" ~backend:Arch.Machine.Cpu
              ~peak_tflops:1.0 ~freq_ghz:1.0 ~cores:1 ~vector_registers:16
              ~vector_lanes:8
              ~levels:
                [
                  Arch.Level.make ~name:"L1" ~capacity_bytes:2048
                    ~link_bandwidth_gbps:1.0 ();
                  Arch.Level.make ~name:"L2" ~capacity_bytes:1024
                    ~link_bandwidth_gbps:1.0 ();
                  Arch.Level.dram ~bandwidth_gbps:10.0;
                ]
              ()));
    case "accessors" (fun () ->
        let m = Arch.Presets.xeon_gold_6240 in
        check_int "on-chip levels" 3
          (List.length (Arch.Machine.on_chip_levels m));
        check_string "primary is L3" "L3"
          (Arch.Machine.primary_on_chip m).Arch.Level.name;
        check_string "dram" "DRAM" (Arch.Machine.dram m).Arch.Level.name);
    case "backend names" (fun () ->
        check_string "cpu" "cpu" (Arch.Machine.backend_to_string Arch.Machine.Cpu);
        check_string "gpu" "gpu" (Arch.Machine.backend_to_string Arch.Machine.Gpu);
        check_string "npu" "npu" (Arch.Machine.backend_to_string Arch.Machine.Npu));
  ]

(* Table I's "Peak Perf/BW" column: 92, 200, 267 FLOP/byte. *)
let preset_tests =
  [
    case "xeon ridge matches Table I" (fun () ->
        check_float ~eps:1.0 "92" 92.0
          (Arch.Machine.ridge_flop_per_byte Arch.Presets.xeon_gold_6240));
    case "a100 ridge matches Table I" (fun () ->
        check_float ~eps:1.0 "200" 200.0
          (Arch.Machine.ridge_flop_per_byte Arch.Presets.nvidia_a100));
    case "ascend ridge matches Table I" (fun () ->
        check_float ~eps:1.0 "267" 267.0
          (Arch.Machine.ridge_flop_per_byte Arch.Presets.ascend_910));
    case "xeon hierarchy sizes (Section VI-A)" (fun () ->
        let levels = Arch.Machine.on_chip_levels Arch.Presets.xeon_gold_6240 in
        let cap name =
          (List.find (fun (l : Arch.Level.t) -> l.name = name) levels)
            .Arch.Level.capacity_bytes
        in
        check_int "L1d per core" (32 * 1024) (cap "L1");
        check_int "L2 per core" (1024 * 1024) (cap "L2"));
    case "a100 shared memory (Section VI-A)" (fun () ->
        let levels = Arch.Machine.on_chip_levels Arch.Presets.nvidia_a100 in
        let shared = List.hd levels in
        check_int "164 KiB" (164 * 1024) shared.Arch.Level.capacity_bytes);
    case "ascend buffers (Section VI-A)" (fun () ->
        let levels = Arch.Machine.on_chip_levels Arch.Presets.ascend_910 in
        let l0 = List.hd levels in
        check_int "L0C 256 KiB" (256 * 1024) l0.Arch.Level.capacity_bytes;
        check_int "UB 256 KiB" (256 * 1024)
          Arch.Presets.ascend_unified_buffer_bytes);
    case "tensor tiles" (fun () ->
        check_true "a100 wmma"
          (Arch.Presets.nvidia_a100.Arch.Machine.tensor_tile = (16, 16, 16));
        check_true "ascend cube"
          (Arch.Presets.ascend_910.Arch.Machine.tensor_tile = (16, 16, 16)));
    case "by_name lookup" (fun () ->
        check_true "cpu" (Arch.Presets.by_name "cpu" <> None);
        check_true "GPU case-insensitive" (Arch.Presets.by_name "GPU" <> None);
        check_true "unknown" (Arch.Presets.by_name "tpu" = None));
  ]

let roofline_tests =
  [
    case "arithmetic intensity" (fun () ->
        check_float "ai" 4.0
          (Arch.Roofline.arithmetic_intensity ~flops:8.0 ~bytes:2.0));
    case "classification against ridge" (fun () ->
        let m = Arch.Presets.xeon_gold_6240 in
        check_true "low AI memory-bound"
          (Arch.Roofline.classify m ~flops:10.0 ~bytes:10.0
          = Arch.Roofline.Memory_bound);
        check_true "high AI compute-bound"
          (Arch.Roofline.classify m ~flops:1e6 ~bytes:10.0
          = Arch.Roofline.Compute_bound));
    case "time takes the max" (fun () ->
        let m = Arch.Presets.xeon_gold_6240 in
        (* 131 GB/s: 131e9 bytes take 1s; trivial flops. *)
        check_float ~eps:1e-6 "memory bound" 1.0
          (Arch.Roofline.time_seconds m ~flops:1.0 ~bytes:131e9 ());
        (* 12 TFLOPS: 12e12 flops take 1s at efficiency 1. *)
        check_float ~eps:1e-6 "compute bound" 1.0
          (Arch.Roofline.time_seconds m ~flops:12e12 ~bytes:1.0 ()));
    case "efficiency scales compute" (fun () ->
        let m = Arch.Presets.xeon_gold_6240 in
        check_float ~eps:1e-6 "half efficiency" 2.0
          (Arch.Roofline.time_seconds m ~flops:12e12 ~bytes:1.0
             ~efficiency:0.5 ()));
    case "efficiency validated" (fun () ->
        check_raises_invalid "zero" (fun () ->
            Arch.Roofline.time_seconds Arch.Presets.xeon_gold_6240 ~flops:1.0
              ~bytes:1.0 ~efficiency:0.0 ()));
    case "attainable curve saturates at peak" (fun () ->
        let m = Arch.Presets.nvidia_a100 in
        check_float ~eps:1e-6 "peak" 312.0
          (Arch.Roofline.attainable_tflops m ~intensity:1e6);
        check_true "bandwidth region"
          (Arch.Roofline.attainable_tflops m ~intensity:10.0 < 312.0));
  ]

let suites =
  [
    ("arch.level", level_tests);
    ("arch.machine", machine_tests);
    ("arch.presets", preset_tests);
    ("arch.roofline", roofline_tests);
  ]
