open Helpers

let ops_tests =
  [
    case "classification follows the paper's taxonomy" (fun () ->
        check_true "bmm is CI"
          (Graph.Ops.classify Graph.Ops.Batch_gemm
          = Some Graph.Ops.Compute_intensive);
        check_true "conv is CI"
          (Graph.Ops.classify (Graph.Ops.Conv2d { stride = 1; kh = 3; kw = 3 })
          = Some Graph.Ops.Compute_intensive);
        check_true "softmax is MI"
          (Graph.Ops.classify Graph.Ops.Softmax
          = Some Graph.Ops.Memory_intensive);
        check_true "input is neither" (Graph.Ops.classify Graph.Ops.Input = None));
    case "batch_gemm shape inference" (fun () ->
        check_true "valid"
          (Graph.Ops.infer_shape Graph.Ops.Batch_gemm
             [ [ 4; 16; 8 ]; [ 4; 8; 32 ] ]
          = Ok [ 4; 16; 32 ]);
        check_true "inner mismatch"
          (Result.is_error
             (Graph.Ops.infer_shape Graph.Ops.Batch_gemm
                [ [ 4; 16; 8 ]; [ 4; 9; 32 ] ]));
        check_true "batch mismatch"
          (Result.is_error
             (Graph.Ops.infer_shape Graph.Ops.Batch_gemm
                [ [ 4; 16; 8 ]; [ 2; 8; 32 ] ])));
    case "conv2d shape inference uses same padding" (fun () ->
        check_true "stride 2"
          (Graph.Ops.infer_shape
             (Graph.Ops.Conv2d { stride = 2; kh = 3; kw = 3 })
             [ [ 1; 64; 112; 112 ]; [ 192; 64; 3; 3 ] ]
          = Ok [ 1; 192; 56; 56 ]);
        check_true "channel mismatch"
          (Result.is_error
             (Graph.Ops.infer_shape
                (Graph.Ops.Conv2d { stride = 1; kh = 3; kw = 3 })
                [ [ 1; 64; 8; 8 ]; [ 16; 32; 3; 3 ] ])));
    case "flops formulas" (fun () ->
        check_float "gemm"
          (2.0 *. 4.0 *. 16.0 *. 32.0 *. 8.0)
          (Graph.Ops.flops Graph.Ops.Batch_gemm
             ~inputs:[ [ 4; 16; 8 ]; [ 4; 8; 32 ] ]
             ~output:[ 4; 16; 32 ]);
        check_float "relu" 64.0
          (Graph.Ops.flops Graph.Ops.Relu ~inputs:[ [ 64 ] ] ~output:[ 64 ]));
  ]

let builder_tests =
  [
    case "shapes propagate through the builder" (fun () ->
        let g = Graph.Models.attention_layer ~heads:4 ~seq:32 ~head_dim:8 () in
        let nodes = Graph.Builder.nodes g in
        check_int "6 nodes" 6 (List.length nodes);
        let last = List.nth nodes 5 in
        Alcotest.(check (list int)) "context shape" [ 4; 32; 8 ] last.shape);
    case "builder rejects bad shapes" (fun () ->
        let g = Graph.Builder.create () in
        let a = Graph.Builder.input g ~name:"a" ~shape:[ 2; 4; 8 ] in
        let b = Graph.Builder.input g ~name:"b" ~shape:[ 2; 9; 8 ] in
        check_raises_invalid "inner dim" (fun () ->
            ignore (Graph.Builder.batch_gemm g a b)));
    case "builder rejects cross-graph values" (fun () ->
        let g1 = Graph.Builder.create () in
        let g2 = Graph.Builder.create () in
        let a = Graph.Builder.input g1 ~name:"a" ~shape:[ 1; 4; 4 ] in
        let b = Graph.Builder.input g2 ~name:"b" ~shape:[ 1; 4; 4 ] in
        check_raises_invalid "cross graph" (fun () ->
            ignore (Graph.Builder.batch_gemm g1 a b)));
    case "consumers" (fun () ->
        let g = Graph.Builder.create () in
        let a = Graph.Builder.input g ~name:"a" ~shape:[ 1; 4; 4 ] in
        let r = Graph.Builder.relu g a in
        let _ = Graph.Builder.add g r r in
        check_int "relu consumed once (by add, twice as args)" 1
          (List.length
             (Graph.Builder.consumers g (Graph.Builder.value_id r))));
  ]

let partition_tests =
  [
    case "attention partitions into one fused chain" (fun () ->
        let g = Graph.Models.attention_layer ~heads:4 ~seq:32 ~head_dim:8 () in
        let p = Graph.Partition.partition g in
        let chains = Graph.Partition.chains p in
        check_int "one segment" 1 (List.length p.Graph.Partition.segments);
        check_int "one chain" 1 (List.length chains);
        let chain = List.hd chains in
        check_int "two stages" 2 (Ir.Chain.stage_count chain);
        check_true "softmax captured"
          (List.exists
             (fun (s : Ir.Chain.stage) ->
               match s.Ir.Chain.epilogue with
               | Ir.Chain.Softmax _ -> true
               | _ -> false)
             chain.Ir.Chain.stages);
        (* Shapes lowered from the graph: b=heads, m=l=seq, k=n=dim. *)
        check_int "b" 4 (Ir.Chain.extent_of chain "b");
        check_int "m" 32 (Ir.Chain.extent_of chain "m");
        check_int "k" 8 (Ir.Chain.extent_of chain "k"));
    case "conv block partitions into one fused chain with both ReLUs"
      (fun () ->
        let g =
          Graph.Models.conv_block ~ic:8 ~h:16 ~w:16 ~oc1:12 ~oc2:8 ~st1:2
            ~st2:1 ~k1:3 ~k2:1 ()
        in
        let p = Graph.Partition.partition g in
        check_int "one chain" 1 (List.length (Graph.Partition.chains p));
        let chain = List.hd (Graph.Partition.chains p) in
        check_int "two stages" 2 (Ir.Chain.stage_count chain);
        List.iter
          (fun (s : Ir.Chain.stage) ->
            check_true "relu folded" (s.Ir.Chain.epilogue = Ir.Chain.Relu))
          chain.Ir.Chain.stages);
    case "mixer block fuses three GEMMs" (fun () ->
        let g = Graph.Models.mlp_mixer_block ~tokens:64 ~channels:32 ~hidden:16 () in
        let p = Graph.Partition.partition g in
        let chain = List.hd (Graph.Partition.chains p) in
        check_int "three stages" 3 (Ir.Chain.stage_count chain);
        check_int "fused CI ops" 3 (Graph.Partition.fused_ci_ops p));
    case "a second consumer of the intermediate blocks fusion" (fun () ->
        let g = Graph.Builder.create () in
        let x = Graph.Builder.input g ~name:"x" ~shape:[ 1; 16; 8 ] in
        let w1 = Graph.Builder.input g ~name:"w1" ~shape:[ 1; 8; 16 ] in
        let w2 = Graph.Builder.input g ~name:"w2" ~shape:[ 1; 16; 8 ] in
        let c = Graph.Builder.batch_gemm g x w1 in
        let _e = Graph.Builder.batch_gemm g c w2 in
        (* Second consumer of c. *)
        let _r = Graph.Builder.relu g c in
        let p = Graph.Partition.partition g in
        check_int "no multi-stage chain" 0 (Graph.Partition.fused_ci_ops p);
        check_int "two single-stage chains" 2
          (List.length (Graph.Partition.chains p)));
    case "consuming as weight blocks fusion" (fun () ->
        let g = Graph.Builder.create () in
        let x = Graph.Builder.input g ~name:"x" ~shape:[ 1; 8; 8 ] in
        let w = Graph.Builder.input g ~name:"w" ~shape:[ 1; 8; 8 ] in
        let c = Graph.Builder.batch_gemm g x w in
        (* c used as the *weight* of the next GEMM: not the chain pattern. *)
        let _e = Graph.Builder.batch_gemm g x c in
        let p = Graph.Partition.partition g in
        check_int "no fusion" 0 (Graph.Partition.fused_ci_ops p));
    case "transformer block: chain + singles + elementwise groups"
      (fun () ->
        let g =
          Graph.Models.transformer_block ~hidden:64 ~heads:4 ~seq:32 ~ffn:128 ()
        in
        let p = Graph.Partition.partition g in
        (* One attention chain of 2 stages... *)
        check_int "attention fused" 2 (Graph.Partition.fused_ci_ops p);
        (* ...every CI op lands in exactly one chain. *)
        let ci_nodes =
          List.length
            (List.filter
               (fun (n : Graph.Builder.node) ->
                 Graph.Ops.classify n.op = Some Graph.Ops.Compute_intensive)
               (Graph.Builder.nodes g))
        in
        let covered =
          List.fold_left
            (fun acc -> function
              | Graph.Partition.Ci_chain { chain; _ } ->
                  acc + Ir.Chain.stage_count chain
              | Graph.Partition.Mi_group _ -> acc)
            0 p.Graph.Partition.segments
        in
        check_int "all CI ops covered" ci_nodes covered;
        (* MI groups exist (layernorms/residuals/gelu not folded). *)
        check_true "has elementwise groups"
          (List.exists
             (function Graph.Partition.Mi_group _ -> true | _ -> false)
             p.Graph.Partition.segments));
    case "every graph node lands in exactly one segment" (fun () ->
        let g =
          Graph.Models.transformer_block ~hidden:64 ~heads:4 ~seq:32 ~ffn:128 ()
        in
        let p = Graph.Partition.partition g in
        let covered =
          List.concat_map
            (function
              | Graph.Partition.Ci_chain { node_ids; _ }
              | Graph.Partition.Mi_group { node_ids; _ } ->
                  node_ids)
            p.Graph.Partition.segments
        in
        let sorted = List.sort compare covered in
        check_int "no duplicates" (List.length sorted)
          (List.length (List.sort_uniq compare sorted));
        let non_inputs =
          List.filter
            (fun (n : Graph.Builder.node) -> n.op <> Graph.Ops.Input)
            (Graph.Builder.nodes g)
        in
        check_int "complete coverage" (List.length non_inputs)
          (List.length sorted));
    case "mi group bytes count only external traffic" (fun () ->
        let g = Graph.Builder.create () in
        let a = Graph.Builder.input g ~name:"a" ~shape:[ 1; 4; 8 ] in
        (* relu -> gelu: one group; interior value free. *)
        let r = Graph.Builder.relu g a in
        let _ = Graph.Builder.gelu g r in
        let p = Graph.Partition.partition g in
        match p.Graph.Partition.segments with
        | [ Graph.Partition.Mi_group { bytes; node_ids; _ } ] ->
            check_int "two nodes" 2 (List.length node_ids);
            (* read a (64 B) + write gelu output (64 B), fp16. *)
            check_float "external only" 128.0 bytes
        | _ -> Alcotest.fail "expected a single elementwise group");
  ]

let estimate_tests =
  [
    case "fused estimate beats unfused on attention" (fun () ->
        let g =
          Graph.Models.attention_layer ~heads:12 ~seq:512 ~head_dim:64 ()
        in
        let p = Graph.Partition.partition g in
        let machine = Arch.Presets.nvidia_a100 in
        let fused = Graph.Estimate.estimate p ~machine in
        let unfused = Graph.Estimate.unfused_estimate p ~machine in
        check_true "fusion wins"
          (fused.Graph.Estimate.total_seconds
          < unfused.Graph.Estimate.total_seconds);
        check_true "totals decompose"
          (Float.abs
             (fused.Graph.Estimate.total_seconds
             -. (fused.Graph.Estimate.ci_seconds
                +. fused.Graph.Estimate.mi_seconds))
          < 1e-12));
    case "transformer block estimate covers every segment" (fun () ->
        let g =
          Graph.Models.transformer_block ~hidden:64 ~heads:4 ~seq:64 ~ffn:128 ()
        in
        let p = Graph.Partition.partition g in
        let r = Graph.Estimate.estimate p ~machine:Arch.Presets.xeon_gold_6240 in
        check_int "same segment count"
          (List.length p.Graph.Partition.segments)
          (List.length r.Graph.Estimate.segments);
        List.iter
          (fun (s : Graph.Estimate.segment_time) ->
            check_true (s.label ^ " positive") (s.seconds > 0.0))
          r.Graph.Estimate.segments);
  ]

let stack_tests =
  [
    case "encoder stack scales CI chains linearly" (fun () ->
        let ci layers =
          let g =
            Graph.Models.encoder_stack ~layers ~hidden:64 ~heads:4 ~seq:32
              ~ffn:128 ()
          in
          List.length (Graph.Partition.chains (Graph.Partition.partition g))
        in
        let one = ci 1 and three = ci 3 in
        check_int "3x chains" (3 * one) three);
    case "element-wise groups merge across the residual boundary" (fun () ->
        (* L0's ln2 feeds L1's residual add directly, so the groups span
           layers: strictly fewer than layers x groups-per-layer. *)
        let mi layers =
          let g =
            Graph.Models.encoder_stack ~layers ~hidden:64 ~heads:4 ~seq:32
              ~ffn:128 ()
          in
          List.length
            (List.filter
               (function Graph.Partition.Mi_group _ -> true | _ -> false)
               (Graph.Partition.partition g).Graph.Partition.segments)
        in
        check_true "merged" (mi 3 < 3 * mi 1));
    case "every layer's attention chain fuses" (fun () ->
        let g =
          Graph.Models.encoder_stack ~layers:3 ~hidden:64 ~heads:4 ~seq:32
            ~ffn:128 ()
        in
        let p = Graph.Partition.partition g in
        check_int "6 fused CI ops (2 per layer)" 6
          (Graph.Partition.fused_ci_ops p));
    case "blocks chain: layer 1 reads layer 0's output" (fun () ->
        let g =
          Graph.Models.encoder_stack ~layers:2 ~hidden:32 ~heads:2 ~seq:16
            ~ffn:64 ()
        in
        (* The second layer's qkv_proj consumes the first layer's ln2. *)
        let find name =
          List.find
            (fun (n : Graph.Builder.node) -> n.name = name)
            (Graph.Builder.nodes g)
        in
        let ln2_l0 = find "L0.ln2" in
        let qkv_l1 = find "L1.qkv_proj" in
        check_true "linked" (List.mem ln2_l0.id qkv_l1.inputs));
  ]

let numerics_tests =
  [
    case "partitioned attention chain computes correctly" (fun () ->
        let g = Graph.Models.attention_layer ~heads:2 ~seq:12 ~head_dim:5 () in
        let p = Graph.Partition.partition g in
        let chain = List.hd (Graph.Partition.chains p) in
        let compiled =
          Chimera.Compiler.optimize ~machine:Arch.Presets.xeon_gold_6240 chain
        in
        let env = Sim.Exec.make_env chain ~seed:21 in
        Chimera.Compiler.run compiled env;
        let ref_env = Sim.Exec.make_env chain ~seed:21 in
        Sim.Exec.run_reference chain ref_env;
        check_true "numerics"
          (Sim.Exec.outputs_match ~rtol:1e-6 chain ref_env env));
  ]

let suites =
  [
    ("graph.ops", ops_tests);
    ("graph.builder", builder_tests);
    ("graph.partition", partition_tests);
    ("graph.estimate", estimate_tests);
    ("graph.stack", stack_tests);
    ("graph.numerics", numerics_tests);
  ]
