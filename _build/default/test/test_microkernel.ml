open Helpers

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let cpu_tests =
  [
    case "Cascade Lake selects (6, 4, 2) with depth 24 (Section V-B)"
      (fun () ->
        let p = Microkernel.Cpu.select_params ~vector_registers:32 in
        check_int "MI" 6 p.Microkernel.Cpu.mi;
        check_int "NI" 4 p.Microkernel.Cpu.ni;
        check_int "MII" 2 p.Microkernel.Cpu.mii;
        check_int "depth" 24 p.Microkernel.Cpu.pipeline_depth);
    case "register budget is honoured" (fun () ->
        List.iter
          (fun regs ->
            let p = Microkernel.Cpu.select_params ~vector_registers:regs in
            check_true
              (Printf.sprintf "fits %d" regs)
              ((p.Microkernel.Cpu.mi * p.Microkernel.Cpu.ni)
               + p.Microkernel.Cpu.ni + p.Microkernel.Cpu.mii
              <= regs))
          [ 8; 16; 24; 32; 64 ]);
    case "more registers never hurt asymptotic AI" (fun () ->
        let ai regs =
          let p = Microkernel.Cpu.select_params ~vector_registers:regs in
          float_of_int (p.Microkernel.Cpu.mi * p.Microkernel.Cpu.ni)
          /. float_of_int (p.Microkernel.Cpu.mi + p.Microkernel.Cpu.ni)
        in
        check_true "monotone" (ai 16 <= ai 32 && ai 32 <= ai 64));
    case "select rejects tiny budgets" (fun () ->
        check_raises_invalid "4 regs" (fun () ->
            ignore (Microkernel.Cpu.select_params ~vector_registers:4)));
    case "AI formula (paper objective)" (fun () ->
        let p = Microkernel.Cpu.select_params ~vector_registers:32 in
        (* #Compute = 6*4*KI, #LoadStore = KI*10 + 48. *)
        check_float ~eps:1e-9 "ki=64"
          (float_of_int (6 * 4 * 64) /. float_of_int ((64 * 10) + 48))
          (Microkernel.Cpu.arithmetic_intensity p ~ki:64);
        check_true "AI grows with KI"
          (Microkernel.Cpu.arithmetic_intensity p ~ki:64
          > Microkernel.Cpu.arithmetic_intensity p ~ki:4));
    case "ki_for is dynamic and capped" (fun () ->
        check_int "small" 5 (Microkernel.Cpu.ki_for ~block_k:5);
        check_int "capped" 64 (Microkernel.Cpu.ki_for ~block_k:500));
    case "emitted assembly uses AVX-512" (fun () ->
        let asm =
          Microkernel.Cpu.impl.Microkernel.Kernel_sig.emit ~block_m:6
            ~block_n:64 ~block_k:64
        in
        check_true "fma" (contains ~needle:"vfmadd231ps" asm);
        check_true "loads" (contains ~needle:"vmovups" asm);
        check_true "broadcast" (contains ~needle:"vbroadcastss" asm);
        check_true "zmm registers" (contains ~needle:"zmm29" asm);
        (* Roughly the paper's "around 140 lines of assembly". *)
        let lines = List.length (String.split_on_char '\n' asm) in
        check_true "substantial body" (lines > 60 && lines < 250));
    case "instruction count formula" (fun () ->
        (* One invocation covering 6 x 64, KI = 16:
           24 C-loads + 16*(4+6+24) + 24 stores = 592. *)
        check_int "count" 592
          (Microkernel.Cpu.impl.Microkernel.Kernel_sig.instruction_count
             ~block_m:6 ~block_n:64 ~block_k:16));
    case "efficiency bounded and improves with deeper k" (fun () ->
        let eff bk =
          Microkernel.Cpu.impl.Microkernel.Kernel_sig.efficiency
            ~machine:Arch.Presets.xeon_gold_6240 ~block_m:96 ~block_n:128
            ~block_k:bk
        in
        check_true "in (0,1]" (eff 64 > 0.0 && eff 64 <= 1.0);
        check_true "amortised prologue" (eff 256 > eff 4));
    case "partial tiles pay occupancy" (fun () ->
        let eff bm =
          Microkernel.Cpu.impl.Microkernel.Kernel_sig.efficiency
            ~machine:Arch.Presets.xeon_gold_6240 ~block_m:bm ~block_n:64
            ~block_k:64
        in
        check_true "m=5 worse than m=6" (eff 5 < eff 6));
    case "naive kernel is slower and overlaps poorly" (fun () ->
        let tuned = Microkernel.Cpu.impl and naive = Microkernel.Cpu.naive_impl in
        let eff (i : Microkernel.Kernel_sig.impl) =
          i.efficiency ~machine:Arch.Presets.xeon_gold_6240 ~block_m:96
            ~block_n:128 ~block_k:64
        in
        check_true "slower" (eff naive < eff tuned);
        check_true "less overlap"
          (naive.Microkernel.Kernel_sig.overlap
          < tuned.Microkernel.Kernel_sig.overlap));
    case "execute matches the reference semantics" (fun () ->
        let m = 5 and n = 7 and k = 3 in
        let mk () = Array.init (m * k + 100) (fun i -> float_of_int (i mod 11)) in
        let a = mk () and b = mk () in
        let c1 = Array.make (m * n) 0.5 and c2 = Array.make (m * n) 0.5 in
        let buf c =
          {
            Microkernel.Kernel_sig.a;
            a_off = 2;
            lda = k;
            b;
            b_off = 1;
            ldb = n;
            c;
            c_off = 0;
            ldc = n;
          }
        in
        Microkernel.Cpu.impl.Microkernel.Kernel_sig.execute ~m ~n ~k (buf c1);
        Microkernel.Kernel_sig.reference_execute ~m ~n ~k (buf c2);
        Array.iteri
          (fun i v -> check_float "same" v c2.(i))
          c1);
  ]

let gpu_tests =
  [
    case "2x2 fragments reuse each load twice (Section V-B)" (fun () ->
        check_float "2x" 2.0 (Microkernel.Gpu.fragment_reuse Microkernel.Gpu.params);
        check_float "naive 1x" 1.0
          (Microkernel.Gpu.fragment_reuse
             { Microkernel.Gpu.params with frag_m = 1; frag_n = 1 }));
    case "native tile is two fragments per side" (fun () ->
        check_true "32x32x16"
          (Microkernel.Gpu.impl.Microkernel.Kernel_sig.native_tile
          = (32, 32, 16)));
    case "emission uses wmma intrinsics" (fun () ->
        let src =
          Microkernel.Gpu.impl.Microkernel.Kernel_sig.emit ~block_m:32
            ~block_n:32 ~block_k:64
        in
        check_true "mma_sync" (contains ~needle:"wmma::mma_sync" src);
        check_true "load" (contains ~needle:"load_matrix_sync" src);
        check_true "store" (contains ~needle:"store_matrix_sync" src));
    case "tuned beats naive" (fun () ->
        let eff (i : Microkernel.Kernel_sig.impl) =
          i.efficiency ~machine:Arch.Presets.nvidia_a100 ~block_m:128
            ~block_n:128 ~block_k:64
        in
        check_true "2x2 wins"
          (eff Microkernel.Gpu.impl > eff Microkernel.Gpu.naive_impl));
    case "instruction count scales with fragments" (fun () ->
        let count (i : Microkernel.Kernel_sig.impl) =
          i.instruction_count ~block_m:32 ~block_n:32 ~block_k:16
        in
        (* 2x2: 8 C ops + 1 step * (2+2+4) = 16; naive covers the same
           block with 4 tiles of (2 + 3) = 20. *)
        check_int "2x2" 16 (count Microkernel.Gpu.impl);
        check_int "naive" 20 (count Microkernel.Gpu.naive_impl));
  ]

let npu_tests =
  [
    case "Ascend parameters: M1 = N1 = 16, K1 = 8" (fun () ->
        let p = Microkernel.Npu.params in
        check_int "M1" 16 p.Microkernel.Npu.m1;
        check_int "N1" 16 p.Microkernel.Npu.n1;
        check_int "K1" 8 p.Microkernel.Npu.k1;
        check_int "lane" 16 p.Microkernel.Npu.lane);
    case "AI = M1M2N1N2/(M1M2+N1N2) = 128" (fun () ->
        check_float "128" 128.0
          (Microkernel.Npu.arithmetic_intensity Microkernel.Npu.params));
    case "L0 capacities are respected" (fun () ->
        let p = Microkernel.Npu.params in
        let lane = p.Microkernel.Npu.lane in
        check_true "L0C"
          (p.Microkernel.Npu.m1 * lane * p.Microkernel.Npu.n1 * lane * 4
          <= 256 * 1024);
        check_true "L0A"
          (p.Microkernel.Npu.m1 * lane * p.Microkernel.Npu.k1 * lane * 2
          <= 64 * 1024));
    case "smaller buffers shrink the tile" (fun () ->
        let p =
          Microkernel.Npu.select_params ~l0c_bytes:(64 * 1024)
            ~l0ab_bytes:(16 * 1024) ~lane:16
        in
        check_true "smaller" (p.Microkernel.Npu.m1 < 16));
    case "emission uses the mad pragma and six loops" (fun () ->
        let src =
          Microkernel.Npu.impl.Microkernel.Kernel_sig.emit ~block_m:256
            ~block_n:256 ~block_k:128
        in
        check_true "mad" (contains ~needle:"pragma='mad'" src);
        check_true "dma" (contains ~needle:"dma_copy" src);
        check_true "six-loop comment"
          (contains ~needle:"C[m1,n1,m2,n2] += A[m1,k1,m2,k2]" src));
  ]

let registry_tests =
  [
    case "default registry lowers per backend" (fun () ->
        let r = Microkernel.Registry.default () in
        let id machine =
          (Microkernel.Registry.lower r ~name:"matmul" ~machine)
            .Microkernel.Kernel_sig.id
        in
        check_string "cpu" "cpu.avx512.outer_product"
          (id Arch.Presets.xeon_gold_6240);
        check_string "gpu" "gpu.wmma.2x2" (id Arch.Presets.nvidia_a100);
        check_string "npu" "npu.cube.mad" (id Arch.Presets.ascend_910));
    case "lookup by backend" (fun () ->
        let r = Microkernel.Registry.default () in
        check_true "some"
          (Microkernel.Registry.lookup r ~name:"matmul"
             ~backend:Arch.Machine.Gpu
          <> None);
        check_true "unknown name"
          (Microkernel.Registry.lookup r ~name:"conv" ~backend:Arch.Machine.Gpu
          = None));
    case "lower fails with a clear error" (fun () ->
        let r = Microkernel.Registry.create () in
        check_true "failure"
          (match
             Microkernel.Registry.lower r ~name:"matmul"
               ~machine:Arch.Presets.xeon_gold_6240
           with
          | _ -> false
          | exception Failure _ -> true));
    case "registering replaces same id, stacks alternatives" (fun () ->
        let r = Microkernel.Registry.create () in
        Microkernel.Registry.register r ~name:"matmul" Microkernel.Cpu.impl;
        Microkernel.Registry.register r ~name:"matmul"
          Microkernel.Cpu.naive_impl;
        check_int "two impls" 2
          (List.length (Microkernel.Registry.implementations r ~name:"matmul"));
        (* Latest registration wins lookup. *)
        check_string "naive wins" "cpu.avx512.naive"
          (Option.get
             (Microkernel.Registry.lookup r ~name:"matmul"
                ~backend:Arch.Machine.Cpu))
            .Microkernel.Kernel_sig.id;
        (* Re-registering the same id replaces, not duplicates. *)
        Microkernel.Registry.register r ~name:"matmul" Microkernel.Cpu.impl;
        Microkernel.Registry.register r ~name:"matmul" Microkernel.Cpu.impl;
        check_int "still two" 2
          (List.length (Microkernel.Registry.implementations r ~name:"matmul")));
    case "all registered kernels share the same semantics (Figure 4)"
      (fun () ->
        (* Three different low-level implementations registered under one
           replaceable micro kernel must compute the same values. *)
        let r = Microkernel.Registry.default () in
        let m = 4 and n = 6 and k = 5 in
        let a = Array.init (m * k) (fun i -> float_of_int i /. 7.0) in
        let b = Array.init (k * n) (fun i -> float_of_int (i mod 5) -. 2.0) in
        let run (impl : Microkernel.Kernel_sig.impl) =
          let c = Array.make (m * n) 0.0 in
          impl.execute ~m ~n ~k
            {
              Microkernel.Kernel_sig.a;
              a_off = 0;
              lda = k;
              b;
              b_off = 0;
              ldb = n;
              c;
              c_off = 0;
              ldc = n;
            };
          c
        in
        let impls = Microkernel.Registry.implementations r ~name:"matmul" in
        check_int "three backends" 3 (List.length impls);
        match List.map run impls with
        | first :: rest ->
            List.iter
              (fun c -> Array.iteri (fun i v -> check_float "same" first.(i) v) c)
              rest
        | [] -> Alcotest.fail "no implementations");
  ]

let suites =
  [
    ("microkernel.cpu", cpu_tests);
    ("microkernel.gpu", gpu_tests);
    ("microkernel.npu", npu_tests);
    ("microkernel.registry", registry_tests);
  ]
