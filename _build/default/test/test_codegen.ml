open Helpers

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let kernel_for ?(machine = Arch.Presets.xeon_gold_6240) ?(softmax = false) () =
  let chain =
    Ir.Chain.batch_gemm_chain ~name:"t" ~batch:2 ~m:128 ~n:64 ~k:64 ~l:128
      ~softmax ()
  in
  (* A capacity small enough that the plan genuinely tiles. *)
  let plan = Analytical.Planner.optimize chain ~capacity_bytes:(32 * 1024) () in
  let registry = Microkernel.Registry.default () in
  Codegen.Kernel.of_plan ~name:"t" ~chain ~machine ~registry ~plan ()

let kernel_tests =
  [
    case "of_plan picks the backend micro kernel" (fun () ->
        let k = kernel_for () in
        check_string "cpu kernel" "cpu.avx512.outer_product"
          k.Codegen.Kernel.micro.Microkernel.Kernel_sig.id;
        let kg = kernel_for ~machine:Arch.Presets.nvidia_a100 () in
        check_string "gpu kernel" "gpu.wmma.2x2"
          kg.Codegen.Kernel.micro.Microkernel.Kernel_sig.id);
    case "predicted DV/MU agree with the plan" (fun () ->
        let k = kernel_for () in
        let m =
          Analytical.Movement.analyze k.Codegen.Kernel.chain
            ~perm:k.Codegen.Kernel.perm ~tiling:k.Codegen.Kernel.tiling
        in
        check_float "dv" m.Analytical.Movement.dv_bytes
          (Codegen.Kernel.predicted_dv_bytes k);
        check_int "mu" m.Analytical.Movement.mu_bytes
          (Codegen.Kernel.predicted_mu_bytes k));
    case "matmul_block_dims maps gemm blocks" (fun () ->
        let k = kernel_for () in
        let stage = List.hd k.Codegen.Kernel.chain.Ir.Chain.stages in
        let m, n, kk = Codegen.Kernel.matmul_block_dims k stage.Ir.Chain.op in
        let tile a = Analytical.Tiling.get k.Codegen.Kernel.tiling a in
        (* gemm1 output C[b][m][l]: innermost dim l is the vector n. *)
        check_int "n = T_l" (tile "l") n;
        check_int "k = T_k" (tile "k") kk;
        check_int "m = T_b * T_m" (tile "b" * tile "m") m);
    case "block_shape restricted to op axes" (fun () ->
        let k = kernel_for () in
        let stage = List.hd k.Codegen.Kernel.chain.Ir.Chain.stages in
        let shape = Codegen.Kernel.block_shape k stage.Ir.Chain.op in
        Alcotest.(check (list string))
          "axes"
          [ "b"; "m"; "l"; "k" ]
          (List.map fst shape));
    case "micro_efficiency is a sane fraction" (fun () ->
        let e = Codegen.Kernel.micro_efficiency (kernel_for ()) in
        check_true "in (0,1]" (e > 0.0 && e <= 1.0));
    case "block_count matches the tiling" (fun () ->
        let k = kernel_for () in
        check_float "blocks"
          (Analytical.Tiling.total_blocks k.Codegen.Kernel.tiling)
          (Codegen.Kernel.block_count k));
  ]

let source_tests =
  [
    case "emission carries the plan header" (fun () ->
        let src = Codegen.Source.emit (kernel_for ()) in
        check_true "name" (contains ~needle:"Chimera generated kernel" src);
        check_true "order" (contains ~needle:"block order:" src);
        check_true "machine" (contains ~needle:"Xeon" src));
    case "loop nest opens subdividing loops only" (fun () ->
        let k = kernel_for () in
        let nest = Codegen.Source.emit_loop_nest k in
        check_true "for loops" (contains ~needle:"for (int" nest);
        let loops =
          List.filter
            (fun line -> contains ~needle:"for (int" line)
            (String.split_on_char '\n' nest)
        in
        (* At least one loop per axis that is actually split somewhere in
           the level plans, and braces balance. *)
        check_true "several loops" (List.length loops >= 3);
        let count ch =
          String.fold_left (fun acc c -> if c = ch then acc + 1 else acc) 0 nest
        in
        check_int "balanced braces" (count '{') (count '}'));
    case "stage guards appear" (fun () ->
        let nest = Codegen.Source.emit_loop_nest (kernel_for ()) in
        (* gemm1 does not own n: it must be guarded on n's first block or
           gemm2 on k's last block. *)
        check_true "guard" (contains ~needle:"if (" nest));
    case "micro kernel body is substituted" (fun () ->
        let src = Codegen.Source.emit (kernel_for ()) in
        check_true "substitution note"
          (contains ~needle:"substituted low-level micro kernel" src);
        check_true "assembly" (contains ~needle:"vfmadd231ps" src));
    case "gpu emission is CUDA flavoured" (fun () ->
        let src = Codegen.Source.emit (kernel_for ~machine:Arch.Presets.nvidia_a100 ()) in
        check_true "wmma" (contains ~needle:"wmma::mma_sync" src);
        check_true "grid comment" (contains ~needle:"blockIdx" src));
    case "npu emission is DSL flavoured" (fun () ->
        let src = Codegen.Source.emit (kernel_for ~machine:Arch.Presets.ascend_910 ()) in
        check_true "mad" (contains ~needle:"pragma='mad'" src));
    case "softmax rewrite is spelled out" (fun () ->
        let src = Codegen.Source.emit (kernel_for ~softmax:true ()) in
        check_true "exp" (contains ~needle:"exp_inplace" src);
        check_true "merged sum" (contains ~needle:"rowsum_accumulate" src);
        check_true "swapped division" (contains ~needle:"divide_rows" src));
    case "buffer declarations label intermediates" (fun () ->
        let src = Codegen.Source.emit (kernel_for ()) in
        check_true "resident note"
          (contains ~needle:"intermediate, resident on chip" src));
    case "cpu emission carries the OpenMP pragma" (fun () ->
        let nest = Codegen.Source.emit_loop_nest (kernel_for ()) in
        check_true "omp" (contains ~needle:"#pragma omp parallel for" nest));
  ]

let suites = [ ("codegen.kernel", kernel_tests); ("codegen.source", source_tests) ]
