open Helpers

let lru_tests =
  [
    case "create validates" (fun () ->
        check_raises_invalid "capacity" (fun () ->
            ignore (Sim.Lru.create ~capacity_bytes:0)));
    case "miss then hit" (fun () ->
        let c = Sim.Lru.create ~capacity_bytes:1024 in
        check_true "first miss" (Sim.Lru.access c ~key:"a" ~bytes:100 = Sim.Lru.Miss);
        check_true "then hit" (Sim.Lru.access c ~key:"a" ~bytes:100 = Sim.Lru.Hit);
        check_int "accesses" 2 (Sim.Lru.accesses c);
        check_int "hits" 1 (Sim.Lru.hits c);
        check_int "misses" 1 (Sim.Lru.misses c);
        check_float "hit rate" 0.5 (Sim.Lru.hit_rate c));
    case "LRU eviction order" (fun () ->
        let c = Sim.Lru.create ~capacity_bytes:200 in
        ignore (Sim.Lru.access c ~key:"a" ~bytes:100);
        ignore (Sim.Lru.access c ~key:"b" ~bytes:100);
        (* Touch a so b is the LRU victim. *)
        ignore (Sim.Lru.access c ~key:"a" ~bytes:100);
        ignore (Sim.Lru.access c ~key:"c" ~bytes:100);
        check_true "a survives" (Sim.Lru.access c ~key:"a" ~bytes:100 = Sim.Lru.Hit);
        check_true "b evicted" (Sim.Lru.access c ~key:"b" ~bytes:100 = Sim.Lru.Miss));
    case "capacity never exceeded" (fun () ->
        let c = Sim.Lru.create ~capacity_bytes:250 in
        for i = 0 to 50 do
          ignore (Sim.Lru.access c ~key:(string_of_int i) ~bytes:100);
          check_true "resident" (Sim.Lru.resident_bytes c <= 250)
        done);
    case "oversized objects stream through" (fun () ->
        let c = Sim.Lru.create ~capacity_bytes:100 in
        ignore (Sim.Lru.access c ~key:"small" ~bytes:50);
        check_true "big misses"
          (Sim.Lru.access c ~key:"big" ~bytes:1000 = Sim.Lru.Miss);
        check_true "big misses again"
          (Sim.Lru.access c ~key:"big" ~bytes:1000 = Sim.Lru.Miss);
        check_true "small still resident"
          (Sim.Lru.access c ~key:"small" ~bytes:50 = Sim.Lru.Hit));
    case "bytes accounting" (fun () ->
        let c = Sim.Lru.create ~capacity_bytes:1024 in
        ignore (Sim.Lru.access c ~key:"a" ~bytes:100);
        ignore (Sim.Lru.access c ~key:"a" ~bytes:100);
        ignore (Sim.Lru.access c ~key:"b" ~bytes:50);
        check_float "in = misses" 150.0 (Sim.Lru.bytes_in c);
        check_float "accessed = all" 250.0 (Sim.Lru.bytes_accessed c));
    case "growing footprint charges the delta" (fun () ->
        let c = Sim.Lru.create ~capacity_bytes:1024 in
        ignore (Sim.Lru.access c ~key:"a" ~bytes:100);
        ignore (Sim.Lru.access c ~key:"a" ~bytes:160);
        check_float "100 + 60" 160.0 (Sim.Lru.bytes_in c));
    case "clear resets" (fun () ->
        let c = Sim.Lru.create ~capacity_bytes:1024 in
        ignore (Sim.Lru.access c ~key:"a" ~bytes:100);
        Sim.Lru.clear c;
        check_int "no accesses" 0 (Sim.Lru.accesses c);
        check_true "a gone" (Sim.Lru.access c ~key:"a" ~bytes:100 = Sim.Lru.Miss));
  ]

let line_cache_tests =
  [
    case "create validates geometry" (fun () ->
        check_raises_invalid "not a multiple" (fun () ->
            ignore (Sim.Line_cache.create ~capacity_bytes:1000 ~line_bytes:64 ())));
    case "same line hits" (fun () ->
        let c = Sim.Line_cache.create ~capacity_bytes:4096 ~line_bytes:64 () in
        ignore (Sim.Line_cache.access c ~addr:0);
        check_true "same line" (Sim.Line_cache.access c ~addr:63 = Sim.Lru.Hit);
        check_true "next line" (Sim.Line_cache.access c ~addr:64 = Sim.Lru.Miss));
    case "working set within capacity stays resident" (fun () ->
        let c = Sim.Line_cache.create ~capacity_bytes:4096 ~line_bytes:64 () in
        for pass = 1 to 3 do
          for line = 0 to 31 do
            ignore (Sim.Line_cache.access c ~addr:(line * 64));
            ignore pass
          done
        done;
        (* 32 lines = 2 KiB fit 4 KiB: only the first pass misses. *)
        check_int "misses" 32 (Sim.Line_cache.misses c);
        check_int "accesses" 96 (Sim.Line_cache.accesses c));
    case "thrashing working set misses" (fun () ->
        let c =
          Sim.Line_cache.create ~capacity_bytes:1024 ~line_bytes:64 ~ways:2 ()
        in
        (* 64 lines touched cyclically >> 16-line capacity. *)
        for _ = 1 to 3 do
          for line = 0 to 63 do
            ignore (Sim.Line_cache.access c ~addr:(line * 64))
          done
        done;
        check_true "low hit rate" (Sim.Line_cache.hit_rate c < 0.1));
    case "access_range touches every line" (fun () ->
        let c = Sim.Line_cache.create ~capacity_bytes:4096 ~line_bytes:64 () in
        Sim.Line_cache.access_range c ~addr:10 ~bytes:200;
        (* bytes [10, 210) span lines 0..3. *)
        check_int "4 lines" 4 (Sim.Line_cache.accesses c);
        check_float "bytes_in" 256.0 (Sim.Line_cache.bytes_in c));
  ]

let trace_tests =
  [
    case "iter_blocks visits every block in order" (fun () ->
        let chain = small_gemm_chain () in
        let tiling =
          Analytical.Tiling.make chain
            [ ("b", 1); ("m", 6); ("n", 6); ("k", 5); ("l", 5) ]
        in
        let perm = [ "b"; "m"; "n"; "k"; "l" ] in
        let visits = ref [] in
        Sim.Trace.iter_blocks ~perm ~tiling
          ~f:(fun starts -> visits := starts :: !visits)
          ();
        (* trips: 2 * 2 * 1 * 1 * 2 = 8. *)
        check_int "count" 8 (List.length !visits);
        check_float "block_count agrees" 8.0
          (Sim.Trace.block_count ~perm ~tiling);
        (* First visit is the origin; l (innermost) varies fastest. *)
        let first = List.nth (List.rev !visits) 0 in
        let second = List.nth (List.rev !visits) 1 in
        check_int "origin" 0 (List.assoc "m" first);
        check_int "l advanced" 5 (List.assoc "l" second));
    case "stage_runs: producer at first visit of foreign loops" (fun () ->
        let chain = figure2_chain () in
        let tiling = tiling_64 chain in
        (* gemm1 owns b,m,l,k; n is foreign and non-reduction: requires
           n = 0. *)
        let starts n k =
          [ ("b", 0); ("m", 0); ("n", n); ("k", k); ("l", 0) ]
        in
        check_true "runs at n=0"
          (Sim.Trace.stage_runs chain ~stage_index:0 ~tiling (starts 0 0));
        check_false "skips at n=64"
          (Sim.Trace.stage_runs chain ~stage_index:0 ~tiling (starts 64 0)));
    case "stage_runs: consumer waits for the producer reduction" (fun () ->
        let chain = figure2_chain () in
        let tiling =
          Analytical.Tiling.make chain
            [ ("m", 64); ("n", 64); ("k", 16); ("l", 64) ]
        in
        let starts k = [ ("b", 0); ("m", 0); ("n", 0); ("k", k); ("l", 0) ] in
        (* gemm2 does not own k (gemm1's reduction): requires the last
           k block, 48 for extent 64 tiled by 16. *)
        check_false "not at k=0"
          (Sim.Trace.stage_runs chain ~stage_index:1 ~tiling (starts 0));
        check_true "at k=48"
          (Sim.Trace.stage_runs chain ~stage_index:1 ~tiling (starts 48)));
    case "is_last_reduction_block" (fun () ->
        let chain = figure2_chain () in
        let tiling =
          Analytical.Tiling.make chain
            [ ("m", 64); ("n", 64); ("k", 16); ("l", 64) ]
        in
        let stage = List.hd chain.Ir.Chain.stages in
        check_true "k at last"
          (Sim.Trace.is_last_reduction_block stage ~tiling
             [ ("b", 0); ("m", 0); ("n", 0); ("k", 48); ("l", 0) ]);
        check_false "k at 0"
          (Sim.Trace.is_last_reduction_block stage ~tiling
             [ ("b", 0); ("m", 0); ("n", 0); ("k", 0); ("l", 0) ]));
    case "tile_key ignores unrelated axes" (fun () ->
        let chain = figure2_chain () in
        let a = Ir.Chain.find_ref chain "A" in
        let k1 = Sim.Trace.tile_key a [ ("m", 0); ("k", 64); ("n", 0) ] in
        let k2 = Sim.Trace.tile_key a [ ("m", 0); ("k", 64); ("n", 192) ] in
        let k3 = Sim.Trace.tile_key a [ ("m", 64); ("k", 64); ("n", 0) ] in
        check_string "n irrelevant" k1 k2;
        check_false "m relevant" (k1 = k3));
    case "measured traffic tracks Algorithm 1 when tiles stream" (fun () ->
        (* With a cache big enough for the per-op working set but far too
           small to keep whole tensors, tile misses track the model's
           movement; the LRU legitimately catches some incidental reuse
           the model conservatively ignores, so the band is loose. *)
        let chain = figure2_chain () in
        let tiling = tiling_64 chain in
        let predicted =
          (Analytical.Movement.analyze chain ~perm:mlkn ~tiling)
            .Analytical.Movement.dv_bytes
        in
        let level =
          Arch.Level.make ~name:"L" ~capacity_bytes:(64 * 1024)
            ~link_bandwidth_gbps:100.0 ()
        in
        let stats =
          Sim.Trace.measure_chain chain ~levels:[ level ] ~perm:mlkn ~tiling ()
        in
        let ratio = stats.Sim.Trace.dram_bytes /. predicted in
        check_true
          (Printf.sprintf "same regime (ratio %.3f)" ratio)
          (ratio > 0.4 && ratio <= 1.05));
    case "a huge cache reduces traffic to compulsory misses" (fun () ->
        let chain = figure2_chain () in
        let tiling = tiling_64 chain in
        let level =
          Arch.Level.make ~name:"huge" ~capacity_bytes:(64 * 1024 * 1024)
            ~link_bandwidth_gbps:100.0 ()
        in
        let stats =
          Sim.Trace.measure_chain chain ~levels:[ level ] ~perm:mlkn ~tiling ()
        in
        (* Every distinct tile loads once: about the total tensor bytes
           (A,B,C,D,E = 0.85 MB). *)
        check_true "compulsory only"
          (stats.Sim.Trace.dram_bytes
          <= 1.05
             *. (Ir.Chain.io_bytes chain
                +. float_of_int
                     (Ir.Operator.tensor_bytes (Ir.Chain.find_ref chain "C")))));
    case "spilling the intermediate adds traffic (Figure 8f)" (fun () ->
        let chain = figure2_chain () in
        let tiling = tiling_64 chain in
        let levels =
          [
            Arch.Level.make ~name:"L" ~capacity_bytes:(256 * 1024)
              ~link_bandwidth_gbps:100.0 ();
          ]
        in
        let kept =
          Sim.Trace.measure_chain chain ~levels ~perm:mlkn ~tiling ()
        in
        let spilled =
          Sim.Trace.measure_chain chain ~levels ~perm:mlkn ~tiling
            ~spill_intermediates:true ()
        in
        check_true "more movement"
          (spilled.Sim.Trace.dram_bytes > kept.Sim.Trace.dram_bytes));
    case "measure on a compiled kernel reports all levels" (fun () ->
        let chain = small_gemm_chain () in
        let machine = Arch.Presets.xeon_gold_6240 in
        let compiled = Chimera.Compiler.optimize ~machine chain in
        let stats =
          Sim.Trace.measure (List.hd compiled.Chimera.Compiler.units).kernel
        in
        check_int "three levels" 3 (List.length stats.Sim.Trace.levels);
        check_true "blocks visited" (stats.Sim.Trace.blocks_visited >= 1);
        List.iter
          (fun (l : Sim.Trace.level_stats) ->
            check_true "rates in [0,1]" (l.hit_rate >= 0.0 && l.hit_rate <= 1.0))
          stats.Sim.Trace.levels);
  ]

let perf_tests =
  [
    case "launch overheads per backend" (fun () ->
        check_true "gpu > cpu"
          (Sim.Perf.launch_overhead_seconds Arch.Presets.nvidia_a100
          > Sim.Perf.launch_overhead_seconds Arch.Presets.xeon_gold_6240));
    case "estimate decomposes into compute and memory" (fun () ->
        let chain = figure2_chain () in
        let machine = Arch.Presets.xeon_gold_6240 in
        let compiled = Chimera.Compiler.optimize ~machine chain in
        let r =
          Sim.Perf.estimate (List.hd compiled.Chimera.Compiler.units).kernel
        in
        check_true "positive" (r.Sim.Perf.time_seconds > 0.0);
        check_true "at least the max"
          (r.Sim.Perf.time_seconds
          >= Float.max r.Sim.Perf.compute_seconds r.Sim.Perf.memory_seconds);
        check_true "micro eff sane"
          (r.Sim.Perf.micro_efficiency > 0.0 && r.Sim.Perf.micro_efficiency <= 1.0);
        check_true "levels priced" (List.length r.Sim.Perf.per_level_cost >= 1));
    case "measured DRAM override changes memory time" (fun () ->
        let chain = figure2_chain () in
        let machine = Arch.Presets.xeon_gold_6240 in
        let compiled = Chimera.Compiler.optimize ~machine chain in
        let kernel = (List.hd compiled.Chimera.Compiler.units).kernel in
        let base = Sim.Perf.estimate kernel in
        let bigger =
          Sim.Perf.estimate ~dram_bytes:(base.Sim.Perf.dram_bytes *. 100.0)
            kernel
        in
        check_true "slower" (bigger.Sim.Perf.time_seconds > base.Sim.Perf.time_seconds));
    case "NPU prices the Unified Buffer (Figure 7 bottleneck)" (fun () ->
        let chain = figure2_chain () in
        let machine = Arch.Presets.ascend_910 in
        let compiled = Chimera.Compiler.optimize ~machine chain in
        let r = Sim.Perf.estimate (List.hd compiled.Chimera.Compiler.units).kernel in
        check_true "UB entry"
          (List.mem_assoc "UB" r.Sim.Perf.per_level_cost));
    case "gflops is consistent" (fun () ->
        let chain = figure2_chain () in
        let machine = Arch.Presets.xeon_gold_6240 in
        let compiled = Chimera.Compiler.optimize ~machine chain in
        let r = Sim.Perf.estimate (List.hd compiled.Chimera.Compiler.units).kernel in
        check_float ~eps:1e-6 "formula"
          (r.Sim.Perf.flops /. r.Sim.Perf.time_seconds /. 1e9)
          (Sim.Perf.gflops r));
  ]

let suites =
  [
    ("sim.lru", lru_tests);
    ("sim.line_cache", line_cache_tests);
    ("sim.trace", trace_tests);
    ("sim.perf", perf_tests);
  ]
