open Helpers

(* Regression locks on the headline reproduction claims of
   EXPERIMENTS.md: if a model change pushes a figure out of its band,
   these fail before the bench harness would reveal it. *)

let cpu = Arch.Presets.xeon_gold_6240
let gpu = Arch.Presets.nvidia_a100

let chimera_time machine chain =
  Chimera.Compiler.total_time_seconds
    (Chimera.Compiler.optimize ~machine chain)

let tests =
  [
    slow_case "Figure 5a band: Chimera 2-4.5x over PyTorch on CPU BMM chains"
      (fun () ->
        let ratios =
          List.map
            (fun name ->
              let chain =
                Workloads.Gemm_configs.chain
                  (Option.get (Workloads.Gemm_configs.by_name name))
              in
              let p =
                Baselines.Profile.estimate Baselines.Systems.cpu_pytorch
                  ~machine:cpu chain
              in
              p.Baselines.Profile.time_seconds /. chimera_time cpu chain)
            [ "G1"; "G2"; "G12" ]
        in
        let avg = Util.Stats.geomean ratios in
        check_true
          (Printf.sprintf "avg %.2f in band" avg)
          (avg > 2.0 && avg < 4.5));
    slow_case "Figure 6a band: TVM+Cutlass is the closest GPU baseline"
      (fun () ->
        let chain =
          Workloads.Gemm_configs.chain
            (Option.get (Workloads.Gemm_configs.by_name "G2"))
        in
        let t = chimera_time gpu chain in
        let ratio p =
          (Baselines.Profile.estimate p ~machine:gpu chain)
            .Baselines.Profile.time_seconds /. t
        in
        let cutlass = ratio Baselines.Systems.gpu_tvm_cutlass in
        check_true
          (Printf.sprintf "near parity (%.2f)" cutlass)
          (cutlass > 0.9 && cutlass < 1.6);
        List.iter
          (fun p ->
            check_true
              (p.Baselines.Profile.name ^ " further than Cutlass")
              (ratio p >= cutlass -. 0.01))
          [
            Baselines.Systems.gpu_pytorch;
            Baselines.Systems.gpu_taso;
            Baselines.Systems.gpu_relay;
            Baselines.Systems.gpu_ansor;
            Baselines.Systems.gpu_tensorrt;
          ]);
    slow_case "Figure 8c band: fusion cuts DRAM traffic by 50-90%" (fun () ->
        let reductions =
          List.map
            (fun name ->
              let chain =
                Workloads.Gemm_configs.chain
                  (Option.get (Workloads.Gemm_configs.by_name name))
              in
              let fused =
                Chimera.Compiler.optimize ~machine:cpu chain
              in
              let fused_bytes =
                (List.hd (Chimera.Compiler.measure fused)).Sim.Trace.dram_bytes
              in
              let unfused_bytes =
                List.fold_left
                  (fun acc sub ->
                    let c =
                      Chimera.Compiler.optimize
                        ~config:
                          { Chimera.Config.default with use_fusion = false }
                        ~machine:cpu sub
                    in
                    acc
                    +. (List.hd (Chimera.Compiler.measure c)).Sim.Trace.dram_bytes)
                  0.0
                  (Chimera.Compiler.split_stages chain)
              in
              1.0 -. (fused_bytes /. unfused_bytes))
            [ "G1"; "G3"; "G11" ]
        in
        let avg = Util.Stats.mean reductions in
        check_true
          (Printf.sprintf "reduction %.1f%% in band" (100.0 *. avg))
          (avg > 0.5 && avg < 0.9));
    slow_case "Figure 8d band: model validation R^2 above 0.95" (fun () ->
        (* A reduced version of the bench sweep: 25 samples at 512^4. *)
        let chain =
          Ir.Chain.batch_gemm_chain ~name:"r2" ~batch:1 ~m:512 ~n:512 ~k:512
            ~l:512 ()
        in
        let perm = [ "b"; "m"; "l"; "k"; "n" ] in
        let capacity = 256 * 1024 in
        let level =
          Arch.Level.make ~name:"L" ~capacity_bytes:capacity
            ~link_bandwidth_gbps:100.0 ()
        in
        let prng = Util.Prng.create ~seed:4 in
        let samples = ref [] in
        while List.length !samples < 25 do
          let tiling =
            List.fold_left
              (fun t axis ->
                if Ir.Chain.extent_of chain axis = 1 then t
                else
                  Analytical.Tiling.set t axis
                    (32 * (1 + Util.Prng.int prng ~bound:8)))
              (Analytical.Tiling.ones chain)
              (Analytical.Movement.fused_axes chain)
          in
          let r = Analytical.Movement.analyze chain ~perm ~tiling in
          (* The per-block model cannot see the incidental reuse an LRU
             finds when blocks use a small fraction of the cache; sample
             the upper half of the capacity range, where real tiling
             factors live. *)
          if
            r.Analytical.Movement.mu_bytes <= capacity
            && r.Analytical.Movement.mu_bytes >= capacity / 2
          then samples := tiling :: !samples
        done;
        let predicted, measured =
          List.split
            (List.map
               (fun tiling ->
                 ( (Analytical.Movement.analyze chain ~perm ~tiling)
                     .Analytical.Movement.dv_bytes,
                   (Sim.Trace.measure_chain chain ~levels:[ level ] ~perm
                      ~tiling ())
                     .Sim.Trace.dram_bytes ))
               !samples)
        in
        let r2 = Util.Stats.r_squared ~predicted ~measured in
        check_true (Printf.sprintf "R^2 %.3f" r2) (r2 > 0.95));
    slow_case "fire module: two consumers stop the squeeze from fusing"
      (fun () ->
        let g =
          Graph.Models.fire_module ~ic:16 ~h:14 ~w:14 ~squeeze:8 ~expand:16 ()
        in
        let p = Graph.Partition.partition g in
        (* All three convs stay single-stage; the ReLUs fold as
           epilogues. *)
        check_int "no multi-stage chains" 0 (Graph.Partition.fused_ci_ops p);
        check_int "three single-op chains" 3
          (List.length (Graph.Partition.chains p));
        List.iter
          (fun chain ->
            check_true "relu folded"
              (List.for_all
                 (fun (s : Ir.Chain.stage) ->
                   s.Ir.Chain.epilogue = Ir.Chain.Relu)
                 chain.Ir.Chain.stages))
          (Graph.Partition.chains p));
  ]

let suites = [ ("headline", tests) ]
