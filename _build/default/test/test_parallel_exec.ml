open Helpers

let check_parallel_matches ?domains chain perm tiling =
  let reference = Sim.Exec.make_env chain ~seed:33 in
  Sim.Exec.run_reference chain reference;
  let env = Sim.Exec.make_env chain ~seed:33 in
  Sim.Parallel_exec.run_fused_parallel ?domains chain ~perm ~tiling env;
  check_true
    (Printf.sprintf "perm %s" (String.concat "" perm))
    (Sim.Exec.outputs_match ~rtol:1e-6 chain reference env)

let tests =
  [
    case "tasks partition the parallel grid" (fun () ->
        let chain = figure2_chain () in
        let tiling = Analytical.Tiling.make chain [ ("m", 128) ] in
        let tasks = Sim.Parallel_exec.tasks_of chain tiling in
        (* b: 1 block; m: 4 blocks. *)
        check_int "four tasks" 4 (List.length tasks);
        List.iter
          (fun bounds ->
            check_true "bounds m" (List.mem_assoc "m" bounds);
            check_true "bounds b" (List.mem_assoc "b" bounds))
          tasks);
    case "parallel GEMM chain matches the reference" (fun () ->
        let chain = small_gemm_chain () in
        let tiling =
          Analytical.Tiling.make chain
            [ ("b", 1); ("m", 4); ("n", 3); ("k", 2); ("l", 5) ]
        in
        List.iter
          (fun domains ->
            check_parallel_matches ~domains chain mlkn tiling)
          [ 1; 2; 4 ]);
    case "parallel softmax chain matches the reference" (fun () ->
        let chain = small_gemm_chain ~softmax:true () in
        let tiling =
          Analytical.Tiling.make chain
            [ ("b", 1); ("m", 5); ("n", 6); ("k", 5); ("l", 3) ]
        in
        check_parallel_matches ~domains:3 chain mnkl tiling);
    case "parallel conv chain with halo recomputation matches" (fun () ->
        let chain = small_conv_chain ~relu:true () in
        let perm = Analytical.Movement.fused_axes chain in
        let tiling =
          Analytical.Tiling.make chain
            [ ("oc2", 2); ("oh", 2); ("ow", 3); ("oc1", 2); ("kh2", 3);
              ("kw2", 3); ("ic", 2); ("kh1", 3); ("kw1", 3) ]
        in
        (* oh/ow splitting across domains exercises the private halo
           buffers: overlapping O1 regions are recomputed per task. *)
        check_parallel_matches ~domains:4 chain perm tiling);
    case "three-GEMM chain in parallel" (fun () ->
        let chain =
          Ir.Chain.batch_gemm_chain3 ~name:"p3" ~batch:2 ~m:10 ~k:4 ~l:8 ~n:6
            ~p:5 ()
        in
        let tiling =
          Analytical.Tiling.make chain
            [ ("b", 1); ("m", 3); ("k", 2); ("l", 4); ("n", 3); ("p", 5) ]
        in
        check_parallel_matches ~domains:4 chain
          [ "b"; "m"; "k"; "l"; "n"; "p" ]
          tiling);
    case "bounded sequential run equals one task's slice" (fun () ->
        let chain = small_gemm_chain () in
        let tiling = Analytical.Tiling.make chain [ ("b", 1); ("m", 4) ] in
        let full = Sim.Exec.make_env chain ~seed:5 in
        Sim.Exec.run_fused chain
          ~perm:(Analytical.Movement.fused_axes chain)
          ~tiling full;
        let sliced = Sim.Exec.make_env chain ~seed:5 in
        List.iter
          (fun bounds ->
            Sim.Exec.run_fused ~bounds ~zero:false chain
              ~perm:(Analytical.Movement.fused_axes chain)
              ~tiling sliced)
          (Sim.Parallel_exec.tasks_of chain tiling);
        check_true "match" (Sim.Exec.outputs_match chain full sliced));
  ]

let suites = [ ("sim.parallel_exec", tests) ]
