open Helpers

let dtype_tests =
  [
    case "byte widths" (fun () ->
        check_int "fp16" 2 (Tensor.Dtype.bytes Tensor.Dtype.Fp16);
        check_int "fp32" 4 (Tensor.Dtype.bytes Tensor.Dtype.Fp32);
        check_int "fp64" 8 (Tensor.Dtype.bytes Tensor.Dtype.Fp64));
    case "string roundtrip" (fun () ->
        List.iter
          (fun d ->
            Alcotest.(check (option string))
              "roundtrip"
              (Some (Tensor.Dtype.to_string d))
              (Option.map Tensor.Dtype.to_string
                 (Tensor.Dtype.of_string (Tensor.Dtype.to_string d))))
          [ Tensor.Dtype.Fp16; Tensor.Dtype.Fp32; Tensor.Dtype.Fp64 ]);
    case "of_string rejects unknown" (fun () ->
        check_true "none" (Tensor.Dtype.of_string "int8" = None));
  ]

let shape_tests =
  [
    case "numel and rank" (fun () ->
        let s = Tensor.Shape.of_list [ 2; 3; 4 ] in
        check_int "rank" 3 (Tensor.Shape.rank s);
        check_int "numel" 24 (Tensor.Shape.numel s);
        check_int "dim 1" 3 (Tensor.Shape.dim s 1));
    case "rejects non-positive extents" (fun () ->
        check_raises_invalid "zero" (fun () -> Tensor.Shape.of_list [ 2; 0 ]));
    case "strides are row-major" (fun () ->
        let s = Tensor.Shape.of_list [ 2; 3; 4 ] in
        Alcotest.(check (array int)) "strides" [| 12; 4; 1 |]
          (Tensor.Shape.strides s));
    case "linear_index" (fun () ->
        let s = Tensor.Shape.of_list [ 2; 3; 4 ] in
        check_int "origin" 0 (Tensor.Shape.linear_index s [| 0; 0; 0 |]);
        check_int "last" 23 (Tensor.Shape.linear_index s [| 1; 2; 3 |]);
        check_int "middle" 13 (Tensor.Shape.linear_index s [| 1; 0; 1 |]));
    case "linear_index bounds" (fun () ->
        let s = Tensor.Shape.of_list [ 2; 3 ] in
        check_raises_invalid "oob" (fun () ->
            Tensor.Shape.linear_index s [| 0; 3 |]);
        check_raises_invalid "rank" (fun () ->
            Tensor.Shape.linear_index s [| 0 |]));
    case "equal" (fun () ->
        check_true "same"
          (Tensor.Shape.equal
             (Tensor.Shape.of_list [ 2; 3 ])
             (Tensor.Shape.of_list [ 2; 3 ]));
        check_false "diff"
          (Tensor.Shape.equal
             (Tensor.Shape.of_list [ 2; 3 ])
             (Tensor.Shape.of_list [ 3; 2 ])));
    case "to_string" (fun () ->
        check_string "render" "[2x3]"
          (Tensor.Shape.to_string (Tensor.Shape.of_list [ 2; 3 ])));
    case "dim range check" (fun () ->
        let s = Tensor.Shape.of_list [ 2 ] in
        check_raises_invalid "dim 1" (fun () -> Tensor.Shape.dim s 1));
  ]

let dense_tests =
  [
    case "create zeroed" (fun () ->
        let t = Tensor.Dense.create (Tensor.Shape.of_list [ 3; 3 ]) in
        check_float "zero" 0.0 (Tensor.Dense.get t [| 2; 2 |]));
    case "default dtype is fp16" (fun () ->
        let t = Tensor.Dense.create (Tensor.Shape.of_list [ 4 ]) in
        check_int "bytes" 8 (Tensor.Dense.size_bytes t));
    case "set and get" (fun () ->
        let t = Tensor.Dense.create (Tensor.Shape.of_list [ 2; 2 ]) in
        Tensor.Dense.set t [| 1; 0 |] 3.5;
        check_float "read back" 3.5 (Tensor.Dense.get t [| 1; 0 |]);
        check_float "flat view" 3.5 (Tensor.Dense.get_flat t 2));
    case "of_array validates length" (fun () ->
        check_raises_invalid "short" (fun () ->
            Tensor.Dense.of_array (Tensor.Shape.of_list [ 4 ]) [| 1.0 |]));
    case "fill" (fun () ->
        let t = Tensor.Dense.create (Tensor.Shape.of_list [ 5 ]) in
        Tensor.Dense.fill t 2.0;
        check_float "filled" 2.0 (Tensor.Dense.get_flat t 4));
    case "fill_random deterministic" (fun () ->
        let mk () =
          let t = Tensor.Dense.create (Tensor.Shape.of_list [ 16 ]) in
          Tensor.Dense.fill_random t
            ~prng:(Util.Prng.create ~seed:5)
            ~lo:(-1.0) ~hi:1.0;
          t
        in
        check_float "same values" 0.0 (Tensor.Dense.max_abs_diff (mk ()) (mk ())));
    case "fill_random respects range" (fun () ->
        let t = Tensor.Dense.create (Tensor.Shape.of_list [ 64 ]) in
        Tensor.Dense.fill_random t
          ~prng:(Util.Prng.create ~seed:6)
          ~lo:(-1.0) ~hi:1.0;
        Tensor.Dense.iteri t (fun _ v ->
            check_true "in range" (v >= -1.0 && v < 1.0)));
    case "map" (fun () ->
        let t = Tensor.Dense.create (Tensor.Shape.of_list [ 3 ]) in
        Tensor.Dense.fill t 2.0;
        let doubled = Tensor.Dense.map (fun v -> v *. 2.0) t in
        check_float "doubled" 4.0 (Tensor.Dense.get_flat doubled 0);
        check_float "original intact" 2.0 (Tensor.Dense.get_flat t 0));
    case "iteri multi-index order" (fun () ->
        let t = Tensor.Dense.create (Tensor.Shape.of_list [ 2; 2 ]) in
        let visits = ref [] in
        Tensor.Dense.iteri t (fun idx _ ->
            visits := (idx.(0), idx.(1)) :: !visits);
        Alcotest.(check (list (pair int int)))
          "row major"
          [ (0, 0); (0, 1); (1, 0); (1, 1) ]
          (List.rev !visits));
    case "copy is deep" (fun () ->
        let t = Tensor.Dense.create (Tensor.Shape.of_list [ 2 ]) in
        let c = Tensor.Dense.copy t in
        Tensor.Dense.set_flat c 0 9.0;
        check_float "original untouched" 0.0 (Tensor.Dense.get_flat t 0));
    case "allclose tolerances" (fun () ->
        let a = Tensor.Dense.create (Tensor.Shape.of_list [ 2 ]) in
        let b = Tensor.Dense.copy a in
        Tensor.Dense.set_flat b 0 1e-12;
        check_true "close" (Tensor.Dense.allclose a b);
        Tensor.Dense.set_flat b 0 1.0;
        check_false "far" (Tensor.Dense.allclose a b));
    case "allclose shape mismatch" (fun () ->
        let a = Tensor.Dense.create (Tensor.Shape.of_list [ 2 ]) in
        let b = Tensor.Dense.create (Tensor.Shape.of_list [ 3 ]) in
        check_raises_invalid "shape" (fun () ->
            ignore (Tensor.Dense.allclose a b)));
    case "max_abs_diff" (fun () ->
        let a = Tensor.Dense.create (Tensor.Shape.of_list [ 3 ]) in
        let b = Tensor.Dense.copy a in
        Tensor.Dense.set_flat b 1 (-2.5);
        check_float "diff" 2.5 (Tensor.Dense.max_abs_diff a b));
    case "size_bytes follows dtype" (fun () ->
        let s = Tensor.Shape.of_list [ 10 ] in
        check_int "fp32" 40
          (Tensor.Dense.size_bytes (Tensor.Dense.create ~dtype:Tensor.Dtype.Fp32 s)));
  ]

let suites =
  [
    ("tensor.dtype", dtype_tests);
    ("tensor.shape", shape_tests);
    ("tensor.dense", dense_tests);
  ]
