open Helpers

let gemm_config_tests =
  [
    case "Table IV has twelve rows" (fun () ->
        check_int "G1..G12" 12 (List.length Workloads.Gemm_configs.all));
    case "lookup by name" (fun () ->
        match Workloads.Gemm_configs.by_name "G2" with
        | None -> Alcotest.fail "G2 missing"
        | Some c ->
            check_int "batch" 12 c.Workloads.Gemm_configs.batch;
            check_int "m" 512 c.Workloads.Gemm_configs.m;
            check_int "n" 64 c.Workloads.Gemm_configs.n;
            check_int "k" 64 c.Workloads.Gemm_configs.k;
            check_int "l" 512 c.Workloads.Gemm_configs.l;
            check_string "network" "Bert-Base" c.Workloads.Gemm_configs.network);
    case "G6 has 80-dim heads (ViT-Huge)" (fun () ->
        let c = Option.get (Workloads.Gemm_configs.by_name "G6") in
        check_int "n" 80 c.Workloads.Gemm_configs.n;
        check_int "k" 80 c.Workloads.Gemm_configs.k);
    case "MLP-Mixer rows have batch 1" (fun () ->
        List.iter
          (fun name ->
            let c = Option.get (Workloads.Gemm_configs.by_name name) in
            check_int "batch" 1 c.Workloads.Gemm_configs.batch)
          [ "G10"; "G11"; "G12" ]);
    case "chain shapes follow the table" (fun () ->
        let c = Option.get (Workloads.Gemm_configs.by_name "G7") in
        let chain = Workloads.Gemm_configs.chain c in
        check_int "m" 208 (Ir.Chain.extent_of chain "m");
        check_int "b" 12 (Ir.Chain.extent_of chain "b");
        Alcotest.(check (list string))
          "io" [ "A"; "B"; "D"; "E" ] (Ir.Chain.io_names chain));
    case "batch_override for the NPU evaluation" (fun () ->
        let c = Option.get (Workloads.Gemm_configs.by_name "G3") in
        let chain = Workloads.Gemm_configs.chain ~batch_override:1 c in
        check_int "batch 1" 1 (Ir.Chain.extent_of chain "b"));
    case "softmax flag inserts the epilogue" (fun () ->
        let c = Option.get (Workloads.Gemm_configs.by_name "G1") in
        let chain = Workloads.Gemm_configs.chain ~softmax:true c in
        check_true "softmax present"
          (List.exists
             (fun (s : Ir.Chain.stage) ->
               match s.Ir.Chain.epilogue with
               | Ir.Chain.Softmax _ -> true
               | _ -> false)
             chain.Ir.Chain.stages));
    case "of_attention derives the BMM shape" (fun () ->
        let c = Workloads.Gemm_configs.of_attention ~heads:12 ~seq:512 ~head_dim:64 in
        check_int "batch = heads" 12 c.Workloads.Gemm_configs.batch;
        check_int "m = seq" 512 c.Workloads.Gemm_configs.m;
        check_int "n = head_dim" 64 c.Workloads.Gemm_configs.n;
        check_int "l = seq" 512 c.Workloads.Gemm_configs.l);
  ]

let conv_config_tests =
  [
    case "Table V has eight rows" (fun () ->
        check_int "C1..C8" 8 (List.length Workloads.Conv_configs.all));
    case "C1 matches the table" (fun () ->
        let c = Option.get (Workloads.Conv_configs.by_name "C1") in
        check_int "ic" 64 c.Workloads.Conv_configs.ic;
        check_int "h" 112 c.Workloads.Conv_configs.h;
        check_int "oc1" 192 c.Workloads.Conv_configs.oc1;
        check_int "oc2" 128 c.Workloads.Conv_configs.oc2;
        check_int "st1" 2 c.Workloads.Conv_configs.st1;
        check_int "k1" 3 c.Workloads.Conv_configs.k1;
        check_int "k2" 1 c.Workloads.Conv_configs.k2);
    case "C6 is the pointwise-then-3x3 crossover case" (fun () ->
        let c = Option.get (Workloads.Conv_configs.by_name "C6") in
        check_int "k1" 1 c.Workloads.Conv_configs.k1;
        check_int "k2" 3 c.Workloads.Conv_configs.k2);
    case "chain extents derive from the config" (fun () ->
        let c = Option.get (Workloads.Conv_configs.by_name "C1") in
        let chain = Workloads.Conv_configs.chain c in
        check_int "oh = 56" 56 (Ir.Chain.extent_of chain "oh");
        check_int "oc1" 192 (Ir.Chain.extent_of chain "oc1");
        check_int "relu absent"
          0
          (List.length
             (List.filter
                (fun (s : Ir.Chain.stage) -> s.Ir.Chain.epilogue = Ir.Chain.Relu)
                chain.Ir.Chain.stages));
        let with_relu = Workloads.Conv_configs.chain ~relu:true c in
        check_int "relu on both stages" 2
          (List.length
             (List.filter
                (fun (s : Ir.Chain.stage) -> s.Ir.Chain.epilogue = Ir.Chain.Relu)
                with_relu.Ir.Chain.stages)));
  ]

let network_tests =
  [
    case "nine Figure 9 networks" (fun () ->
        check_int "count" 9 (List.length Workloads.Networks.all));
    case "lookup by name" (fun () ->
        check_true "Bert-Base" (Workloads.Networks.by_name "Bert-Base" <> None);
        check_true "unknown" (Workloads.Networks.by_name "GPT-5" = None));
    case "Bert-Base attention matches G2" (fun () ->
        let net = Workloads.Networks.bert_base in
        let attn = Workloads.Networks.attention_config net in
        let g2 = Option.get (Workloads.Gemm_configs.by_name "G2") in
        check_int "batch" g2.Workloads.Gemm_configs.batch
          attn.Workloads.Gemm_configs.batch;
        check_int "m" g2.Workloads.Gemm_configs.m attn.Workloads.Gemm_configs.m;
        check_int "k" g2.Workloads.Gemm_configs.k attn.Workloads.Gemm_configs.k);
    case "components scale with layers" (fun () ->
        let net = Workloads.Networks.bert_base in
        check_int "12 layers worth"
          (12 * List.length net.Workloads.Networks.per_layer)
          (List.length (Workloads.Networks.components net)));
    case "component flops and bytes are positive" (fun () ->
        List.iter
          (fun c ->
            check_true "flops" (Workloads.Networks.component_flops c > 0.0);
            check_true "bytes"
              (Workloads.Networks.component_bytes Tensor.Dtype.Fp16 c > 0.0))
          Workloads.Networks.bert_base.Workloads.Networks.per_layer);
    case "attention bytes include the spilled intermediate" (fun () ->
        let c = Workloads.Gemm_configs.of_attention ~heads:1 ~seq:4 ~head_dim:2 in
        (* io: 4*2 + 2*4 + 4*2 + 4*2 = 32 elems; intermediate 2*16 = 32. *)
        check_float "bytes"
          (2.0 *. 64.0)
          (Workloads.Networks.component_bytes Tensor.Dtype.Fp16
             (Workloads.Networks.Attention c)));
  ]

let breakdown_tests =
  [
    case "percentages sum to 100" (fun () ->
        List.iter
          (fun net ->
            let b =
              Workloads.Breakdown.analyze net ~machine:Arch.Presets.nvidia_a100
            in
            check_float ~eps:1e-6 "sum" 100.0
              (b.Workloads.Breakdown.mi_pct +. b.Workloads.Breakdown.ci_pct
             +. b.Workloads.Breakdown.bmm_pct))
          Workloads.Networks.all);
    case "Table I shape: BMM exceeds the other MI operators" (fun () ->
        List.iter
          (fun net ->
            let b =
              Workloads.Breakdown.analyze net ~machine:Arch.Presets.nvidia_a100
            in
            check_true
              (net.Workloads.Networks.name ^ ": BMM > MI")
              (b.Workloads.Breakdown.bmm_pct > b.Workloads.Breakdown.mi_pct))
          [
            Workloads.Networks.transformer_base;
            Workloads.Networks.bert_base;
            Workloads.Networks.vit_huge;
          ]);
    case "BMM share is substantial (tens of percent)" (fun () ->
        let b =
          Workloads.Breakdown.analyze Workloads.Networks.transformer_base
            ~machine:Arch.Presets.nvidia_a100
        in
        check_true "over 20%" (b.Workloads.Breakdown.bmm_pct > 20.0));
  ]

let suites =
  [
    ("workloads.gemm_configs", gemm_config_tests);
    ("workloads.conv_configs", conv_config_tests);
    ("workloads.networks", network_tests);
    ("workloads.breakdown", breakdown_tests);
  ]
