open Helpers

(* Cross-product smoke matrix: every backend compiles, emits and
   numerically verifies every chain family.  Catches backend-specific
   regressions the targeted suites might miss. *)

let machines =
  [
    ("cpu", Arch.Presets.xeon_gold_6240);
    ("gpu", Arch.Presets.nvidia_a100);
    ("npu", Arch.Presets.ascend_910);
  ]

let small_chains () =
  [
    ("gemm", small_gemm_chain ());
    ("gemm+softmax", small_gemm_chain ~softmax:true ());
    ("conv+relu", small_conv_chain ~relu:true ());
    ( "gemm3",
      Ir.Chain.batch_gemm_chain3 ~name:"m3" ~batch:2 ~m:8 ~k:4 ~l:6 ~n:4
        ~p:3 () );
    ( "single-conv",
      Ir.Chain.single_conv2d ~name:"sc" ~batch:1 ~ic:2 ~h:8 ~w:8 ~oc:3 ~k:3
        ~st:1 ~relu:true () );
  ]

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let tests =
  List.concat_map
    (fun (mname, machine) ->
      List.map
        (fun (cname, chain) ->
          slow_case
            (Printf.sprintf "%s x %s: compile, emit, verify" mname cname)
            (fun () ->
              let compiled = Chimera.Compiler.optimize ~machine chain in
              (* Emission is non-trivial and backend-flavoured. *)
              let src = Chimera.Compiler.source compiled in
              check_true "has source" (String.length src > 200);
              let marker =
                match machine.Arch.Machine.backend with
                | Arch.Machine.Cpu -> "vfmadd231ps"
                | Arch.Machine.Gpu -> "wmma::"
                | Arch.Machine.Npu -> "pragma='mad'"
              in
              check_true ("backend marker " ^ marker)
                (contains ~needle:marker src
                || contains ~needle:"naive vector loop" src);
              (* Estimation is finite and positive. *)
              let t = Chimera.Compiler.total_time_seconds compiled in
              check_true "finite positive time"
                (Float.is_finite t && t > 0.0);
              (* The simulator replays it. *)
              List.iter
                (fun (s : Sim.Trace.stats) ->
                  check_true "blocks visited" (s.blocks_visited >= 1))
                (Chimera.Compiler.measure compiled);
              (* And the numerics hold. *)
              let env = Sim.Exec.make_env chain ~seed:77 in
              Chimera.Compiler.run compiled env;
              let reference = Sim.Exec.make_env chain ~seed:77 in
              Sim.Exec.run_reference chain reference;
              check_true "numerics"
                (Sim.Exec.outputs_match ~rtol:1e-6 chain reference env)))
        (small_chains ()))
    machines

let suites = [ ("integration.matrix", tests) ]
