open Helpers

let gpu = Arch.Presets.nvidia_a100
let cpu = Arch.Presets.xeon_gold_6240

let tests =
  [
    slow_case "advises fusing the attention chain (memory-bound consumer)"
      (fun () ->
        let chain =
          Workloads.Gemm_configs.chain
            (Option.get (Workloads.Gemm_configs.by_name "G2"))
        in
        let v = Chimera.Advisor.assess ~machine:cpu chain in
        check_true "fuse" v.Chimera.Advisor.fuse;
        check_true "speedup > 1.5" (v.Chimera.Advisor.speedup > 1.5);
        check_float ~eps:1e-9 "no recomputation for GEMMs" 1.0
          v.Chimera.Advisor.recompute_ratio;
        (* Both BMM stages are memory-bound at this shape. *)
        List.iter
          (fun (s : Chimera.Advisor.boundedness_summary) ->
            check_true (s.stage ^ " memory-bound")
              (s.boundedness = Arch.Roofline.Memory_bound))
          v.Chimera.Advisor.stages);
    slow_case "C1's pointwise consumer is memory-bound: fuse" (fun () ->
        let chain =
          Workloads.Conv_configs.chain ~relu:true
            (Option.get (Workloads.Conv_configs.by_name "C1"))
        in
        let v = Chimera.Advisor.assess ~machine:gpu chain in
        check_true "fuse" v.Chimera.Advisor.fuse;
        let consumer = List.nth v.Chimera.Advisor.stages 1 in
        check_true "consumer memory-bound"
          (consumer.boundedness = Arch.Roofline.Memory_bound));
    slow_case "C6's 3x3 consumer is compute-bound with heavy recomputation"
      (fun () ->
        let chain =
          Workloads.Conv_configs.chain ~relu:true
            (Option.get (Workloads.Conv_configs.by_name "C6"))
        in
        let v = Chimera.Advisor.assess ~machine:gpu chain in
        let consumer = List.nth v.Chimera.Advisor.stages 1 in
        check_true "consumer compute-bound"
          (consumer.boundedness = Arch.Roofline.Compute_bound);
        check_true "recomputation > 50%"
          (v.Chimera.Advisor.recompute_ratio > 1.5);
        (* The paper: no speedup for C6 over good unfused kernels; our
           estimate should show at most a marginal gain. *)
        check_true "marginal at best" (v.Chimera.Advisor.speedup < 2.0));
    case "explain mentions the verdict and the consumer" (fun () ->
        let chain = small_gemm_chain () in
        let v = Chimera.Advisor.assess ~machine:cpu chain in
        let text = Chimera.Advisor.explain v in
        check_true "mentions consumer"
          (let needle = "gemm2" in
           let nl = String.length needle and hl = String.length text in
           let rec go i = i + nl <= hl && (String.sub text i nl = needle || go (i + 1)) in
           go 0));
  ]

let suites = [ ("chimera.advisor", tests) ]
