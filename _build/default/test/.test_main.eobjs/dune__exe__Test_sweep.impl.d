test/test_sweep.ml: Analytical Arch Chimera Codegen Helpers Ir List Sim Workloads
