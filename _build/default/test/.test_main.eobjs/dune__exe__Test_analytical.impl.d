test/test_analytical.ml: Alcotest Analytical Arch Float Helpers Ir List Printf String Util
