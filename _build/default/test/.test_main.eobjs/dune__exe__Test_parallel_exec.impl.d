test/test_parallel_exec.ml: Analytical Helpers Ir List Printf Sim String
