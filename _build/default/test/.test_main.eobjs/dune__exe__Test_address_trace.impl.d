test/test_address_trace.ml: Alcotest Analytical Arch Helpers Ir List Printf Sim
