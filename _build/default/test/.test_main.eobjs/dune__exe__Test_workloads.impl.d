test/test_workloads.ml: Alcotest Arch Helpers Ir List Option Tensor Workloads
