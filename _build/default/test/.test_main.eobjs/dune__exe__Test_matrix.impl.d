test/test_matrix.ml: Arch Chimera Float Helpers Ir List Printf Sim String
