test/test_properties.ml: Analytical Arch Array Format Ir List Printf QCheck QCheck_alcotest Sim Util
