test/test_chimera.ml: Alcotest Analytical Arch Chimera Codegen Helpers Ir List Microkernel String Util
