test/helpers.ml: Alcotest Analytical Ir
