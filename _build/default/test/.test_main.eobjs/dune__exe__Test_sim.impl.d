test/test_sim.ml: Analytical Arch Chimera Float Helpers Ir List Printf Sim
