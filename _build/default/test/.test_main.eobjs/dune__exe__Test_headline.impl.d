test/test_headline.ml: Analytical Arch Baselines Chimera Graph Helpers Ir List Option Printf Sim Util Workloads
