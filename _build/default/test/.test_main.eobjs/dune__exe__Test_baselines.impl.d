test/test_baselines.ml: Arch Baselines Chimera Helpers Ir List Option Workloads
