test/test_exec.ml: Analytical Arch Chimera Helpers Ir List Printf Sim String Tensor
