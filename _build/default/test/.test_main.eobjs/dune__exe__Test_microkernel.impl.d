test/test_microkernel.ml: Alcotest Arch Array Helpers List Microkernel Option Printf String
