test/test_graph.ml: Alcotest Arch Chimera Float Graph Helpers Ir List Result Sim
