test/test_ir.ml: Alcotest Format Helpers Ir List Tensor
