test/test_util.ml: Alcotest Array Fun Helpers List String Util
