test/test_chain3.ml: Alcotest Analytical Arch Chimera Helpers Ir List Printf Sim String
