test/test_arch.ml: Arch Helpers List
