test/test_tensor.ml: Alcotest Array Helpers List Option Tensor Util
