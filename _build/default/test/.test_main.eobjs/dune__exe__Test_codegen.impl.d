test/test_codegen.ml: Alcotest Analytical Arch Codegen Helpers Ir List Microkernel String
