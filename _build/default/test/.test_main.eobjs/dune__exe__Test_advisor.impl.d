test/test_advisor.ml: Arch Chimera Helpers List Option String Workloads
