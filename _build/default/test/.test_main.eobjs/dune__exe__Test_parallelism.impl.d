test/test_parallelism.ml: Alcotest Analytical Arch Array Helpers Ir List Microkernel
