open Helpers

(* Three-operator chains: Section IV-B's "for more compute-intensive
   operators, the analysis method remains similar", exercised for real:
   Algorithm 1, the planner, the executor and the code generator must
   all handle G = ((A x B) x D) x F unchanged. *)

let chain3 () =
  Ir.Chain.batch_gemm_chain3 ~name:"chain3" ~batch:2 ~m:10 ~k:4 ~l:8 ~n:6
    ~p:5 ()

let big_chain3 () =
  Ir.Chain.batch_gemm_chain3 ~name:"chain3-big" ~batch:4 ~m:256 ~k:64 ~l:256
    ~n:64 ~p:64 ()

let structure_tests =
  [
    case "three stages, two intermediates" (fun () ->
        let chain = chain3 () in
        check_int "stages" 3 (Ir.Chain.stage_count chain);
        Alcotest.(check (list string))
          "intermediates" [ "C"; "E" ]
          (Ir.Chain.intermediate_names chain);
        Alcotest.(check (list string))
          "io"
          [ "A"; "B"; "D"; "F"; "G" ]
          (Ir.Chain.io_names chain));
    case "private axes across three stages" (fun () ->
        let chain = chain3 () in
        check_true "k private to gemm1" (Ir.Chain.axis_is_private chain "k");
        check_true "p private to gemm3" (Ir.Chain.axis_is_private chain "p");
        check_false "l shared by 1 and 2" (Ir.Chain.axis_is_private chain "l");
        check_false "n shared by 2 and 3" (Ir.Chain.axis_is_private chain "n"));
    case "the reorder space is 5! with the batch pinned" (fun () ->
        check_int "120 orders" 120
          (Analytical.Permutations.count (big_chain3 ())));
  ]

let movement_tests =
  [
    case "intermediates stay free through both hand-offs" (fun () ->
        let chain = big_chain3 () in
        let perm = [ "b"; "m"; "l"; "k"; "n"; "p" ] in
        let tiling =
          Analytical.Tiling.make chain
            [ ("m", 64); ("k", 64); ("l", 64); ("n", 64); ("p", 64) ]
        in
        let r = Analytical.Movement.analyze chain ~perm ~tiling in
        List.iter
          (fun name ->
            let pt =
              List.find
                (fun (p : Analytical.Movement.per_tensor) -> p.tensor = name)
                r.Analytical.Movement.per_tensor
            in
            check_float ("no movement for " ^ name) 0.0 pt.movement_bytes)
          [ "C"; "E" ]);
    case "producer-private k never moves the third stage's tensors"
      (fun () ->
        let chain = big_chain3 () in
        let perm = [ "b"; "m"; "n"; "k"; "l"; "p" ] in
        let dv tensor tiling =
          (Analytical.Movement.analyze chain ~perm ~tiling)
            .Analytical.Movement.per_tensor
          |> List.find (fun (p : Analytical.Movement.per_tensor) ->
                 p.tensor = tensor)
          |> fun p -> p.movement_bytes
        in
        let base =
          Analytical.Tiling.make chain
            [ ("m", 64); ("k", 64); ("l", 64); ("n", 64); ("p", 64) ]
        in
        let small_k = Analytical.Tiling.set base "k" 16 in
        check_float "F unaffected by T_k" (dv "F" base) (dv "F" small_k);
        check_float "G unaffected by T_k" (dv "G" base) (dv "G" small_k));
    case "MU is the max over the three stages" (fun () ->
        let chain = big_chain3 () in
        let perm = [ "b"; "m"; "l"; "k"; "n"; "p" ] in
        let tiling =
          Analytical.Tiling.make chain
            [ ("m", 32); ("k", 64); ("l", 32); ("n", 64); ("p", 16) ]
        in
        let r = Analytical.Movement.analyze chain ~perm ~tiling in
        check_int "three per-op entries" 3
          (List.length r.Analytical.Movement.per_op_mu);
        let max_op =
          List.fold_left
            (fun acc (_, mu) -> max acc mu)
            0 r.Analytical.Movement.per_op_mu
        in
        check_int "max rule" max_op r.Analytical.Movement.mu_bytes);
  ]

let planner_tests =
  [
    case "the planner fuses all three GEMMs in one pass over the IO"
      (fun () ->
        let chain = big_chain3 () in
        let plan =
          Analytical.Planner.optimize chain ~capacity_bytes:(1024 * 1024) ()
        in
        (* Everything fits: one pass over A,B,D,F,G and nothing else. *)
        check_true "minimal movement"
          (plan.Analytical.Planner.movement.Analytical.Movement.dv_bytes
          <= 1.01 *. Ir.Chain.io_bytes chain);
        check_true "far below unfused"
          (plan.Analytical.Planner.movement.Analytical.Movement.dv_bytes
          < 0.5 *. Ir.Chain.unfused_dram_bytes chain));
  ]

let exec_tests =
  [
    case "fused three-GEMM execution matches the reference" (fun () ->
        let chain = chain3 () in
        let ref_env = Sim.Exec.make_env chain ~seed:42 in
        Sim.Exec.run_reference chain ref_env;
        let tilings =
          [
            Analytical.Tiling.make chain
              [ ("b", 1); ("m", 4); ("k", 2); ("l", 3); ("n", 3); ("p", 2) ];
            Analytical.Tiling.full chain;
            Analytical.Tiling.ones chain;
          ]
        in
        let perms =
          [
            [ "b"; "m"; "k"; "l"; "n"; "p" ];
            [ "b"; "p"; "n"; "l"; "k"; "m" ];
            [ "k"; "n"; "b"; "m"; "p"; "l" ];
          ]
        in
        List.iter
          (fun perm ->
            List.iter
              (fun tiling ->
                let env = Sim.Exec.make_env chain ~seed:42 in
                Sim.Exec.run_fused chain ~perm ~tiling env;
                check_true
                  (Printf.sprintf "perm %s" (String.concat "" perm))
                  (Sim.Exec.outputs_match ~rtol:1e-6 chain ref_env env))
              tilings)
          perms);
    case "full Chimera compilation of a three-GEMM chain runs" (fun () ->
        let chain = chain3 () in
        let compiled =
          Chimera.Compiler.optimize ~machine:Arch.Presets.xeon_gold_6240 chain
        in
        let env = Sim.Exec.make_env chain ~seed:9 in
        Chimera.Compiler.run compiled env;
        let ref_env = Sim.Exec.make_env chain ~seed:9 in
        Sim.Exec.run_reference chain ref_env;
        check_true "numerics"
          (Sim.Exec.outputs_match ~rtol:1e-6 chain ref_env env);
        (* And the unfused split yields three kernels. *)
        check_int "three unfused kernels" 3
          (List.length (Chimera.Compiler.split_stages chain)));
    case "codegen emits three interleaved stages" (fun () ->
        let chain = big_chain3 () in
        let compiled =
          Chimera.Compiler.optimize ~machine:Arch.Presets.xeon_gold_6240 chain
        in
        let src = Chimera.Compiler.source compiled in
        List.iter
          (fun needle ->
            let nl = String.length needle and hl = String.length src in
            let rec go i =
              i + nl <= hl && (String.sub src i nl = needle || go (i + 1))
            in
            check_true ("mentions " ^ needle) (go 0))
          [ "gemm1"; "gemm2"; "gemm3" ]);
  ]

let suites =
  [
    ("chain3.structure", structure_tests);
    ("chain3.movement", movement_tests);
    ("chain3.planner", planner_tests);
    ("chain3.exec", exec_tests);
  ]
