(* Shared fixtures and Alcotest shortcuts for the Chimera test suite. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let check_true msg cond = Alcotest.(check bool) msg true cond
let check_false msg cond = Alcotest.(check bool) msg false cond

let check_raises_invalid msg f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" msg
  | exception Invalid_argument _ -> ()

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

(* A small GEMM chain that exercises every code path cheaply. *)
let small_gemm_chain ?(softmax = false) () =
  Ir.Chain.batch_gemm_chain ~name:"small-gemm" ~batch:2 ~m:12 ~n:6 ~k:5 ~l:10
    ~softmax ()

(* The paper's running example (Figure 2): one batch, M=512 N=64 K=64
   L=512. *)
let figure2_chain () =
  Ir.Chain.batch_gemm_chain ~name:"figure2" ~batch:1 ~m:512 ~n:64 ~k:64 ~l:512
    ()

let small_conv_chain ?(relu = false) () =
  Ir.Chain.conv_chain ~name:"small-conv" ~batch:2 ~ic:3 ~h:9 ~w:9 ~oc1:4
    ~oc2:3 ~st1:2 ~st2:1 ~k1:3 ~k2:3 ~relu ()

let mlkn = [ "b"; "m"; "l"; "k"; "n" ]
let mnkl = [ "b"; "m"; "n"; "k"; "l" ]

let tiling_64 chain =
  Analytical.Tiling.make chain
    [ ("b", 1); ("m", 64); ("n", 64); ("k", 64); ("l", 64) ]
