open Helpers

let axis_tests =
  [
    case "make validates" (fun () ->
        check_raises_invalid "empty name" (fun () -> Ir.Axis.make "" 4);
        check_raises_invalid "zero extent" (fun () -> Ir.Axis.make "m" 0));
    case "find and names" (fun () ->
        let axes = [ Ir.Axis.make "m" 4; Ir.Axis.make "n" 8 ] in
        check_int "find" 8 (Ir.Axis.find axes "n").Ir.Axis.extent;
        check_true "find_opt none" (Ir.Axis.find_opt axes "z" = None);
        Alcotest.(check (list string)) "names" [ "m"; "n" ] (Ir.Axis.names axes));
    case "equal" (fun () ->
        check_true "eq" (Ir.Axis.equal (Ir.Axis.make "m" 4) (Ir.Axis.make "m" 4));
        check_false "extent differs"
          (Ir.Axis.equal (Ir.Axis.make "m" 4) (Ir.Axis.make "m" 5)));
  ]

let access_tests =
  [
    case "term validates" (fun () ->
        check_raises_invalid "coeff 0" (fun () -> Ir.Access.term "m" 0);
        check_raises_invalid "empty axis" (fun () -> Ir.Access.term "" 1));
    case "simple access" (fun () ->
        let a = Ir.Access.simple [ "m"; "k" ] in
        Alcotest.(check (list string)) "axes" [ "m"; "k" ] (Ir.Access.axes_used a);
        check_true "uses m" (Ir.Access.uses_axis a "m");
        check_false "not n" (Ir.Access.uses_axis a "n"));
    case "axes_used dedups in order" (fun () ->
        let a =
          [
            Ir.Access.dim [ Ir.Access.term "oh" 2; Ir.Access.term "kh" 1 ];
            Ir.Access.dim [ Ir.Access.term "oh" 1 ];
          ]
        in
        Alcotest.(check (list string)) "axes" [ "oh"; "kh" ] (Ir.Access.axes_used a));
    case "tile_extent of plain dims" (fun () ->
        let a = Ir.Access.simple [ "m"; "k" ] in
        let tile_of = function "m" -> 4 | "k" -> 8 | _ -> 1 in
        Alcotest.(check (list int)) "spans" [ 4; 8 ]
          (Ir.Access.tile_extent a ~tile_of));
    case "tile_extent expands windows" (fun () ->
        (* conv input: oh*2 + kh: span = 2*(T_oh-1) + (T_kh-1) + 1. *)
        let a =
          [ Ir.Access.dim [ Ir.Access.term "oh" 2; Ir.Access.term "kh" 1 ] ]
        in
        let tile_of = function "oh" -> 3 | "kh" -> 3 | _ -> 1 in
        Alcotest.(check (list int)) "halo" [ 7 ] (Ir.Access.tile_extent a ~tile_of));
    case "offsets shift eval, not span" (fun () ->
        let a =
          [
            Ir.Access.dim ~offset:(-1)
              [ Ir.Access.term "oh" 2; Ir.Access.term "kh" 1 ];
          ]
        in
        let value_of = function "oh" -> 5 | "kh" -> 0 | _ -> 0 in
        Alcotest.(check (array int)) "eval" [| 9 |] (Ir.Access.eval a ~value_of);
        let tile_of = function _ -> 1 in
        Alcotest.(check (list int)) "span 1" [ 1 ]
          (Ir.Access.tile_extent a ~tile_of));
    case "eval of broadcast dim" (fun () ->
        let a = [ Ir.Access.dim [] ] in
        Alcotest.(check (array int)) "zero" [| 0 |]
          (Ir.Access.eval a ~value_of:(fun _ -> 9)));
    case "pp renders windows" (fun () ->
        let a =
          [
            Ir.Access.dim [ Ir.Access.term "m" 1 ];
            Ir.Access.dim ~offset:(-1)
              [ Ir.Access.term "oh" 2; Ir.Access.term "kh" 1 ];
          ]
        in
        check_string "render" "[m][oh*2+kh-1]" (Format.asprintf "%a" Ir.Access.pp a));
  ]

let ref_m_k dims =
  Ir.Operator.tensor_ref ~tensor:"A" ~dims ~access:(Ir.Access.simple [ "m"; "k" ]) ()

let operator_tests =
  [
    case "tensor_ref validates rank" (fun () ->
        check_raises_invalid "rank" (fun () ->
            Ir.Operator.tensor_ref ~tensor:"A" ~dims:[ 4 ]
              ~access:(Ir.Access.simple [ "m"; "k" ])
              ()));
    case "make checks reduction subset" (fun () ->
        let a = ref_m_k [ 4; 8 ] in
        let c =
          Ir.Operator.tensor_ref ~tensor:"C" ~dims:[ 4 ]
            ~access:(Ir.Access.simple [ "m" ]) ()
        in
        check_raises_invalid "unknown reduction" (fun () ->
            Ir.Operator.make ~name:"op" ~axes:[ "m"; "k" ]
              ~reduction_axes:[ "z" ] ~inputs:[ a ] ~output:c ()));
    case "make rejects output on reduction axis" (fun () ->
        let a = ref_m_k [ 4; 8 ] in
        check_raises_invalid "output uses k" (fun () ->
            Ir.Operator.make ~name:"op" ~axes:[ "m"; "k" ]
              ~reduction_axes:[ "k" ] ~inputs:[ a ] ~output:(ref_m_k [ 4; 8 ])
              ()));
    case "make rejects out-of-nest axes" (fun () ->
        let a = ref_m_k [ 4; 8 ] in
        let c =
          Ir.Operator.tensor_ref ~tensor:"C" ~dims:[ 4 ]
            ~access:(Ir.Access.simple [ "m" ]) ()
        in
        check_raises_invalid "k not in axes" (fun () ->
            Ir.Operator.make ~name:"op" ~axes:[ "m" ] ~reduction_axes:[]
              ~inputs:[ a ] ~output:c ()));
    case "flops counts the loop nest" (fun () ->
        let chain = small_gemm_chain () in
        let stage = List.hd chain.Ir.Chain.stages in
        let extent_of = Ir.Chain.extent_of chain in
        (* gemm1: 2 * b*m*l*k = 2 * 2*12*10*5. *)
        check_float "flops" 2400.0
          (Ir.Operator.flops stage.Ir.Chain.op ~extent_of));
    case "tile footprint basics" (fun () ->
        let a = ref_m_k [ 100; 100 ] in
        let tile_of = function "m" -> 4 | "k" -> 8 | _ -> 1 in
        check_int "4*8 elems" 32 (Ir.Operator.tile_footprint_elems a ~tile_of);
        check_int "fp16 bytes" 64 (Ir.Operator.tile_footprint_bytes a ~tile_of));
    case "tile footprint capped at declared dims" (fun () ->
        let a =
          Ir.Operator.tensor_ref ~tensor:"I" ~dims:[ 5 ]
            ~access:
              [ Ir.Access.dim [ Ir.Access.term "oh" 2; Ir.Access.term "kh" 1 ] ]
            ()
        in
        let tile_of = function "oh" -> 10 | "kh" -> 3 | _ -> 1 in
        (* span = 2*9 + 2 + 1 = 21, capped at 5. *)
        check_int "capped" 5 (Ir.Operator.tile_footprint_elems a ~tile_of));
    case "tensor_bytes" (fun () ->
        check_int "fp16 4x8" 64 (Ir.Operator.tensor_bytes (ref_m_k [ 4; 8 ])));
  ]

let gemm_chain_tests =
  [
    case "axes of the GEMM chain" (fun () ->
        let chain = figure2_chain () in
        Alcotest.(check (list string))
          "axes"
          [ "b"; "m"; "n"; "k"; "l" ]
          (Ir.Axis.names chain.Ir.Chain.axes));
    case "io and intermediate tensors" (fun () ->
        let chain = figure2_chain () in
        Alcotest.(check (list string))
          "io" [ "A"; "B"; "D"; "E" ] (Ir.Chain.io_names chain);
        Alcotest.(check (list string))
          "intermediate" [ "C" ]
          (Ir.Chain.intermediate_names chain);
        check_true "C is intermediate" (Ir.Chain.is_intermediate chain "C");
        check_false "A is not" (Ir.Chain.is_intermediate chain "A"));
    case "private axes (observation 3)" (fun () ->
        let chain = figure2_chain () in
        check_true "k private to gemm1" (Ir.Chain.axis_is_private chain "k");
        check_true "n private to gemm2" (Ir.Chain.axis_is_private chain "n");
        check_false "m shared" (Ir.Chain.axis_is_private chain "m");
        check_false "l shared" (Ir.Chain.axis_is_private chain "l"));
    case "producer_stage" (fun () ->
        let chain = figure2_chain () in
        check_true "C from stage 0" (Ir.Chain.producer_stage chain "C" = Some 0);
        check_true "E from stage 1" (Ir.Chain.producer_stage chain "E" = Some 1);
        check_true "A unproduced" (Ir.Chain.producer_stage chain "A" = None));
    case "flops: fused equals standalone for GEMM chains" (fun () ->
        let chain = figure2_chain () in
        check_float "equal"
          (Ir.Chain.standalone_flops chain)
          (Ir.Chain.fused_flops chain));
    case "flops formula" (fun () ->
        let chain = figure2_chain () in
        (* 2*M*L*K + 2*M*N*L = 2 * 512*512*64 + 2 * 512*64*512 = 67108864. *)
        check_float "value" 67108864.0 (Ir.Chain.fused_flops chain));
    case "softmax adds epilogue flops" (fun () ->
        let plain = figure2_chain () in
        let soft =
          Ir.Chain.batch_gemm_chain ~name:"s" ~batch:1 ~m:512 ~n:64 ~k:64
            ~l:512 ~softmax:true ()
        in
        check_float "3 per C element"
          (Ir.Chain.fused_flops plain +. (3.0 *. 512.0 *. 512.0))
          (Ir.Chain.fused_flops soft));
    case "io_bytes and unfused traffic" (fun () ->
        let chain = figure2_chain () in
        (* A,B,D,E each 512*64 fp16 = 65536 B. *)
        check_float "io" 262144.0 (Ir.Chain.io_bytes chain);
        (* plus C written + read: 2 * 512*512*2 B. *)
        check_float "unfused" 1310720.0 (Ir.Chain.unfused_dram_bytes chain));
    case "dtype override propagates" (fun () ->
        let chain =
          Ir.Chain.batch_gemm_chain ~name:"f32" ~batch:1 ~m:8 ~n:8 ~k:8 ~l:8
            ~dtype:Tensor.Dtype.Fp32 ()
        in
        check_float "io doubles" (8.0 *. 8.0 *. 4.0 *. 4.0)
          (Ir.Chain.io_bytes chain));
    case "tensor_names and find_ref" (fun () ->
        let chain = figure2_chain () in
        Alcotest.(check (list string))
          "order" [ "A"; "B"; "C"; "D"; "E" ]
          (Ir.Chain.tensor_names chain);
        check_int "C dims"
          (512 * 512)
          (List.fold_left ( * ) 1 (Ir.Chain.find_ref chain "C").Ir.Operator.dims));
  ]

let conv_chain_tests =
  [
    case "conv_out formula" (fun () ->
        check_int "k3 s2 h112" 56 (Ir.Chain.conv_out ~h:112 ~k:3 ~st:2);
        check_int "k1 s1 h56" 56 (Ir.Chain.conv_out ~h:56 ~k:1 ~st:1);
        check_int "k3 s1 same" 28 (Ir.Chain.conv_out ~h:28 ~k:3 ~st:1);
        check_int "k3 s4 h227" 57 (Ir.Chain.conv_out ~h:227 ~k:3 ~st:4));
    case "chain structure" (fun () ->
        let chain = small_conv_chain () in
        check_int "two stages" 2 (Ir.Chain.stage_count chain);
        Alcotest.(check (list string))
          "io"
          [ "I"; "W1"; "W2"; "O2" ]
          (Ir.Chain.io_names chain);
        Alcotest.(check (list string))
          "intermediate" [ "O1" ]
          (Ir.Chain.intermediate_names chain));
    case "fused conv has up to ten dimensions" (fun () ->
        let chain = small_conv_chain () in
        let fused_axes =
          List.filter
            (fun a ->
              List.exists
                (fun (s : Ir.Chain.stage) -> Ir.Operator.uses_axis s.op a)
                chain.Ir.Chain.stages)
            (Ir.Axis.names chain.Ir.Chain.axes)
        in
        check_int "ten" 10 (List.length fused_axes));
    case "recomputation: fused flops exceed standalone" (fun () ->
        (* 3x3 second conv at stride 1 overlaps producer windows. *)
        let chain = small_conv_chain () in
        check_true "recompute"
          (Ir.Chain.fused_flops chain > Ir.Chain.standalone_flops chain));
    case "pointwise second conv avoids recomputation" (fun () ->
        let chain =
          Ir.Chain.conv_chain ~name:"pw" ~ic:4 ~h:8 ~w:8 ~oc1:4 ~oc2:4 ~st1:1
            ~st2:1 ~k1:3 ~k2:1 ()
        in
        check_float "equal"
          (Ir.Chain.standalone_flops chain)
          (Ir.Chain.fused_flops chain));
    case "oc1 is shared between the convs" (fun () ->
        let chain = small_conv_chain () in
        check_false "oc1 not private" (Ir.Chain.axis_is_private chain "oc1");
        check_true "ic private to conv1" (Ir.Chain.axis_is_private chain "ic");
        check_true "oc2 private to conv2" (Ir.Chain.axis_is_private chain "oc2"));
    case "intermediate extents follow conv_out" (fun () ->
        let chain =
          Ir.Chain.conv_chain ~name:"c" ~ic:3 ~h:13 ~w:9 ~oc1:4 ~oc2:2 ~st1:2
            ~st2:1 ~k1:3 ~k2:3 ()
        in
        let o1 = Ir.Chain.find_ref chain "O1" in
        Alcotest.(check (list int))
          "dims"
          [ 1; 4; Ir.Chain.conv_out ~h:13 ~k:3 ~st:2;
            Ir.Chain.conv_out ~h:9 ~k:3 ~st:2 ]
          o1.Ir.Operator.dims);
  ]

let validation_tests =
  [
    case "make rejects empty chains" (fun () ->
        check_raises_invalid "no stages" (fun () ->
            Ir.Chain.make ~name:"x" ~axes:[ Ir.Axis.make "m" 2 ] ~stages:[]));
    case "make rejects broken linkage" (fun () ->
        let chain = figure2_chain () in
        match chain.Ir.Chain.stages with
        | [ s1; s2 ] ->
            (* Reverse the stages: gemm1 no longer feeds gemm2. *)
            check_raises_invalid "reversed" (fun () ->
                Ir.Chain.make ~name:"bad" ~axes:chain.Ir.Chain.axes
                  ~stages:[ s2; s1 ])
        | _ -> Alcotest.fail "expected two stages");
    case "make rejects unknown axes" (fun () ->
        let chain = figure2_chain () in
        check_raises_invalid "missing axis" (fun () ->
            Ir.Chain.make ~name:"bad"
              ~axes:[ Ir.Axis.make "m" 512 ]
              ~stages:chain.Ir.Chain.stages));
    case "extent_of unknown axis raises" (fun () ->
        let chain = figure2_chain () in
        check_true "raises"
          (match Ir.Chain.extent_of chain "zz" with
          | _ -> false
          | exception Not_found -> true));
  ]

let suites =
  [
    ("ir.axis", axis_tests);
    ("ir.access", access_tests);
    ("ir.operator", operator_tests);
    ("ir.gemm_chain", gemm_chain_tests);
    ("ir.conv_chain", conv_chain_tests);
    ("ir.validation", validation_tests);
  ]
