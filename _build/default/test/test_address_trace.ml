open Helpers

let address_tests =
  [
    case "tensor layouts are disjoint and aligned" (fun () ->
        let chain = small_gemm_chain () in
        let bases = Sim.Address_trace.tensor_base_addresses chain in
        check_int "five tensors" 5 (List.length bases);
        let sorted = List.sort (fun (_, a) (_, b) -> compare a b) bases in
        let rec disjoint = function
          | (na, a) :: ((_, b) :: _ as rest) ->
              let bytes =
                Ir.Operator.tensor_bytes (Ir.Chain.find_ref chain na)
              in
              check_true (na ^ " fits before next") (a + bytes <= b);
              check_int (na ^ " aligned") 0 (a mod 4096);
              disjoint rest
          | _ -> ()
        in
        disjoint sorted);
    case "a huge cache leaves only compulsory line fills" (fun () ->
        let chain = small_gemm_chain () in
        let perm = Analytical.Movement.fused_axes chain in
        let tiling = Analytical.Tiling.full chain in
        let stats =
          Sim.Address_trace.measure chain
            ~capacity_bytes:(1024 * 1024)
            ~perm ~tiling ()
        in
        (* Every tensor touched; compulsory fills are bounded by the
           padded layout: between total tensor bytes and the aligned
           footprint. *)
        let total =
          List.fold_left
            (fun acc name ->
              acc + Ir.Operator.tensor_bytes (Ir.Chain.find_ref chain name))
            0
            (Ir.Chain.tensor_names chain)
        in
        check_true "at least the data"
          (stats.Sim.Address_trace.bytes_in >= float_of_int total *. 0.9);
        check_true "no capacity misses"
          (stats.Sim.Address_trace.bytes_in
          <= float_of_int total +. (5.0 *. 2.0 *. 64.0)));
    case "a tiny cache forces streaming" (fun () ->
        let chain =
          Ir.Chain.batch_gemm_chain ~name:"stream" ~batch:1 ~m:64 ~n:64 ~k:64
            ~l:64 ()
        in
        let perm = Analytical.Movement.fused_axes chain in
        let tiling =
          Analytical.Tiling.make chain
            [ ("m", 8); ("n", 8); ("k", 8); ("l", 8) ]
        in
        let small =
          Sim.Address_trace.measure chain ~capacity_bytes:2048 ~perm ~tiling ()
        in
        let big =
          Sim.Address_trace.measure chain
            ~capacity_bytes:(1024 * 1024)
            ~perm ~tiling ()
        in
        check_true "smaller cache moves more"
          (small.Sim.Address_trace.bytes_in > big.Sim.Address_trace.bytes_in);
        check_true "hit rate drops"
          (small.Sim.Address_trace.hit_rate < big.Sim.Address_trace.hit_rate));
    case "tile and line models agree on streaming traffic" (fun () ->
        let chain =
          Ir.Chain.batch_gemm_chain ~name:"agree" ~batch:1 ~m:128 ~n:128
            ~k:128 ~l:128 ()
        in
        let perm = [ "b"; "m"; "l"; "k"; "n" ] in
        let tiling =
          Analytical.Tiling.make chain
            [ ("m", 32); ("n", 32); ("k", 32); ("l", 32) ]
        in
        let capacity = 64 * 1024 in
        let tile =
          (Sim.Trace.measure_chain chain
             ~levels:
               [
                 Arch.Level.make ~name:"L" ~capacity_bytes:capacity
                   ~link_bandwidth_gbps:100.0 ();
               ]
             ~perm ~tiling ~spill_intermediates:true ())
            .Sim.Trace.dram_bytes
        in
        let line =
          (Sim.Address_trace.measure chain ~capacity_bytes:capacity ~perm
             ~tiling ())
            .Sim.Address_trace.bytes_in
        in
        let ratio = tile /. line in
        check_true
          (Printf.sprintf "same regime (%.2f)" ratio)
          (ratio > 0.5 && ratio < 2.0));
    case "conv windows touch clipped boxes only" (fun () ->
        let chain = small_conv_chain () in
        let perm = Analytical.Movement.fused_axes chain in
        let tiling = Analytical.Tiling.full chain in
        (* A full-problem block with a huge cache: fills are bounded by
           the tensors themselves (padding clipped away). *)
        let stats =
          Sim.Address_trace.measure chain
            ~capacity_bytes:(4 * 1024 * 1024)
            ~perm ~tiling ()
        in
        let total =
          List.fold_left
            (fun acc name ->
              acc + Ir.Operator.tensor_bytes (Ir.Chain.find_ref chain name))
            0
            (Ir.Chain.tensor_names chain)
        in
        check_true "bounded by layout"
          (stats.Sim.Address_trace.bytes_in
          <= float_of_int total +. (6.0 *. 128.0)));
  ]

let chain_builder_tests =
  [
    case "single_conv2d shapes and epilogue" (fun () ->
        let chain =
          Ir.Chain.single_conv2d ~name:"c" ~batch:2 ~ic:3 ~h:12 ~w:10 ~oc:4
            ~k:3 ~st:2 ~relu:true ()
        in
        check_int "one stage" 1 (Ir.Chain.stage_count chain);
        Alcotest.(check (list string))
          "io" [ "I"; "W"; "O" ] (Ir.Chain.io_names chain);
        let o = Ir.Chain.find_ref chain "O" in
        Alcotest.(check (list int))
          "output dims"
          [ 2; 4; Ir.Chain.conv_out ~h:12 ~k:3 ~st:2;
            Ir.Chain.conv_out ~h:10 ~k:3 ~st:2 ]
          o.Ir.Operator.dims;
        check_true "relu"
          ((List.hd chain.Ir.Chain.stages).Ir.Chain.epilogue = Ir.Chain.Relu));
    case "single_conv2d executes correctly under blocking" (fun () ->
        let chain =
          Ir.Chain.single_conv2d ~name:"c" ~batch:1 ~ic:2 ~h:9 ~w:9 ~oc:3
            ~k:3 ~st:1 ~relu:true ()
        in
        let perm = Analytical.Movement.fused_axes chain in
        let tiling =
          Analytical.Tiling.make chain [ ("oc", 2); ("oh", 4); ("ow", 3) ]
        in
        let ref_env = Sim.Exec.make_env chain ~seed:5 in
        Sim.Exec.run_reference chain ref_env;
        let env = Sim.Exec.make_env chain ~seed:5 in
        Sim.Exec.run_fused chain ~perm ~tiling env;
        check_true "numerics"
          (Sim.Exec.outputs_match ~rtol:1e-6 chain ref_env env));
    case "with_epilogues replaces per stage" (fun () ->
        let chain = small_conv_chain () in
        let swapped =
          Ir.Chain.with_epilogues chain [ Ir.Chain.Relu; Ir.Chain.Identity ]
        in
        match swapped.Ir.Chain.stages with
        | [ s1; s2 ] ->
            check_true "stage1 relu" (s1.Ir.Chain.epilogue = Ir.Chain.Relu);
            check_true "stage2 identity"
              (s2.Ir.Chain.epilogue = Ir.Chain.Identity)
        | _ -> Alcotest.fail "two stages expected");
    case "with_epilogues validates arity" (fun () ->
        let chain = small_conv_chain () in
        check_raises_invalid "arity" (fun () ->
            ignore (Ir.Chain.with_epilogues chain [ Ir.Chain.Relu ])));
  ]

let suites =
  [
    ("sim.address_trace", address_tests);
    ("ir.chain_builders", chain_builder_tests);
  ]
