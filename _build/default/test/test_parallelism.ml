open Helpers

let tests =
  [
    case "GEMM chain: only b and m are safely parallel" (fun () ->
        let chain = figure2_chain () in
        Alcotest.(check (list string))
          "axes" [ "b"; "m" ]
          (Analytical.Parallelism.parallel_axes chain));
    case "conv chain: batch and output spatial dims" (fun () ->
        let chain = small_conv_chain () in
        Alcotest.(check (list string))
          "axes" [ "n"; "oh"; "ow" ]
          (Analytical.Parallelism.parallel_axes chain));
    case "single operator: every spatial loop" (fun () ->
        let chain =
          Ir.Chain.single_batch_gemm ~name:"s" ~batch:2 ~m:8 ~n:8 ~k:8 ()
        in
        Alcotest.(check (list string))
          "axes" [ "b"; "m"; "n" ]
          (Analytical.Parallelism.parallel_axes chain));
    case "three-GEMM chain: still b and m" (fun () ->
        let chain =
          Ir.Chain.batch_gemm_chain3 ~name:"c3" ~batch:2 ~m:8 ~k:4 ~l:4 ~n:4
            ~p:4 ()
        in
        Alcotest.(check (list string))
          "axes" [ "b"; "m" ]
          (Analytical.Parallelism.parallel_axes chain));
    case "task count multiplies parallel trips only" (fun () ->
        let chain = figure2_chain () in
        let tiling =
          Analytical.Tiling.make chain
            [ ("m", 128); ("n", 8); ("k", 8); ("l", 8) ]
        in
        (* b: 1 trip; m: 4 trips; n/k/l do not count. *)
        check_float "tasks" 4.0 (Analytical.Parallelism.task_count chain tiling));
    case "task weights reflect ragged edges" (fun () ->
        let chain = figure2_chain () in
        let tiling = Analytical.Tiling.make chain [ ("m", 200) ] in
        (* 512 = 200 + 200 + 112. *)
        Alcotest.(check (list (float 1e-9)))
          "weights" [ 200.0; 200.0; 112.0 ]
          (Analytical.Parallelism.task_weights chain tiling));
    case "efficiency: uniform tasks dividing cores are perfect" (fun () ->
        let chain = figure2_chain () in
        let tiling = Analytical.Tiling.make chain [ ("m", 128) ] in
        (* 4 uniform tasks on 4, 2, 1 cores. *)
        check_float ~eps:1e-9 "4 cores" 1.0
          (Analytical.Parallelism.efficiency chain tiling ~cores:4);
        check_float ~eps:1e-9 "2 cores" 1.0
          (Analytical.Parallelism.efficiency chain tiling ~cores:2);
        check_float ~eps:1e-9 "1 core" 1.0
          (Analytical.Parallelism.efficiency chain tiling ~cores:1));
    case "efficiency: 24 uniform tasks on 18 cores is 2/3" (fun () ->
        let chain =
          Ir.Chain.batch_gemm_chain ~name:"g" ~batch:24 ~m:8 ~n:8 ~k:8 ~l:8 ()
        in
        let tiling = Analytical.Tiling.make chain [ ("m", 8) ] in
        check_float ~eps:1e-9 "2/3" (24.0 /. 36.0)
          (Analytical.Parallelism.efficiency chain tiling ~cores:18));
    case "efficiency never exceeds 1" (fun () ->
        let chain = figure2_chain () in
        List.iter
          (fun tm ->
            let tiling = Analytical.Tiling.make chain [ ("m", tm) ] in
            let e = Analytical.Parallelism.efficiency chain tiling ~cores:18 in
            check_true "bounded" (e > 0.0 && e <= 1.0))
          [ 1; 3; 7; 64; 512 ]);
    case "huge task counts short-circuit to full occupancy" (fun () ->
        let chain =
          Ir.Chain.batch_gemm_chain ~name:"big" ~batch:64 ~m:4096 ~n:8 ~k:8
            ~l:8 ()
        in
        let tiling = Analytical.Tiling.make chain [ ("m", 4) ] in
        check_float "saturated" 1.0
          (Analytical.Parallelism.efficiency chain tiling ~cores:108));
  ]

let avx2_tests =
  [
    case "16 registers select (6, 2, 2)" (fun () ->
        let p = Microkernel.Cpu.params_avx2 in
        check_int "MI" 6 p.Microkernel.Cpu.mi;
        check_int "NI" 2 p.Microkernel.Cpu.ni;
        check_int "MII" 2 p.Microkernel.Cpu.mii);
    case "registering AVX2 swaps the substituted kernel" (fun () ->
        let r = Microkernel.Registry.default () in
        Microkernel.Registry.register r ~name:"matmul" Microkernel.Cpu.avx2_impl;
        let machine = Arch.Presets.xeon_gold_6240 in
        check_string "latest wins" "cpu.avx2.outer_product"
          (Microkernel.Registry.lower r ~name:"matmul" ~machine)
            .Microkernel.Kernel_sig.id);
    case "AVX2 semantics equal the reference" (fun () ->
        let m = 3 and n = 10 and k = 4 in
        let a = Array.init (m * k) float_of_int in
        let b = Array.init (k * n) (fun i -> float_of_int (i mod 7)) in
        let run impl =
          let c = Array.make (m * n) 0.0 in
          impl.Microkernel.Kernel_sig.execute ~m ~n ~k
            {
              Microkernel.Kernel_sig.a; a_off = 0; lda = k;
              b; b_off = 0; ldb = n;
              c; c_off = 0; ldc = n;
            };
          c
        in
        let avx2 = run Microkernel.Cpu.avx2_impl in
        let avx512 = run Microkernel.Cpu.impl in
        Array.iteri (fun i v -> check_float "same" v avx512.(i)) avx2);
    case "narrower registers mean lower asymptotic AI" (fun () ->
        let ai (p : Microkernel.Cpu.params) =
          float_of_int (p.mi * p.ni) /. float_of_int (p.mi + p.ni)
        in
        check_true "avx2 < avx512"
          (ai Microkernel.Cpu.params_avx2 < ai (Microkernel.Cpu.select_params ~vector_registers:32)));
  ]

let suites =
  [
    ("analytical.parallelism", tests);
    ("microkernel.avx2", avx2_tests);
  ]
