(* Validating the analytical data-movement model against the simulator
   (a small-scale Figure 8d).

   For a sweep of decomposition factors, compare the data movement
   volume Algorithm 1 predicts with the traffic an LRU memory hierarchy
   actually observes when the blocks execute, and report the fit.

   Run with:  dune exec examples/model_validation.exe *)

let () =
  let chain =
    Ir.Chain.batch_gemm_chain ~name:"validate" ~batch:1 ~m:512 ~n:512 ~k:512
      ~l:512 ()
  in
  let perm = [ "b"; "m"; "l"; "k"; "n" ] in
  let capacity = 128 * 1024 in
  let level =
    Arch.Level.make ~name:"L2" ~capacity_bytes:capacity
      ~link_bandwidth_gbps:2000.0 ()
  in
  let tile_sizes = [ 32; 64; 128; 256 ] in
  let samples =
    List.concat_map
      (fun tm ->
        List.concat_map
          (fun tl ->
            List.filter_map
              (fun tk ->
                let tiling =
                  Analytical.Tiling.make chain
                    [ ("m", tm); ("l", tl); ("k", tk); ("n", tk) ]
                in
                let r = Analytical.Movement.analyze chain ~perm ~tiling in
                if r.Analytical.Movement.mu_bytes <= capacity then
                  Some (tiling, r.Analytical.Movement.dv_bytes)
                else None)
              tile_sizes)
          tile_sizes)
      tile_sizes
  in
  Printf.printf "%-28s %14s %14s\n" "tiles" "predicted MB" "measured MB";
  let predicted, measured =
    List.split
      (List.map
         (fun (tiling, dv) ->
           let stats =
             Sim.Trace.measure_chain chain ~levels:[ level ] ~perm ~tiling ()
           in
           Printf.printf "%-28s %14.2f %14.2f\n"
             (Analytical.Tiling.to_string tiling)
             (dv /. 1e6)
             (stats.Sim.Trace.dram_bytes /. 1e6);
           (dv, stats.Sim.Trace.dram_bytes))
         samples)
  in
  Printf.printf "\nR^2 = %.4f over %d feasible tilings (paper: >= 0.97)\n"
    (Util.Stats.r_squared ~predicted ~measured)
    (List.length samples);
  (* The model's purpose: its argmin is (close to) the true argmin. *)
  let best_by list =
    fst
      (List.fold_left2
         (fun (bi, bv) i v -> if v < bv then (i, v) else (bi, bv))
         (-1, infinity)
         (List.mapi (fun i _ -> i) list)
         list)
  in
  let pi = best_by predicted and mi = best_by measured in
  Printf.printf "model argmin: %s; simulator argmin: %s -> %s\n"
    (Analytical.Tiling.to_string (fst (List.nth samples pi)))
    (Analytical.Tiling.to_string (fst (List.nth samples mi)))
    (if pi = mi then "agree" else "differ")
