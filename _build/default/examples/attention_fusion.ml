(* Fusing a full attention score computation: softmax(Q K^T) V.

   The softmax between the two batch GEMMs is what stops most compilers
   from fusing this chain (TASO and TVM+CUTLASS do not support it;
   Relay, Ansor and TensorRT split it into three kernels).  Chimera
   fuses it by merging the softmax row-sum into the second GEMM and
   swapping the division past it (Section VI-B).

   Run with:  dune exec examples/attention_fusion.exe *)

let () =
  (* Bert-Base's attention shape (Table IV, G2). *)
  let config = Option.get (Workloads.Gemm_configs.by_name "G2") in
  let chain = Workloads.Gemm_configs.chain ~softmax:true config in
  Printf.printf "workload: %s from %s\n" config.Workloads.Gemm_configs.name
    config.Workloads.Gemm_configs.network;
  Format.printf "%a@." Ir.Chain.pp chain;

  let machine = Arch.Presets.nvidia_a100 in
  let compiled = Chimera.Compiler.optimize ~machine chain in
  let chimera = Chimera.Compiler.total_time_seconds compiled in

  (* The generated kernel spells out the rewrite. *)
  let source = Chimera.Compiler.source compiled in
  print_endline "--- softmax handling in the generated kernel ---";
  String.split_on_char '\n' source
  |> List.filter (fun line ->
         let has needle =
           let nl = String.length needle and ll = String.length line in
           let rec go i =
             i + nl <= ll && (String.sub line i nl = needle || go (i + 1))
           in
           go 0
         in
         has "exp_inplace" || has "rowsum" || has "divide_rows"
         || has "softmax")
  |> List.iter print_endline;
  print_newline ();

  (* How the systems that cannot fuse softmax fare (Figure 6b). *)
  Printf.printf "%-14s %10s %8s %s\n" "system" "time (us)" "kernels" "slowdown";
  Printf.printf "%-14s %10.1f %8d %s\n" "Chimera" (chimera *. 1e6) 1 "1.00x";
  List.iter
    (fun profile ->
      let r = Baselines.Profile.estimate profile ~machine chain in
      Printf.printf "%-14s %10.1f %8d %.2fx\n" r.Baselines.Profile.profile
        (r.Baselines.Profile.time_seconds *. 1e6)
        r.Baselines.Profile.kernel_count
        (r.Baselines.Profile.time_seconds /. chimera))
    (Baselines.Systems.for_machine machine);
  print_newline ();

  (* The rewrite is exact: check against a straightforward softmax on a
     smaller instance of the same chain. *)
  let small =
    Ir.Chain.batch_gemm_chain ~name:"attention-small" ~batch:2 ~m:24 ~n:8
      ~k:8 ~l:24 ~softmax:true ()
  in
  let small_compiled = Chimera.Compiler.optimize ~machine small in
  let env = Sim.Exec.make_env small ~seed:11 in
  Chimera.Compiler.run small_compiled env;
  let reference = Sim.Exec.make_env small ~seed:11 in
  Sim.Exec.run_reference small reference;
  Printf.printf "fused softmax numerics: %s\n"
    (if Sim.Exec.outputs_match ~rtol:1e-6 small reference env then "MATCH"
     else "MISMATCH")
