(* Quickstart: fuse two batch GEMMs with Chimera.

   Build a chain, optimize it for the Xeon Gold model, inspect the plan,
   estimate performance against the unfused execution, and check the
   numerics of the generated schedule against a reference.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. Describe the computation: E = (A x B) x D, batched.  This is the
     attention batch-GEMM chain of a small transformer layer. *)
  let chain =
    Ir.Chain.batch_gemm_chain ~name:"quickstart" ~batch:4 ~m:128 ~n:32 ~k:32
      ~l:128 ()
  in
  Format.printf "%a@." Ir.Chain.pp chain;

  (* 2. Optimize for a machine.  Chimera enumerates the block execution
     orders, solves min DV s.t. MU <= capacity for each, plans every
     on-chip level, and substitutes the machine's micro kernel. *)
  let machine = Arch.Presets.xeon_gold_6240 in
  let compiled = Chimera.Compiler.optimize ~machine chain in
  let unit_ = List.hd compiled.Chimera.Compiler.units in
  Printf.printf "chosen block order: %s\n"
    (String.concat "" unit_.kernel.Codegen.Kernel.perm);
  Printf.printf "tile sizes:         %s\n"
    (Analytical.Tiling.to_string unit_.kernel.Codegen.Kernel.tiling);
  Printf.printf "micro kernel:       %s\n\n"
    unit_.kernel.Codegen.Kernel.micro.Microkernel.Kernel_sig.description;

  (* 3. What did fusion buy?  Compare the modelled DRAM traffic and time
     against executing the two GEMMs separately. *)
  let report = snd (List.hd (Chimera.Compiler.reports compiled)) in
  Printf.printf "fused DRAM traffic:   %.3f MB\n" (report.Sim.Perf.dram_bytes /. 1e6);
  Printf.printf "unfused lower bound:  %.3f MB (intermediate spilled)\n"
    (Ir.Chain.unfused_dram_bytes chain /. 1e6);
  Printf.printf "estimated time:       %.1f us\n\n"
    (report.Sim.Perf.time_seconds *. 1e6);

  (* 4. Verify the schedule numerically: the fused block order must
     compute exactly what the unfused reference computes. *)
  let env = Sim.Exec.make_env chain ~seed:7 in
  Chimera.Compiler.run compiled env;
  let reference = Sim.Exec.make_env chain ~seed:7 in
  Sim.Exec.run_reference chain reference;
  Printf.printf "numerics against reference: %s\n"
    (if Sim.Exec.outputs_match ~rtol:1e-6 chain reference env then "MATCH"
     else "MISMATCH");

  (* 5. And replay it against the simulated memory hierarchy. *)
  let stats = List.hd (Chimera.Compiler.measure compiled) in
  Printf.printf "simulated DRAM traffic:     %.3f MB over %d blocks\n"
    (stats.Sim.Trace.dram_bytes /. 1e6)
    stats.Sim.Trace.blocks_visited
