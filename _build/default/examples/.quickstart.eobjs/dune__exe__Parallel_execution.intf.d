examples/parallel_execution.mli:
