examples/graph_frontend.ml: Arch Format Graph List Printf
