examples/graph_frontend.mli:
