examples/quickstart.ml: Analytical Arch Chimera Codegen Format Ir List Microkernel Printf Sim String
