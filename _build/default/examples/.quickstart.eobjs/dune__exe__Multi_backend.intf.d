examples/multi_backend.mli:
