examples/multi_backend.ml: Analytical Arch Chimera Codegen Ir List Microkernel Option Printf Sim String Workloads
