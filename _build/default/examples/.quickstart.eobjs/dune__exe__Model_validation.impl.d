examples/model_validation.ml: Analytical Arch Ir List Printf Sim Util
