examples/quickstart.mli:
