examples/conv_chain.ml: Arch Baselines Chimera Codegen Ir List Option Printf Sim String Workloads
