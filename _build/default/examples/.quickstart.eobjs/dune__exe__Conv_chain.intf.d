examples/conv_chain.mli:
