examples/attention_fusion.ml: Arch Baselines Chimera Format Ir List Option Printf Sim String Workloads
