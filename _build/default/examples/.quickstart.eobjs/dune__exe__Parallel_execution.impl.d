examples/parallel_execution.ml: Analytical Arch Chimera Codegen Domain Ir List Option Printf Sim String Unix Workloads
