(* Multicore execution of a fused kernel (OCaml 5 domains).

   The parallelism analysis identifies the loops whose blocks are
   independent tasks (spatial in every stage: b and m for a GEMM
   chain); this example runs Bert-Base's attention chain across domains
   and checks the result against the sequential reference.

   Run with:  dune exec examples/parallel_execution.exe *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let chain =
    Workloads.Gemm_configs.chain ~softmax:true
      (Option.get (Workloads.Gemm_configs.by_name "G4"))
  in
  let machine = Arch.Presets.xeon_gold_6240 in
  let compiled = Chimera.Compiler.optimize ~machine chain in
  let kernel = (List.hd compiled.Chimera.Compiler.units).kernel in
  let perm = kernel.Codegen.Kernel.perm in
  let tiling = kernel.Codegen.Kernel.tiling in

  Printf.printf "chain %s, plan order %s\n" chain.Ir.Chain.name
    (String.concat "" perm);
  Printf.printf "safely-parallel axes: %s -> %d tasks\n"
    (String.concat ", " (Analytical.Parallelism.parallel_axes chain))
    (List.length (Sim.Parallel_exec.tasks_of chain tiling));

  let reference = Sim.Exec.make_env chain ~seed:1 in
  let (), t_ref = time (fun () -> Sim.Exec.run_reference chain reference) in
  Printf.printf "unfused reference:   %.2f s\n%!" t_ref;

  let seq_env = Sim.Exec.make_env chain ~seed:1 in
  let (), t_seq =
    time (fun () -> Sim.Exec.run_fused chain ~perm ~tiling seq_env)
  in
  Printf.printf "fused, sequential:   %.2f s -> %s\n%!" t_seq
    (if Sim.Exec.outputs_match ~rtol:1e-6 chain reference seq_env then "MATCH"
     else "MISMATCH");

  (* recommended_domain_count is 1 on a single-core host: the run then
     demonstrates correctness rather than speedup. *)
  let domains = Domain.recommended_domain_count () in
  let par_env = Sim.Exec.make_env chain ~seed:1 in
  let (), t_par =
    time (fun () ->
        Sim.Parallel_exec.run_fused_parallel ~domains chain ~perm ~tiling
          par_env)
  in
  Printf.printf "fused, %2d domains:   %.2f s (%.2fx) -> %s\n" domains t_par
    (t_seq /. t_par)
    (if Sim.Exec.outputs_match ~rtol:1e-6 chain reference par_env then "MATCH"
     else "MISMATCH")
