(* Fusing convolution chains — including the case where fusion does not
   pay.

   A 3x3 convolution consumed through a sliding window forces the fused
   kernel to recompute halo regions; fusion still wins when the second
   convolution is memory-bound (C1: 1x1 after 3x3), and stops paying
   when it is compute-bound (C6: 3x3 after 1x1) — the crossover the
   paper demonstrates in Figure 6c.

   Run with:  dune exec examples/conv_chain.exe *)

let analyse name =
  let config = Option.get (Workloads.Conv_configs.by_name name) in
  let chain = Workloads.Conv_configs.chain ~relu:true config in
  let machine = Arch.Presets.nvidia_a100 in
  Printf.printf "=== %s: IC=%d %dx%d -> OC1=%d (k%d/s%d) -> OC2=%d (k%d/s%d) ===\n"
    name config.Workloads.Conv_configs.ic config.Workloads.Conv_configs.h
    config.Workloads.Conv_configs.w config.Workloads.Conv_configs.oc1
    config.Workloads.Conv_configs.k1 config.Workloads.Conv_configs.st1
    config.Workloads.Conv_configs.oc2 config.Workloads.Conv_configs.k2
    config.Workloads.Conv_configs.st2;
  (* Is the second convolution memory-bound?  The paper's criterion for
     profitable fusion. *)
  let second = List.nth chain.Ir.Chain.stages 1 in
  let flops2 =
    Ir.Operator.flops second.Ir.Chain.standalone
      ~extent_of:(Ir.Chain.extent_of chain)
  in
  let bytes2 =
    List.fold_left
      (fun acc (r : Ir.Operator.tensor_ref) ->
        acc +. float_of_int (Ir.Operator.tensor_bytes r))
      0.0
      (Ir.Operator.all_refs second.Ir.Chain.standalone)
  in
  Printf.printf "second conv: %.1f Flop/byte -> %s\n" (flops2 /. bytes2)
    (Arch.Roofline.boundedness_to_string
       (Arch.Roofline.classify machine ~flops:flops2 ~bytes:bytes2));
  (* Recomputation cost of fusing through the window. *)
  Printf.printf "recomputation from fusion: %.1f%% extra FLOPs\n"
    (100.0
    *. ((Ir.Chain.fused_flops chain /. Ir.Chain.standalone_flops chain) -. 1.0));
  let compiled = Chimera.Compiler.optimize ~machine chain in
  let chimera = Chimera.Compiler.total_time_seconds compiled in
  let unit_ = List.hd compiled.Chimera.Compiler.units in
  Printf.printf "fused plan: order %s\n"
    (String.concat " " unit_.kernel.Codegen.Kernel.perm);
  let ansor =
    Baselines.Profile.estimate Baselines.Systems.gpu_ansor ~machine chain
  in
  Printf.printf "Chimera %.1f us vs Ansor-style unfused %.1f us -> %.2fx\n\n"
    (chimera *. 1e6)
    (ansor.Baselines.Profile.time_seconds *. 1e6)
    (ansor.Baselines.Profile.time_seconds /. chimera)

let () =
  analyse "C1";
  analyse "C6";
  (* Numeric check of a small strided conv chain with ReLU. *)
  let small =
    Ir.Chain.conv_chain ~name:"conv-small" ~batch:1 ~ic:3 ~h:14 ~w:14 ~oc1:6
      ~oc2:4 ~st1:2 ~st2:1 ~k1:3 ~k2:3 ~relu:true ()
  in
  let compiled =
    Chimera.Compiler.optimize ~machine:Arch.Presets.nvidia_a100 small
  in
  let env = Sim.Exec.make_env small ~seed:3 in
  Chimera.Compiler.run compiled env;
  let reference = Sim.Exec.make_env small ~seed:3 in
  Sim.Exec.run_reference small reference;
  Printf.printf "fused conv+ReLU numerics (with halo recomputation): %s\n"
    (if Sim.Exec.outputs_match ~rtol:1e-6 small reference env then "MATCH"
     else "MISMATCH")
