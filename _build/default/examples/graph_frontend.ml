(* From a compute DAG to fused kernels (the full Figure 3 pipeline).

   Describe a transformer encoder block in the graph DSL, let the
   partitioner find the fusible compute-intensive chains and group the
   element-wise operators, and estimate the whole block fused vs
   unfused.

   Run with:  dune exec examples/graph_frontend.exe *)

let () =
  (* 1. The model, as a compute DAG. *)
  let g =
    Graph.Models.transformer_block ~hidden:768 ~heads:12 ~seq:512 ~ffn:3072 ()
  in
  print_endline "compute DAG:";
  Format.printf "%a@." Graph.Builder.pp g;

  (* 2. Partition: CI chains for Chimera, element-wise groups for the
     standard fusion rules. *)
  let p = Graph.Partition.partition g in
  print_endline "partition:";
  print_endline (Graph.Partition.describe p);
  Printf.printf "\nCI operators fused into multi-stage chains: %d\n\n"
    (Graph.Partition.fused_ci_ops p);

  (* 3. Estimate the block on the A100 model, fused vs unfused. *)
  let machine = Arch.Presets.nvidia_a100 in
  let fused = Graph.Estimate.estimate p ~machine in
  let unfused = Graph.Estimate.unfused_estimate p ~machine in
  Printf.printf "%-28s %12s\n" "segment" "time (us)";
  List.iter
    (fun (s : Graph.Estimate.segment_time) ->
      Printf.printf "%-28s %12.2f\n" s.label (s.seconds *. 1e6))
    fused.Graph.Estimate.segments;
  Printf.printf "\nfused total:   %8.2f us (CI %.2f + MI %.2f)\n"
    (fused.Graph.Estimate.total_seconds *. 1e6)
    (fused.Graph.Estimate.ci_seconds *. 1e6)
    (fused.Graph.Estimate.mi_seconds *. 1e6);
  Printf.printf "unfused total: %8.2f us  ->  fusion speedup %.2fx\n"
    (unfused.Graph.Estimate.total_seconds *. 1e6)
    (unfused.Graph.Estimate.total_seconds
    /. fused.Graph.Estimate.total_seconds)
