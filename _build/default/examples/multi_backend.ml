(* Replaceable micro kernels across three backends (Figure 4).

   One chain, three machines: the same replaceable "matmul" micro kernel
   lowers to AVX-512 assembly on the CPU, WMMA intrinsics on the GPU and
   the mad-pragma DSL on the NPU — while the inter-block plan adapts to
   each machine's memory hierarchy.

   Run with:  dune exec examples/multi_backend.exe *)

let first_lines n text =
  String.concat "\n"
    (List.filteri (fun i _ -> i < n) (String.split_on_char '\n' text))

let () =
  let config = Option.get (Workloads.Gemm_configs.by_name "G7") in
  let chain = Workloads.Gemm_configs.chain config in
  Printf.printf "chain: %s (%s)\n\n" config.Workloads.Gemm_configs.name
    config.Workloads.Gemm_configs.network;
  List.iter
    (fun (short, machine) ->
      Printf.printf "================ %s (%s) ================\n"
        machine.Arch.Machine.name short;
      let compiled = Chimera.Compiler.optimize ~machine chain in
      let unit_ = List.hd compiled.Chimera.Compiler.units in
      let kernel = unit_.Chimera.Compiler.kernel in
      Printf.printf "block order %s, tiles %s\n"
        (String.concat "" kernel.Codegen.Kernel.perm)
        (Analytical.Tiling.to_string kernel.Codegen.Kernel.tiling);
      List.iter
        (fun (lp : Analytical.Planner.level_plan) ->
          Printf.printf "  %-7s tiles %s (DV %.2f MB)\n"
            lp.level.Arch.Level.name
            (Analytical.Tiling.to_string lp.plan.Analytical.Planner.tiling)
            (lp.plan.Analytical.Planner.movement.Analytical.Movement.dv_bytes
            /. 1e6))
        kernel.Codegen.Kernel.level_plans;
      let impl = kernel.Codegen.Kernel.micro in
      Printf.printf "micro kernel: %s\n" impl.Microkernel.Kernel_sig.description;
      let m, n, k =
        match chain.Ir.Chain.stages with
        | stage :: _ -> Codegen.Kernel.matmul_block_dims kernel stage.Ir.Chain.op
        | [] -> (1, 1, 1)
      in
      print_endline
        (first_lines 8 (impl.Microkernel.Kernel_sig.emit ~block_m:m ~block_n:n ~block_k:k));
      let report = snd (List.hd (Chimera.Compiler.reports compiled)) in
      Printf.printf "...\nestimate: %.1f us (%.0f GFLOP/s, %.1f%% micro-kernel eff.)\n\n"
        (report.Sim.Perf.time_seconds *. 1e6)
        (Sim.Perf.gflops report)
        (100.0 *. report.Sim.Perf.micro_efficiency))
    Arch.Presets.all
