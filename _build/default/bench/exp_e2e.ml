(* Figure 9: end-to-end network latency on the A100 model. *)

let run () =
  Common.section "figure9" "End-to-end networks on A100 (Figure 9)";
  let machine = Arch.Presets.nvidia_a100 in
  let stacks = Baselines.E2e.gpu_stacks in
  let columns =
    "network"
    :: List.map (fun (s : Baselines.E2e.stack) -> s.name ^ " (ms)") stacks
  in
  let table = Util.Table.create ~columns in
  let ratios = Hashtbl.create 8 in
  List.iter
    (fun net ->
      let times =
        List.map
          (fun stack ->
            (stack, Baselines.E2e.estimate_network stack ~machine net))
          stacks
      in
      let chimera =
        snd
          (List.find
             (fun ((s : Baselines.E2e.stack), _) -> s.name = "Relay+Chimera")
             times)
      in
      Util.Table.add_row table
        (net.Workloads.Networks.name
        :: List.map (fun (_, t) -> Printf.sprintf "%.2f" (t *. 1e3)) times);
      List.iter
        (fun ((s : Baselines.E2e.stack), t) ->
          let prev = Option.value (Hashtbl.find_opt ratios s.name) ~default:[] in
          Hashtbl.replace ratios s.name ((t /. chimera) :: prev))
        times)
    Workloads.Networks.all;
  Common.print_table table;
  Printf.printf "Relay+Chimera geometric speedups:";
  List.iter
    (fun (s : Baselines.E2e.stack) ->
      if s.name <> "Relay+Chimera" then
        match Hashtbl.find_opt ratios s.name with
        | Some xs -> Printf.printf "  vs %s %.2fx" s.name (Util.Stats.geomean xs)
        | None -> ())
    stacks;
  print_newline ();
  print_endline
    "(paper: 1.42x vs Relay+TensorRT, 1.31x vs Relay+CuDNN, 1.22x vs \
     Relay+Ansor; PyTorch+CuDNN far slower)"
