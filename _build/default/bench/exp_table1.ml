(* Table I: ML model time breakdown and accelerator characteristics. *)

let run () =
  Common.section "table1" "Model breakdown and accelerator roofline (Table I)";
  let breakdown = Util.Table.create ~columns:[ "Name"; "%MI"; "%CI"; "%BMM" ] in
  List.iter
    (fun (net, paper) ->
      let b = Workloads.Breakdown.analyze net ~machine:Arch.Presets.nvidia_a100 in
      Util.Table.add_row breakdown
        [
          net.Workloads.Networks.name;
          Printf.sprintf "%.2f%%" b.Workloads.Breakdown.mi_pct;
          Printf.sprintf "%.2f%%" b.Workloads.Breakdown.ci_pct;
          Printf.sprintf "%.2f%%" b.Workloads.Breakdown.bmm_pct;
        ];
      let pm, pc, pb = paper in
      Util.Table.add_row breakdown
        [
          "  (paper)";
          Printf.sprintf "%.2f%%" pm;
          Printf.sprintf "%.2f%%" pc;
          Printf.sprintf "%.2f%%" pb;
        ])
    [
      (Workloads.Networks.transformer_base, (19.45, 40.51, 40.04));
      (Workloads.Networks.bert_base, (30.56, 42.79, 26.65));
      (Workloads.Networks.vit_huge, (15.63, 50.85, 33.52));
    ];
  Common.print_table ~name:"breakdown" breakdown;
  print_newline ();
  let devices =
    Util.Table.create
      ~columns:[ "Device"; "Peak Perf"; "Memory BW"; "Peak Perf/BW" ]
  in
  List.iter
    (fun (_, m) ->
      Util.Table.add_row devices
        [
          m.Arch.Machine.name;
          Printf.sprintf "%.0f TFlops" m.Arch.Machine.peak_tflops;
          Printf.sprintf "%.0f GB/s" (Arch.Machine.dram_bandwidth_gbps m);
          Printf.sprintf "%.0f Flop/byte" (Arch.Machine.ridge_flop_per_byte m);
        ])
    Arch.Presets.all;
  Common.print_table ~name:"devices" devices;
  print_endline
    "(paper: 92 / 200 / 267 Flop/byte for Xeon Gold / A100 / Ascend 910)"
