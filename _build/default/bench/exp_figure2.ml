(* Figure 2 (reuse table per block order) and Table III (the symbolic DV
   of the mlkn order). *)

let orders =
  [
    [ "b"; "m"; "n"; "k"; "l" ];
    [ "b"; "m"; "n"; "l"; "k" ];
    [ "b"; "m"; "k"; "n"; "l" ];
    [ "b"; "m"; "k"; "l"; "n" ];
    [ "b"; "m"; "l"; "n"; "k" ];
    [ "b"; "m"; "l"; "k"; "n" ];
  ]

let run () =
  Common.section "figure2"
    "Reuse dimensions per block execution order (Figure 2)";
  let chain =
    Ir.Chain.batch_gemm_chain ~name:"figure2" ~batch:1 ~m:512 ~n:64 ~k:64
      ~l:512 ()
  in
  let table =
    Util.Table.create ~columns:[ "order"; "A"; "B"; "D"; "E"; "DV (MB)" ]
  in
  List.iter
    (fun perm ->
      let reuse tensor =
        match Analytical.Movement.reuse_axes chain ~perm ~tensor with
        | [] -> "-"
        | axes -> String.concat "," axes
      in
      let tiling =
        Analytical.Tiling.make chain
          [ ("m", 64); ("n", 64); ("k", 64); ("l", 64) ]
      in
      let dv =
        (Analytical.Movement.analyze chain ~perm ~tiling)
          .Analytical.Movement.dv_bytes
      in
      Util.Table.add_row table
        [
          String.concat ""
            (List.filter (fun a -> a <> "b") perm);
          reuse "A";
          reuse "B";
          reuse "D";
          reuse "E";
          Printf.sprintf "%.2f" (dv /. 1e6);
        ])
    orders;
  Common.print_table table;
  print_endline "(C omitted: intermediate, always reused on chip)";

  Common.section "table3" "Symbolic DV under the mlkn order (Table III)";
  let perm = [ "b"; "m"; "l"; "k"; "n" ] in
  let table = Util.Table.create ~columns:[ "tensor"; "DM"; "paper" ] in
  List.iter2
    (fun tensor paper ->
      Util.Table.add_row table
        [
          tensor;
          Analytical.Movement.movement_expr chain ~perm ~tensor;
          paper;
        ])
    [ "A"; "B"; "C"; "D"; "E" ]
    [
      "MK*ceil(L/T_L)";
      "KL*ceil(M/T_M)";
      "0";
      "NL*ceil(M/T_M)";
      "MN*ceil(L/T_L)";
    ];
  Common.print_table table
