(* Figure 10: ablation over cost model (C), fusion (F), micro kernel (M). *)

let variants =
  [
    ("baseline", Chimera.Config.baseline);
    ("v-C", Chimera.Config.with_only ~cost_model:true ());
    ("v-F", Chimera.Config.with_only ~fusion:true ());
    ("v-M", Chimera.Config.with_only ~micro_kernel:true ());
    ("v-CF", Chimera.Config.with_only ~cost_model:true ~fusion:true ());
    ( "v-CM",
      Chimera.Config.with_only ~cost_model:true ~micro_kernel:true () );
    ( "v-FM",
      Chimera.Config.with_only ~fusion:true ~micro_kernel:true () );
    ("Chimera", Chimera.Config.default);
  ]

(* Representative batch-GEMM chains (Bert / ViT / MLP-Mixer shapes); the
   sampling fallback of the disabled cost model makes the full G1-G12
   sweep slow without changing the averages. *)
let configs = [ "G1"; "G2"; "G7"; "G12" ]

let run () =
  Common.section "figure10" "Ablation study on CPU (Figure 10)";
  let machine = Arch.Presets.xeon_gold_6240 in
  let columns = "config" :: List.map fst variants in
  let table = Util.Table.create ~columns in
  let speedups = Hashtbl.create 8 in
  List.iter
    (fun name ->
      let chain =
        Workloads.Gemm_configs.chain
          (Option.get (Workloads.Gemm_configs.by_name name))
      in
      let times =
        List.map
          (fun (vname, config) ->
            let config = { config with Chimera.Config.tuning_trials = 6 } in
            let t =
              Chimera.Compiler.total_time_seconds
                (Chimera.Compiler.optimize ~config ~machine chain)
            in
            (vname, t))
          variants
      in
      let baseline = List.assoc "baseline" times in
      Util.Table.add_row table
        (name
        :: List.map
             (fun (_, t) -> Printf.sprintf "%.2f" (baseline /. t))
             times);
      List.iter
        (fun (vname, t) ->
          let prev = Option.value (Hashtbl.find_opt speedups vname) ~default:[] in
          Hashtbl.replace speedups vname ((baseline /. t) :: prev))
        times)
    configs;
  Common.print_table table;
  Printf.printf "average speedups over baseline:";
  List.iter
    (fun (vname, _) ->
      match Hashtbl.find_opt speedups vname with
      | Some xs -> Printf.printf "  %s %.2fx" vname (Util.Stats.geomean xs)
      | None -> ())
    variants;
  print_newline ();
  print_endline
    "(paper: cost model 2.37x, fusion 1.89x, micro kernel 1.61x, all \
     collectively critical)"
