(* Ablations of this reproduction's own design choices (recorded in
   DESIGN.md): solver ingredients, hierarchical vs flat trace replay,
   and the occupancy-refinement slack. *)

let solver_ablation () =
  Common.section "internals.solver"
    "Solver ingredients: coordinate descent + uniform start + boundary grow";
  let chain =
    Ir.Chain.batch_gemm_chain ~name:"solver-abl" ~batch:1 ~m:2048 ~n:64 ~k:64
      ~l:2048 ()
  in
  let perm = [ "b"; "m"; "l"; "k"; "n" ] in
  let capacity = 512 * 1024 in
  let dv ~boundary_grow ~uniform_start =
    match
      Analytical.Solver.solve_for_perm chain ~perm ~capacity_bytes:capacity
        ~boundary_grow ~uniform_start ()
    with
    | Some sol -> sol.Analytical.Solver.movement.Analytical.Movement.dv_bytes
    | None -> nan
  in
  let cf =
    Analytical.Closed_form.solve ~m:2048 ~n:64 ~k:64 ~l:2048
      ~capacity_elems:(capacity / 2) ()
  in
  let cf_dv =
    (Analytical.Movement.analyze chain ~perm
       ~tiling:
         (Analytical.Tiling.make chain
            [ ("m", cf.t_m); ("n", cf.t_n); ("k", cf.t_k); ("l", cf.t_l) ]))
      .Analytical.Movement.dv_bytes
  in
  let table = Util.Table.create ~columns:[ "variant"; "DV (MB)"; "vs full" ] in
  let full = dv ~boundary_grow:true ~uniform_start:true in
  List.iter
    (fun (label, v) ->
      Util.Table.add_row table
        [ label; Printf.sprintf "%.3f" (v /. 1e6);
          Printf.sprintf "%.2fx" (v /. full) ])
    [
      ("descent only", dv ~boundary_grow:false ~uniform_start:false);
      ("+ uniform start", dv ~boundary_grow:false ~uniform_start:true);
      ("+ boundary grow", dv ~boundary_grow:true ~uniform_start:false);
      ("full solver", full);
      ("paper closed form (rounded)", cf_dv);
    ];
  Common.print_table table

let trace_ablation () =
  Common.section "internals.trace"
    "Hierarchical vs flat trace replay (per-level fill traffic)";
  (* A square GEMM chain large enough that the outer-level block order
     matters, replayed against a two-level hierarchy. *)
  let chain =
    Ir.Chain.batch_gemm_chain ~name:"trace-abl" ~batch:1 ~m:512 ~n:512 ~k:512
      ~l:512 ()
  in
  let l1 =
    Arch.Level.make ~name:"L1" ~capacity_bytes:(32 * 1024)
      ~link_bandwidth_gbps:4000.0 ()
  in
  let l2 =
    Arch.Level.make ~name:"L2" ~capacity_bytes:(256 * 1024)
      ~link_bandwidth_gbps:2000.0 ()
  in
  let outer =
    Analytical.Planner.optimize chain ~capacity_bytes:l2.Arch.Level.capacity_bytes ()
  in
  let inner =
    Analytical.Planner.optimize chain
      ~capacity_bytes:l1.Arch.Level.capacity_bytes
      ~max_tile:(fun a -> Analytical.Tiling.get outer.Analytical.Planner.tiling a)
      ()
  in
  let hier =
    Sim.Trace.measure_hier chain ~levels:[ l1; l2 ]
      ~plan_levels:
        [
          (outer.Analytical.Planner.perm, outer.Analytical.Planner.tiling);
          (inner.Analytical.Planner.perm, inner.Analytical.Planner.tiling);
        ]
      ()
  in
  let flat =
    Sim.Trace.measure_chain chain ~levels:[ l1; l2 ]
      ~perm:inner.Analytical.Planner.perm
      ~tiling:inner.Analytical.Planner.tiling ()
  in
  Printf.printf "outer plan: %s %s; inner plan: %s %s\n"
    (String.concat "" outer.Analytical.Planner.perm)
    (Analytical.Tiling.to_string outer.Analytical.Planner.tiling)
    (String.concat "" inner.Analytical.Planner.perm)
    (Analytical.Tiling.to_string inner.Analytical.Planner.tiling);
  let table =
    Util.Table.create ~columns:[ "level"; "hier bytes_in MB"; "flat bytes_in MB" ]
  in
  List.iter2
    (fun (h : Sim.Trace.level_stats) (f : Sim.Trace.level_stats) ->
      Util.Table.add_row table
        [
          h.level.Arch.Level.name;
          Printf.sprintf "%.3f" (h.bytes_in /. 1e6);
          Printf.sprintf "%.3f" (f.bytes_in /. 1e6);
        ])
    hier.Sim.Trace.levels flat.Sim.Trace.levels;
  Common.print_table table;
  print_endline
    "(the generated kernel nests the L1 sub-block order inside L2 blocks; \
     replaying the innermost order flat discards the outer blocking and \
     inflates the outer level's fill traffic)"

let slack_ablation () =
  Common.section "internals.slack"
    "Occupancy refinement: blocks vs extra data movement";
  let machine = Arch.Presets.xeon_gold_6240 in
  let chain =
    Workloads.Gemm_configs.chain
      (Option.get (Workloads.Gemm_configs.by_name "G12"))
  in
  let capacity =
    (Arch.Machine.primary_on_chip machine).Arch.Level.capacity_bytes
  in
  let base = Analytical.Planner.optimize chain ~capacity_bytes:capacity () in
  let table =
    Util.Table.create
      ~columns:[ "slack"; "blocks"; "DV (MB)"; "core occupancy" ]
  in
  List.iter
    (fun slack ->
      let plan =
        if slack = 0.0 then base
        else
          Analytical.Planner.refine_for_parallelism chain base
            ~min_blocks:machine.Arch.Machine.cores ~slack ()
      in
      let blocks = Analytical.Tiling.total_blocks plan.Analytical.Planner.tiling in
      Util.Table.add_row table
        [
          (if slack = 0.0 then "off" else Printf.sprintf "%.2f" slack);
          Printf.sprintf "%.0f" blocks;
          Printf.sprintf "%.3f"
            (plan.Analytical.Planner.movement.Analytical.Movement.dv_bytes
            /. 1e6);
          Printf.sprintf "%.0f%%"
            (100.0
            *. Float.min 1.0
                 (blocks /. float_of_int machine.Arch.Machine.cores));
        ])
    [ 0.0; 1.1; 1.25; 2.0; 4.0 ];
  Common.print_table table

let granularity_ablation () =
  Common.section "internals.granularity"
    "Tile-granular LRU vs line-granular set-associative simulation";
  (* Same trace at both granularities; intermediates spilled on the tile
     side so both models charge every tensor. *)
  let chain =
    Ir.Chain.batch_gemm_chain ~name:"gran-abl" ~batch:1 ~m:256 ~n:256 ~k:256
      ~l:256 ()
  in
  let perm = [ "b"; "m"; "l"; "k"; "n" ] in
  let capacity = 128 * 1024 in
  let table =
    Util.Table.create
      ~columns:[ "tiles"; "tile model MB"; "line model MB"; "ratio" ]
  in
  let ratios = ref [] in
  List.iter
    (fun size ->
      let tiling =
        Analytical.Tiling.make chain
          [ ("m", size); ("n", size); ("k", size); ("l", size) ]
      in
      let tile =
        (Sim.Trace.measure_chain chain
           ~levels:
             [
               Arch.Level.make ~name:"L" ~capacity_bytes:capacity
                 ~link_bandwidth_gbps:100.0 ();
             ]
           ~perm ~tiling ~spill_intermediates:true ())
          .Sim.Trace.dram_bytes
      in
      let line =
        (Sim.Address_trace.measure chain ~capacity_bytes:capacity ~perm
           ~tiling ())
          .Sim.Address_trace.bytes_in
      in
      ratios := (tile /. line) :: !ratios;
      Util.Table.add_row table
        [
          string_of_int size;
          Printf.sprintf "%.3f" (tile /. 1e6);
          Printf.sprintf "%.3f" (line /. 1e6);
          Printf.sprintf "%.2f" (tile /. line);
        ])
    [ 16; 32; 64; 128 ];
  Common.print_table table;
  Printf.printf
    "tile/line agreement (geo mean of ratios): %.2f — the fast tile model \
     stands in for line-level simulation on paper-sized problems\n"
    (Util.Stats.geomean !ratios)

let run () =
  solver_ablation ();
  trace_ablation ();
  slack_ablation ();
  granularity_ablation ()
