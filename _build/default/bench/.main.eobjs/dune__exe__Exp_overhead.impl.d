bench/exp_overhead.ml: Arch Chimera Common List Option Printf Util Workloads
