bench/exp_subgraphs.ml: Arch Common List Printf Workloads
