bench/bechamel_suite.ml: Analytical Analyze Arch Bechamel Benchmark Chimera Common Hashtbl Instance List Measure Microkernel Option Printf Sim Staged Test Time Toolkit Util Workloads
