bench/exp_figure2.ml: Analytical Common Ir List Printf String Util
