bench/main.ml: Array Bechamel_suite Common Exp_ablation Exp_e2e Exp_figure2 Exp_internals Exp_memory Exp_overhead Exp_subgraphs Exp_table1 List Printf String Sys
