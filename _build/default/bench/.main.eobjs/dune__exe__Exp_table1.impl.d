bench/exp_table1.ml: Arch Common List Printf Util Workloads
