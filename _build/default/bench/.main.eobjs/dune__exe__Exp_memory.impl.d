bench/exp_memory.ml: Analytical Arch Array Chimera Common Ir List Printf Sim Util Workloads
