bench/common.ml: Arch Baselines Chimera Filename Hashtbl Ir List Option Printf Util
