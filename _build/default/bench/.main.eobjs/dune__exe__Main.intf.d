bench/main.mli:
