bench/exp_internals.ml: Analytical Arch Common Float Ir List Option Printf Sim String Util Workloads
