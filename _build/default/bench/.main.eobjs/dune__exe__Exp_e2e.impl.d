bench/exp_e2e.ml: Arch Baselines Common Hashtbl List Option Printf Util Workloads
