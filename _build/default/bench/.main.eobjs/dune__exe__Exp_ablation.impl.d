bench/exp_ablation.ml: Arch Chimera Common Hashtbl List Option Printf Util Workloads
