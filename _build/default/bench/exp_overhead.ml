(* Section VI-E: optimization overhead — Chimera's analytical
   optimization vs an Ansor-style measurement-driven search. *)

let run ?(ansor_trials = 40) () =
  Common.section "overhead"
    "Optimization overhead: analytical model vs search tuning (Section VI-E)";
  let machine = Arch.Presets.xeon_gold_6240 in
  let table =
    Util.Table.create
      ~columns:
        [
          "config"; "Chimera opt (s)"; "Ansor-style opt (s)"; "opt speedup";
          "Chimera kernel (us)"; "tuned kernel (us)"; "perf speedup";
        ]
  in
  let opt_ratios = ref [] and perf_ratios = ref [] in
  List.iter
    (fun name ->
      let chain =
        Workloads.Gemm_configs.chain
          (Option.get (Workloads.Gemm_configs.by_name name))
      in
      let compiled, chimera_opt =
        Chimera.Compiler.optimization_time_seconds (fun () ->
            Chimera.Compiler.optimize ~machine chain)
      in
      let chimera_perf = Chimera.Compiler.total_time_seconds compiled in
      let config =
        {
          Chimera.Config.default with
          use_cost_model = false;
          tuning_trials = ansor_trials;
        }
      in
      let tuned, tuner_opt =
        Chimera.Compiler.optimization_time_seconds (fun () ->
            Chimera.Compiler.optimize ~config ~machine chain)
      in
      let tuned_perf = Chimera.Compiler.total_time_seconds tuned in
      opt_ratios := (tuner_opt /. chimera_opt) :: !opt_ratios;
      perf_ratios := (tuned_perf /. chimera_perf) :: !perf_ratios;
      Util.Table.add_row table
        [
          name;
          Printf.sprintf "%.2f" chimera_opt;
          Printf.sprintf "%.2f" tuner_opt;
          Printf.sprintf "%.1fx" (tuner_opt /. chimera_opt);
          Common.fmt_us chimera_perf;
          Common.fmt_us tuned_perf;
          Printf.sprintf "%.2fx" (tuned_perf /. chimera_perf);
        ])
    [ "G1"; "G2"; "G7"; "G12" ];
  Common.print_table table;
  Printf.printf
    "average: optimization %.1fx faster, kernels %.2fx faster than the \
     search tuner\n"
    (Util.Stats.geomean !opt_ratios)
    (Util.Stats.geomean !perf_ratios);
  Printf.printf
    "(paper: 21.89x faster optimization, 1.39x faster kernels than Ansor; \
     search budget here %d trials/order vs Ansor's 1000 total)\n"
    ansor_trials
