(* Figure 8: memory analysis and model validation on the CPU. *)

let cpu = Arch.Presets.xeon_gold_6240

(* ----- Figure 8 a/b/c: cache behaviour of Chimera vs PyTorch ------- *)

let level_stat (stats : Sim.Trace.stats) name =
  List.find
    (fun (l : Sim.Trace.level_stats) -> l.level.Arch.Level.name = name)
    stats.Sim.Trace.levels

let measure_chimera chain =
  let compiled = Chimera.Compiler.optimize ~machine:cpu chain in
  Sim.Trace.measure (List.hd compiled.Chimera.Compiler.units).kernel

let measure_pytorch_stage chain index =
  let subs = Chimera.Compiler.split_stages chain in
  let sub = List.nth subs index in
  let config = { Chimera.Config.default with use_fusion = false } in
  let compiled = Chimera.Compiler.optimize ~config ~machine:cpu sub in
  Sim.Trace.measure (List.hd compiled.Chimera.Compiler.units).kernel

let figure8abc () =
  Common.section "figure8ab" "L2 / L3 hit rates, Chimera vs PyTorch (Figure 8a,b)";
  let table =
    Util.Table.create
      ~columns:
        [
          "config"; "Chimera L2"; "PyT-1 L2"; "PyT-2 L2"; "Chimera L3";
          "PyT-1 L3"; "PyT-2 L3";
        ]
  in
  let reductions = ref [] in
  let increases = ref [] in
  let dram_reductions = ref [] in
  List.iter
    (fun (c : Workloads.Gemm_configs.t) ->
      let chain = Workloads.Gemm_configs.chain c in
      let fused = measure_chimera chain in
      let p1 = measure_pytorch_stage chain 0 in
      let p2 = measure_pytorch_stage chain 1 in
      let rate stats name = (level_stat stats name).Sim.Trace.hit_rate in
      Util.Table.add_row table
        [
          c.name;
          Printf.sprintf "%.1f%%" (100.0 *. rate fused "L2");
          Printf.sprintf "%.1f%%" (100.0 *. rate p1 "L2");
          Printf.sprintf "%.1f%%" (100.0 *. rate p2 "L2");
          Printf.sprintf "%.1f%%" (100.0 *. rate fused "L3");
          Printf.sprintf "%.1f%%" (100.0 *. rate p1 "L3");
          Printf.sprintf "%.1f%%" (100.0 *. rate p2 "L3");
        ];
      (* Figure 8c: per-level movement, fused vs sum of the two unfused
         kernels. *)
      let bytes stats name = (level_stat stats name).Sim.Trace.bytes_in in
      let pytorch name = bytes p1 name +. bytes p2 name in
      reductions :=
        (1.0 -. (bytes fused "L2" /. pytorch "L2")) :: !reductions;
      increases := (bytes fused "L1" /. pytorch "L1") :: !increases;
      dram_reductions :=
        (1.0 -. (fused.Sim.Trace.dram_bytes
                 /. (p1.Sim.Trace.dram_bytes +. p2.Sim.Trace.dram_bytes)))
        :: !dram_reductions)
    Workloads.Gemm_configs.all;
  Common.print_table table;
  Common.section "figure8c" "Inter-level data movement changes (Figure 8c)";
  Printf.printf "L2<->L3 movement reduction: %.1f%% (paper: 59.75%%)\n"
    (100.0 *. Util.Stats.mean !reductions);
  Printf.printf "DRAM access reduction:      %.1f%% (paper: 75.17%%)\n"
    (100.0 *. Util.Stats.mean !dram_reductions);
  Printf.printf "L1<->L2 movement ratio:     %.2fx (paper: +46%%)\n"
    (Util.Stats.mean !increases)

(* ----- Figure 8 d/e/f: predicted vs measured data movement --------- *)

let validation_chain () =
  Ir.Chain.batch_gemm_chain ~name:"val2048" ~batch:1 ~m:2048 ~n:2048 ~k:2048
    ~l:2048 ()

let sample_tilings chain ~capacity_bytes ~count ~seed =
  let prng = Util.Prng.create ~seed in
  let axes = Analytical.Movement.fused_axes chain in
  (* Proper decomposition factors: at least two blocks per axis (a
     "tile" of the whole extent is not a decomposition), at least 64 so
     the trace stays tractable. *)
  let candidates axis =
    let extent = Ir.Chain.extent_of chain axis in
    Array.of_list
      (List.filter
         (fun v -> v >= 64 && v <= extent / 2)
         (Analytical.Solver.candidate_sizes extent))
  in
  let rec draw acc n guard =
    if n = 0 || guard = 0 then acc
    else begin
      let tiling =
        List.fold_left
          (fun t axis ->
            if Ir.Chain.extent_of chain axis = 1 then t
            else Analytical.Tiling.set t axis (Util.Prng.pick prng (candidates axis)))
          (Analytical.Tiling.ones chain)
          axes
      in
      let mu =
        (Analytical.Movement.analyze chain
           ~perm:[ "b"; "m"; "l"; "k"; "n" ]
           ~tiling)
          .Analytical.Movement.mu_bytes
      in
      let blocks = Analytical.Tiling.total_blocks tiling in
      (* Include factors around and beyond the capacity boundary: the
         interesting region where eviction effects stress the model. *)
      if mu <= capacity_bytes + (capacity_bytes / 5) && blocks <= 60_000.0 then
        draw (tiling :: acc) (n - 1) (guard - 1)
      else draw acc n (guard - 1)
    end
  in
  draw [] count 20_000

let validate ~id ~title ~perm ~spill =
  Common.section id title;
  let chain = validation_chain () in
  let capacity = 1024 * 1024 in
  let tilings = sample_tilings chain ~capacity_bytes:capacity ~count:120 ~seed:99 in
  let level =
    Arch.Level.make ~name:"L2" ~capacity_bytes:capacity
      ~link_bandwidth_gbps:2000.0 ()
  in
  let predicted, measured =
    List.split
      (List.map
         (fun tiling ->
           let p =
             (Analytical.Movement.analyze ~charge_intermediates:spill chain
                ~perm ~tiling)
               .Analytical.Movement.dv_bytes
           in
           let m =
             (Sim.Trace.measure_chain chain ~levels:[ level ] ~perm ~tiling
                ~spill_intermediates:spill ())
               .Sim.Trace.dram_bytes
           in
           (p, m))
         tilings)
  in
  let r2 = Util.Stats.r_squared ~predicted ~measured in
  let slope, intercept = Util.Stats.linear_fit predicted measured in
  Printf.printf "samples: %d feasible decomposition factors\n"
    (List.length tilings);
  Printf.printf "R^2 = %.4f   fit: measured = %.3f * predicted + %.2e\n" r2
    slope intercept;
  Printf.printf "(paper: R^2 >= 0.97 along the y = x line)\n";
  (* The predicted optimum should sit at the low-movement end. *)
  let best_pred = Util.Stats.minimum predicted in
  let best_meas = Util.Stats.minimum measured in
  Printf.printf
    "predicted optimum %.3e MB; best measured sample %.3e MB\n"
    (best_pred /. 1e6) (best_meas /. 1e6);
  (* A compact scatter, binned by predicted volume. *)
  let pairs = List.combine predicted measured in
  let sorted = List.sort compare pairs in
  let n = List.length sorted in
  let pick i = List.nth sorted (i * (n - 1) / 9) in
  let scatter = Util.Table.create ~columns:[ "predicted MB"; "measured MB" ] in
  for i = 0 to 9 do
    let p, m = pick i in
    Util.Table.add_row scatter
      [ Printf.sprintf "%.1f" (p /. 1e6); Printf.sprintf "%.1f" (m /. 1e6) ]
  done;
  Common.print_table ~name:"scatter" scatter

let figure8def () =
  validate ~id:"figure8d" ~title:"Model validation, order mlkn (Figure 8d)"
    ~perm:[ "b"; "m"; "l"; "k"; "n" ] ~spill:false;
  validate ~id:"figure8e" ~title:"Model validation, order mlnk (Figure 8e)"
    ~perm:[ "b"; "m"; "l"; "n"; "k" ] ~spill:false;
  validate ~id:"figure8f"
    ~title:"Model validation, mlkn with intermediate spilled (Figure 8f)"
    ~perm:[ "b"; "m"; "l"; "k"; "n" ] ~spill:true

let run_all () =
  figure8abc ();
  figure8def ()
