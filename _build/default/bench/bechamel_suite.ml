(* Bechamel micro-benchmarks of the framework's own hot paths: one
   Test.make per core operation backing the experiment tables. *)

open Bechamel
open Toolkit

let g2 () =
  Workloads.Gemm_configs.chain
    (Option.get (Workloads.Gemm_configs.by_name "G2"))

let c3 () =
  Workloads.Conv_configs.chain
    (Option.get (Workloads.Conv_configs.by_name "C3"))

let tests () =
  let gemm = g2 () in
  let conv = c3 () in
  let mlkn = [ "b"; "m"; "l"; "k"; "n" ] in
  let tiling =
    Analytical.Tiling.make gemm
      [ ("m", 64); ("n", 64); ("k", 64); ("l", 64) ]
  in
  let machine = Arch.Presets.xeon_gold_6240 in
  let level =
    Arch.Level.make ~name:"L2" ~capacity_bytes:(1024 * 1024)
      ~link_bandwidth_gbps:2000.0 ()
  in
  [
    (* Table III / Figure 8: one Algorithm-1 evaluation. *)
    Test.make ~name:"algorithm1-gemm-chain"
      (Staged.stage (fun () ->
           ignore (Analytical.Movement.analyze gemm ~perm:mlkn ~tiling)));
    (* Figures 5-7: one full inter-block optimization (24 orders). *)
    Test.make ~name:"planner-gemm-chain"
      (Staged.stage (fun () ->
           ignore
             (Analytical.Planner.optimize gemm ~capacity_bytes:(1024 * 1024) ())));
    (* Figures 5c/6c: one conv-chain optimization (120 orders). *)
    Test.make ~name:"planner-conv-chain"
      (Staged.stage (fun () ->
           ignore
             (Analytical.Planner.optimize conv ~capacity_bytes:(1024 * 1024) ())));
    (* Section VI-E: the full Chimera compilation. *)
    Test.make ~name:"chimera-optimize-g2"
      (Staged.stage (fun () ->
           ignore (Chimera.Compiler.optimize ~machine (g2 ()))));
    (* Figure 8: one simulator replay. *)
    Test.make ~name:"simulator-replay-g2"
      (Staged.stage (fun () ->
           ignore
             (Sim.Trace.measure_chain gemm ~levels:[ level ] ~perm:mlkn
                ~tiling ())));
    (* Figure 4: micro-kernel emission. *)
    Test.make ~name:"cpu-microkernel-emit"
      (Staged.stage (fun () ->
           ignore
             (Microkernel.Cpu.impl.Microkernel.Kernel_sig.emit ~block_m:96
                ~block_n:128 ~block_k:64)));
  ]

let run () =
  Common.section "bechamel" "Framework micro-benchmarks (Bechamel)";
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let table = Util.Table.create ~columns:[ "operation"; "time/run" ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let name = Test.Elt.name (List.hd (Test.elements test)) in
      let analysis =
        Analyze.one ols Instance.monotonic_clock
          (Hashtbl.find results name)
      in
      let ns =
        match Analyze.OLS.estimates analysis with
        | Some (x :: _) -> x
        | _ -> nan
      in
      let human =
        if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Util.Table.add_row table [ name; human ])
    (tests ());
  Util.Table.print table
