(* Figures 5, 6 and 7: subgraph fusion performance on CPU, GPU and NPU. *)

let gemm_chains ?softmax ?batch_override () =
  List.map
    (fun (c : Workloads.Gemm_configs.t) ->
      (c.name, Workloads.Gemm_configs.chain ?softmax ?batch_override c))
    Workloads.Gemm_configs.all

let conv_chains ?relu () =
  List.map
    (fun (c : Workloads.Conv_configs.t) ->
      (c.name, Workloads.Conv_configs.chain ?relu c))
    Workloads.Conv_configs.all

let figure machine ~id ~title ~pairs ~paper =
  Common.section id title;
  let configs = List.map fst pairs and chains = List.map snd pairs in
  Common.subgraph_figure ~machine ~configs ~chains ~label:title;
  Printf.printf "(paper average speedups: %s)\n" paper

let figure5a () =
  figure Arch.Presets.xeon_gold_6240 ~id:"figure5a"
    ~title:"CPU: batch GEMM + batch GEMM"
    ~pairs:(gemm_chains ())
    ~paper:"PyTorch 2.62x, Relay 4.78x, Ansor 1.40x, oneDNN 3.28x"

let figure5b () =
  figure Arch.Presets.xeon_gold_6240 ~id:"figure5b"
    ~title:"CPU: batch GEMM + softmax + batch GEMM"
    ~pairs:(gemm_chains ~softmax:true ())
    ~paper:"PyTorch 1.62x, Relay 7.89x, Ansor 2.29x"

let figure5c () =
  figure Arch.Presets.xeon_gold_6240 ~id:"figure5c"
    ~title:"CPU: convolution + convolution"
    ~pairs:(conv_chains ())
    ~paper:"Relay 2.38x, Ansor 1.94x"

let figure5d () =
  figure Arch.Presets.xeon_gold_6240 ~id:"figure5d"
    ~title:"CPU: convolution + ReLU + convolution"
    ~pairs:(conv_chains ~relu:true ())
    ~paper:"PyTorch 2.87x, Relay 2.30x, Ansor 1.71x"

let figure6a () =
  figure Arch.Presets.nvidia_a100 ~id:"figure6a"
    ~title:"GPU: batch GEMM + batch GEMM"
    ~pairs:(gemm_chains ())
    ~paper:
      "PyTorch 2.77x, TASO 3.30x, Relay 1.69x, Ansor 1.33x, TensorRT 2.29x, \
       TVM+Cutlass 1.51x"

let figure6b () =
  figure Arch.Presets.nvidia_a100 ~id:"figure6b"
    ~title:"GPU: batch GEMM + softmax + batch GEMM"
    ~pairs:(gemm_chains ~softmax:true ())
    ~paper:"PyTorch 2.74x, Relay 1.74x, Ansor 1.64x"

let figure6c () =
  figure Arch.Presets.nvidia_a100 ~id:"figure6c"
    ~title:"GPU: convolution + convolution"
    ~pairs:(conv_chains ())
    ~paper:"PyTorch 5.79x, TensorRT 2.01x (C6: no speedup, compute-bound)"

let figure6d () =
  figure Arch.Presets.nvidia_a100 ~id:"figure6d"
    ~title:"GPU: convolution + ReLU + convolution"
    ~pairs:(conv_chains ~relu:true ())
    ~paper:"Relay 4.32x, Ansor 1.30x"

let figure7 () =
  figure Arch.Presets.ascend_910 ~id:"figure7"
    ~title:"NPU: GEMM chain (batch 1)"
    ~pairs:(gemm_chains ~batch_override:1 ())
    ~paper:"TBE 2.39x, AKG 1.14x (large GEMMs UB-bound)"

let run_all () =
  figure5a ();
  figure5b ();
  figure5c ();
  figure5d ();
  figure6a ();
  figure6b ();
  figure6c ();
  figure6d ();
  figure7 ()
