lib/analytical/parallelism.ml: Array Float Ir List Movement Tiling
