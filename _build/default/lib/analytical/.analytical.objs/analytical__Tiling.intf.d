lib/analytical/tiling.mli: Format Ir
