lib/analytical/solver.ml: Ir List Movement Tiling Util
