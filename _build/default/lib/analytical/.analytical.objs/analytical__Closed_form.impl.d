lib/analytical/closed_form.ml: Float
