lib/analytical/parallelism.mli: Ir Tiling
