lib/analytical/closed_form.mli:
