lib/analytical/solver.mli: Ir Movement Tiling
