lib/analytical/permutations.mli: Ir
