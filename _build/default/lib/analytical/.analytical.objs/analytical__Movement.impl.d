lib/analytical/movement.ml: Hashtbl Ir List Printf String Tiling
