lib/analytical/planner.ml: Arch Closed_form Format Ir List Movement Parallelism Permutations Printf Solver String Tensor Tiling
