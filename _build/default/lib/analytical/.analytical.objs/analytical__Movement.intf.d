lib/analytical/movement.mli: Ir Tiling
