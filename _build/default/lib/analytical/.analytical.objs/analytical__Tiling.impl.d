lib/analytical/tiling.ml: Format Ir List Printf String Util
