lib/analytical/permutations.ml: Ir List Movement Printf String Util
