lib/analytical/planner.mli: Arch Format Ir Movement Tiling
