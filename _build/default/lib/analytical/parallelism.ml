let parallel_axes (chain : Ir.Chain.t) =
  List.filter
    (fun axis ->
      List.for_all
        (fun (s : Ir.Chain.stage) ->
          Ir.Operator.uses_axis s.op axis
          && not (Ir.Operator.is_reduction s.op axis))
        chain.stages)
    (Movement.fused_axes chain)

let spans chain tiling axis =
  let extent = Ir.Chain.extent_of chain axis in
  let tile = Tiling.get tiling axis in
  let full = extent / tile and rem = extent mod tile in
  let spans = List.init full (fun _ -> float_of_int tile) in
  if rem = 0 then spans else spans @ [ float_of_int rem ]

let task_count chain tiling =
  List.fold_left
    (fun acc axis -> acc *. float_of_int (Tiling.trip_count tiling axis))
    1.0 (parallel_axes chain)

let task_weights chain tiling =
  List.fold_left
    (fun acc axis ->
      List.concat_map
        (fun w -> List.map (fun s -> w *. s) (spans chain tiling axis))
        acc)
    [ 1.0 ] (parallel_axes chain)

let lpt_makespan weights ~cores =
  let loads = Array.make cores 0.0 in
  List.iter
    (fun w ->
      let victim = ref 0 in
      for c = 1 to cores - 1 do
        if loads.(c) < loads.(!victim) then victim := c
      done;
      loads.(!victim) <- loads.(!victim) +. w)
    (List.sort (fun a b -> compare b a) weights);
  Array.fold_left Float.max 0.0 loads

let efficiency chain tiling ~cores =
  if cores <= 1 then 1.0
  else begin
    let tasks = task_count chain tiling in
    if tasks > 20_000.0 then Float.min 1.0 (tasks /. float_of_int cores)
    else begin
      let weights = task_weights chain tiling in
      let total = List.fold_left ( +. ) 0.0 weights in
      let ideal = total /. float_of_int cores in
      let makespan = lpt_makespan weights ~cores in
      if makespan <= 0.0 then 1.0 else ideal /. makespan
    end
  end
