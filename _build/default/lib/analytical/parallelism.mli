(** Which loops of a fused chain can be partitioned across cores, and
    how well a given tiling fills them.

    A loop is safely parallel when every stage that uses it treats it as
    a spatial (non-reduction) loop and every stage iterates it — cores
    then own disjoint slices of every stage's work and of the
    intermediate, with no cross-core reduction or recomputation.  For
    the GEMM chain this is [b, m]; for convolution chains [n, oh, ow];
    for a single operator, all of its spatial loops. *)

val parallel_axes : Ir.Chain.t -> string list
(** The safely-parallel fused axes, in chain order. *)

val task_count : Ir.Chain.t -> Tiling.t -> float
(** Number of independent parallel tasks the tiling produces: the
    product of the parallel axes' trip counts. *)

val task_weights : Ir.Chain.t -> Tiling.t -> float list
(** The relative cost of each task: the product of its per-axis block
    spans (edge blocks are smaller).  Length equals {!task_count}
    (capped — see {!efficiency}). *)

val efficiency : Ir.Chain.t -> Tiling.t -> cores:int -> float
(** Load-balance efficiency in (0, 1]: ideal time (total work / cores)
    over the makespan of a longest-processing-time schedule of the
    tasks.  Above 20000 tasks the imbalance is negligible and
    [min 1 (tasks/cores)] is returned. *)
