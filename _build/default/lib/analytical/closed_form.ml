type solution = { t_m : int; t_n : int; t_k : int; t_l : int; dv_elems : float }

let default_alpha = 16

let t_star ~capacity_elems ~alpha =
  let a = float_of_int alpha in
  let mc = float_of_int capacity_elems in
  -.a +. sqrt ((a *. a) +. mc)

let solve ~m ~n ~k ~l ~capacity_elems ?(alpha = default_alpha) () =
  if capacity_elems <= 3 * alpha * alpha then
    invalid_arg "Closed_form.solve: capacity below the minimal alpha block";
  let t = t_star ~capacity_elems ~alpha in
  let clampf x bound = min (max 1 (int_of_float (floor x))) bound in
  let t_m = clampf t m and t_l = clampf t l in
  let t_n = min alpha n and t_k = min alpha k in
  let dv_elems =
    2.0 *. float_of_int m *. float_of_int l *. float_of_int (k + n) /. t
  in
  { t_m; t_n; t_k; t_l; dv_elems }

let dv_optimal_elems ~m ~n ~k ~l ~capacity_elems ?(alpha = default_alpha) () =
  let t = t_star ~capacity_elems ~alpha in
  2.0 *. float_of_int m *. float_of_int l *. float_of_int (k + n) /. t

let approximation_ratio_bound ~m ~l ~capacity_elems =
  let sqrt_mc = sqrt (float_of_int capacity_elems) in
  let bound x =
    let xf = float_of_int x in
    1.0 +. (sqrt_mc /. xf) +. (1.0 /. Float.min xf sqrt_mc)
  in
  Float.max (bound m) (bound l)
