(** The paper's closed-form Lagrange-multiplier solution for the two-GEMM
    chain under the [mlkn] family of orders (Section IV-B), plus its
    approximation-gap bound.  Used as a solver fast path, a starting
    point for the general optimizer, and a cross-check in tests. *)

type solution = {
  t_m : int;
  t_n : int;
  t_k : int;
  t_l : int;
  dv_elems : float;  (** predicted data movement volume, in elements. *)
}

val default_alpha : int
(** The lower bound [alpha] imposed on the free variables [T_N, T_K]
    (16: one native micro-kernel tile). *)

val solve :
  m:int -> n:int -> k:int -> l:int -> capacity_elems:int -> ?alpha:int ->
  unit -> solution
(** Optimal real-valued tiles
    [T_M* = T_L* = -alpha + sqrt(alpha^2 + MC)], [T_N* = T_K* = alpha],
    floor-rounded and clamped to the problem extents, with
    [DV* = 2*M*L*(K+N) / T_M*].  Raises [Invalid_argument] when even the
    minimal [alpha]-sized block exceeds capacity. *)

val dv_optimal_elems :
  m:int -> n:int -> k:int -> l:int -> capacity_elems:int -> ?alpha:int ->
  unit -> float
(** The un-rounded optimum [DV* = 2*M*L*(K+N) / T_M*]. *)

val approximation_ratio_bound :
  m:int -> l:int -> capacity_elems:int -> float
(** The paper's bound on [DV_app / DV*]:
    [max over X in {M, L} of 1 + sqrt(MC)/X + 1/min(X, sqrt(MC))]. *)
