(** Algorithm 1 of the paper: analytical data-movement volume and memory
    usage of an operator chain under a block execution order and a
    decomposition-parameter vector. *)

type per_tensor = {
  tensor : string;
  footprint_bytes : int;  (** DF: one block's data-tile size. *)
  movement_bytes : float;
      (** DM: total bytes this tensor moves across the boundary of the
          target memory level (0 for intermediates). *)
}

type result = {
  dv_bytes : float;  (** total data movement volume (the DV output). *)
  mu_bytes : int;  (** peak per-block memory usage (the MU output). *)
  per_tensor : per_tensor list;  (** one entry per distinct tensor ref. *)
  per_op_mu : (string * int) list;  (** block working set per operator. *)
}

val fused_axes : Ir.Chain.t -> string list
(** Names of the axes used by at least one fused-stage operator, in chain
    declaration order — the [I] independent loops of the reordering
    space (a conv chain's standalone-only axes are excluded). *)

val validate_perm : Ir.Chain.t -> string list -> unit
(** Raises [Invalid_argument] unless the list is a permutation of
    {!fused_axes}. *)

val analyze :
  ?charge_intermediates:bool -> Ir.Chain.t -> perm:string list ->
  tiling:Tiling.t -> result
(** Run Algorithm 1.  [perm] is outermost-first; blocks execute from the
    innermost (right-most) loop outward.  Only the chain's IO tensors
    are charged; intermediates are pinned on chip.  Producer-private
    loops are excluded before consumer stages (observation 3).
    [charge_intermediates] prices the intermediates as if they spilled —
    the no-reuse configuration of Figure 8f. *)

val reuse_axes : Ir.Chain.t -> perm:string list -> tensor:string -> string list
(** The axes along which the named IO tensor is *reused* under [perm]:
    scanning from the innermost loop outward within the owning operator's
    loop nest, the run of loops that do not index the tensor before the
    first one that does (the per-tensor columns of Figure 2's table).
    Returns [] for intermediates (always reused on chip). *)

val movement_expr :
  Ir.Chain.t -> perm:string list -> tensor:string -> string
(** Human-readable symbolic DM expression for one tensor, e.g.
    ["M*K*ceil(L/T_l)"] — the Table III view, used by the bench
    harness and tests. *)
