type t = {
  movable : string list;
  pinned_outer : string list;
  pinned_inner : string list;
}

let full_tile_threshold = 3

let indexes_every_io_tensor (chain : Ir.Chain.t) axis =
  let io = Ir.Chain.io_names chain in
  List.for_all
    (fun name ->
      let r = Ir.Chain.find_ref chain name in
      Ir.Access.uses_axis r.Ir.Operator.access axis)
    io

let classify chain =
  let fused = Movement.fused_axes chain in
  let extent = Ir.Chain.extent_of chain in
  let pinned_inner =
    List.filter (fun a -> extent a > 1 && extent a <= full_tile_threshold) fused
  in
  let rest = List.filter (fun a -> not (List.mem a pinned_inner)) fused in
  let pinned_outer =
    List.filter
      (fun a -> extent a = 1 || indexes_every_io_tensor chain a)
      rest
  in
  let movable =
    List.filter (fun a -> not (List.mem a pinned_outer)) rest
  in
  { movable; pinned_outer; pinned_inner }

let full_tile_axes chain = (classify chain).pinned_inner

let candidates chain =
  let { movable; pinned_outer; pinned_inner } = classify chain in
  if List.length movable > 7 then
    invalid_arg
      (Printf.sprintf
         "Permutations.candidates: %d movable axes (%s) is too many"
         (List.length movable)
         (String.concat "," movable));
  List.map
    (fun p -> pinned_outer @ p @ pinned_inner)
    (Util.Perm.all movable)

let count chain =
  Util.Perm.factorial (List.length (classify chain).movable)
