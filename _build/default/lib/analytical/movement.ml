type per_tensor = {
  tensor : string;
  footprint_bytes : int;
  movement_bytes : float;
}

type result = {
  dv_bytes : float;
  mu_bytes : int;
  per_tensor : per_tensor list;
  per_op_mu : (string * int) list;
}

let fused_axes (chain : Ir.Chain.t) =
  let used name =
    List.exists
      (fun (s : Ir.Chain.stage) -> Ir.Operator.uses_axis s.op name)
      chain.stages
  in
  List.filter used (Ir.Axis.names chain.axes)

let validate_perm chain perm =
  let expected = List.sort compare (fused_axes chain) in
  let got = List.sort compare perm in
  if expected <> got then
    invalid_arg
      (Printf.sprintf
         "Movement: perm [%s] is not a permutation of the fused axes [%s]"
         (String.concat "," perm)
         (String.concat "," expected))

(* Data movement of one tensor reference within one operator: the inner
   loop of Algorithm 1 (lines 8-16).  [active] is the current permutation
   with producer-private loops already removed, innermost first.

   Refinement over the paper's listing: a loop breaks the tensor's reuse
   only if it *iterates* (trip count > 1) — a loop whose tile covers its
   whole extent presents the identical data tile at its single block, so
   it cannot replace it (observation 1 applied at block granularity; the
   cache simulator behaves the same way).  With every trip count > 1 the
   two formulations coincide. *)
let ref_movement (op : Ir.Operator.t) (r : Ir.Operator.tensor_ref)
    ~active_innermost_first ~tiling =
  let df = Ir.Operator.tile_footprint_bytes r ~tile_of:(Tiling.tile_of tiling) in
  let dm = ref (float_of_int df) in
  let keep_reuse = ref true in
  List.iter
    (fun l ->
      if Ir.Operator.uses_axis op l then begin
        let trips = Tiling.trip_count tiling l in
        if Ir.Access.uses_axis r.access l && trips > 1 then
          keep_reuse := false;
        if not !keep_reuse then dm := !dm *. float_of_int trips
      end)
    active_innermost_first;
  (df, !dm)

let analyze ?(charge_intermediates = false) (chain : Ir.Chain.t) ~perm ~tiling =
  validate_perm chain perm;
  let io =
    if charge_intermediates then Ir.Chain.tensor_names chain
    else Ir.Chain.io_names chain
  in
  let innermost_first = List.rev perm in
  let active = ref innermost_first in
  let dv = ref 0.0 in
  let mu = ref 0 in
  let per_tensor = Hashtbl.create 8 in
  let per_op_mu = ref [] in
  List.iter
    (fun (stage : Ir.Chain.stage) ->
      let op = stage.op in
      let total_df = ref 0 in
      List.iter
        (fun (r : Ir.Operator.tensor_ref) ->
          let df, dm =
            ref_movement op r ~active_innermost_first:!active ~tiling
          in
          total_df := !total_df + df;
          let dm = if List.mem r.tensor io then dm else 0.0 in
          if List.mem r.tensor io then dv := !dv +. dm;
          (match Hashtbl.find_opt per_tensor r.tensor with
          | None ->
              Hashtbl.add per_tensor r.tensor
                { tensor = r.tensor; footprint_bytes = df; movement_bytes = dm }
          | Some prev ->
              Hashtbl.replace per_tensor r.tensor
                {
                  prev with
                  footprint_bytes = max prev.footprint_bytes df;
                  movement_bytes = prev.movement_bytes +. dm;
                });
          ())
        (Ir.Operator.all_refs op);
      per_op_mu := (op.Ir.Operator.name, !total_df) :: !per_op_mu;
      mu := max !mu !total_df;
      (* Observation 3: loops private to this producer never iterate the
         consumers' tensors — drop them before the next stage. *)
      active :=
        List.filter
          (fun l ->
            not
              (Ir.Operator.uses_axis op l && Ir.Chain.axis_is_private chain l))
          !active)
    chain.stages;
  let per_tensor =
    (* Report in first-use order. *)
    List.filter_map (Hashtbl.find_opt per_tensor) (Ir.Chain.tensor_names chain)
  in
  {
    dv_bytes = !dv;
    mu_bytes = !mu;
    per_tensor;
    per_op_mu = List.rev !per_op_mu;
  }

let owning_op (chain : Ir.Chain.t) tensor =
  let refs_tensor (s : Ir.Chain.stage) =
    List.exists
      (fun (r : Ir.Operator.tensor_ref) -> r.tensor = tensor)
      (Ir.Operator.all_refs s.op)
  in
  match List.find_opt refs_tensor chain.stages with
  | Some s -> s.op
  | None -> raise Not_found

let tensor_access (op : Ir.Operator.t) tensor =
  let r =
    List.find
      (fun (r : Ir.Operator.tensor_ref) -> r.tensor = tensor)
      (Ir.Operator.all_refs op)
  in
  r.access

let reuse_axes (chain : Ir.Chain.t) ~perm ~tensor =
  validate_perm chain perm;
  if Ir.Chain.is_intermediate chain tensor then []
  else
    let op = owning_op chain tensor in
    let access = tensor_access op tensor in
    (* Loops outside the op's nest never replace this tensor's tile. *)
    let outside =
      List.filter (fun l -> not (Ir.Operator.uses_axis op l)) perm
    in
    let rec inner_run acc = function
      | [] -> acc
      | l :: rest ->
          if not (Ir.Operator.uses_axis op l) then inner_run acc rest
          else if Ir.Access.uses_axis access l then acc
          else inner_run (l :: acc) rest
    in
    let inside = inner_run [] (List.rev perm) in
    List.filter (fun l -> List.mem l outside || List.mem l inside) perm

let movement_expr (chain : Ir.Chain.t) ~perm ~tensor =
  validate_perm chain perm;
  if Ir.Chain.is_intermediate chain tensor then "0"
  else
    let op = owning_op chain tensor in
    let access = tensor_access op tensor in
    (* Loops that multiply the footprint: replay Algorithm 1's flag. *)
    let multipliers =
      let keep_reuse = ref true in
      List.filter
        (fun l ->
          if not (Ir.Operator.uses_axis op l) then false
          else begin
            if Ir.Access.uses_axis access l then keep_reuse := false;
            not !keep_reuse
          end)
        (List.rev perm)
    in
    (* Footprint factors: one per tensor dimension. *)
    let simple_axis (d : Ir.Access.dim) =
      match d.terms with
      | [ { axis; coeff = 1 } ] when d.offset = 0 -> Some axis
      | _ -> None
    in
    let upper name = String.uppercase_ascii name in
    let fp_simple, fp_complex =
      List.partition_map
        (fun (d : Ir.Access.dim) ->
          match simple_axis d with
          | Some a -> Left a
          | None ->
              let term_str (t : Ir.Access.term) =
                if t.coeff = 1 then Printf.sprintf "(T_%s-1)" t.axis
                else Printf.sprintf "%d*(T_%s-1)" t.coeff t.axis
              in
              Right
                ("(" ^ String.concat "+" (List.map term_str d.terms) ^ "+1)"))
        access
    in
    (* Cancel T_x * ceil(X/T_x) -> X where possible. *)
    let cancelled, remaining_mults =
      List.fold_left
        (fun (fp, mults) axis ->
          if List.mem axis mults then
            (upper axis :: fp, List.filter (fun m -> m <> axis) mults)
          else (Printf.sprintf "T_%s" axis :: fp, mults))
        ([], multipliers)
        fp_simple
    in
    let ceil_strs =
      List.map
        (fun a -> Printf.sprintf "ceil(%s/T_%s)" (upper a) a)
        remaining_mults
    in
    String.concat "*" (List.rev cancelled @ fp_complex @ ceil_strs)
