type node = {
  id : int;
  name : string;
  op : Ops.t;
  inputs : int list;
  shape : int list;
}

type t = {
  gname : string;
  mutable rev_nodes : node list;
  mutable next_id : int;
}

type value = { graph : t; id : int; vshape : int list }

let create ?(name = "graph") () = { gname = name; rev_nodes = []; next_id = 0 }

let add_node t ~name ~op ~inputs ~shape =
  let id = t.next_id in
  t.next_id <- id + 1;
  let name = if name = "" then Printf.sprintf "%s_%d" (Ops.to_string op) id else name in
  t.rev_nodes <- { id; name; op; inputs; shape } :: t.rev_nodes;
  { graph = t; id; vshape = shape }

let same_graph t values =
  List.iter
    (fun v ->
      if v.graph != t then invalid_arg "Graph: value from a different graph")
    values

let input t ~name ~shape =
  List.iter
    (fun d -> if d <= 0 then invalid_arg "Graph.input: non-positive extent")
    shape;
  add_node t ~name ~op:Ops.Input ~inputs:[] ~shape

let apply t ?(name = "") op args =
  same_graph t args;
  match Ops.infer_shape op (List.map (fun v -> v.vshape) args) with
  | Error msg -> invalid_arg ("Graph: " ^ msg)
  | Ok shape ->
      add_node t ~name ~op ~inputs:(List.map (fun v -> v.id) args) ~shape

let batch_gemm t ?name x w = apply t ?name Ops.Batch_gemm [ x; w ]

let conv2d t ?name ~stride x w =
  match w.vshape with
  | [ _; _; kh; kw ] -> apply t ?name (Ops.Conv2d { stride; kh; kw }) [ x; w ]
  | _ -> invalid_arg "Graph.conv2d: weight must be rank 4"

let softmax t ?name x = apply t ?name Ops.Softmax [ x ]
let relu t ?name x = apply t ?name Ops.Relu [ x ]
let gelu t ?name x = apply t ?name Ops.Gelu [ x ]
let layernorm t ?name x = apply t ?name Ops.Layernorm [ x ]
let add t ?name x y = apply t ?name Ops.Add [ x; y ]
let shape v = v.vshape
let nodes t = List.rev t.rev_nodes

let node t id =
  match List.find_opt (fun (n : node) -> n.id = id) t.rev_nodes with
  | Some n -> n
  | None -> raise Not_found

let consumers t id =
  List.filter_map
    (fun (n : node) -> if List.mem id n.inputs then Some n.id else None)
    (nodes t)

let value_id v = v.id
let graph_name t = t.gname

let pp fmt t =
  List.iter
    (fun (n : node) ->
      Format.fprintf fmt "%3d %-12s %-10s <- %s  %s@." n.id n.name
        (Ops.to_string n.op)
        (String.concat "," (List.map string_of_int n.inputs))
        ("[" ^ String.concat "x" (List.map string_of_int n.shape) ^ "]"))
    (nodes t)
