(** Graph partitioning: find the compute-intensive operator chains
    Chimera fuses, fold eligible element-wise epilogues into them, and
    group the remaining memory-intensive operators by the standard
    element-wise fusion rules (Section IV-B).

    Recognised chain patterns (the paper's two workload families, plus
    the three-GEMM extension):
    - [bmm -> (softmax)? -> bmm (-> bmm)?]
    - [conv -> (relu)? -> conv (-> relu)?]
    every intermediate having a single consumer that reads it as its
    first (data) argument. *)

type segment =
  | Ci_chain of { chain : Ir.Chain.t; node_ids : int list }
      (** a fused compute-intensive chain (possibly single-stage). *)
  | Mi_group of { node_ids : int list; bytes : float; flops : float }
      (** one fused element-wise kernel: [bytes] is the DRAM traffic of
          its external inputs and outputs, interior values are free. *)

type t = { graph : Builder.t; segments : segment list }
(** A partition, segments in topological order. *)

val partition : Builder.t -> t
(** Partition a graph.  Raises [Invalid_argument] if a recognised CI
    pattern has shapes the chain builders cannot express. *)

val chains : t -> Ir.Chain.t list
(** The compute-intensive chains, in order. *)

val fused_ci_ops : t -> int
(** Number of CI operators that ended up in a multi-stage chain. *)

val describe : t -> string
(** One line per segment. *)
