type segment =
  | Ci_chain of { chain : Ir.Chain.t; node_ids : int list }
  | Mi_group of { node_ids : int list; bytes : float; flops : float }

type t = { graph : Builder.t; segments : segment list }

let fp16_bytes shape = 2.0 *. float_of_int (List.fold_left ( * ) 1 shape)

let single_consumer g id =
  match Builder.consumers g id with [ c ] -> Some c | _ -> None

(* The consumer must read the value as its data (first) argument —
   reading it as a weight is not the chain pattern. *)
let consumes_as_data g ~consumer ~value =
  match (Builder.node g consumer).Builder.inputs with
  | first :: _ -> first = value
  | [] -> false

let follow_to g ~from ~accept_unary =
  (* From node [from], step to its single consumer; optionally pass
     through one eligible unary op.  Returns (unary_id option, next). *)
  match single_consumer g from with
  | None -> None
  | Some next -> (
      let n = Builder.node g next in
      match n.Builder.op with
      | op when accept_unary op && consumes_as_data g ~consumer:next ~value:from
        -> (
          match single_consumer g next with
          | Some next2 when consumes_as_data g ~consumer:next2 ~value:next ->
              Some (Some next, next2)
          | _ -> None)
      | _ ->
          if consumes_as_data g ~consumer:next ~value:from then
            Some (None, next)
          else None)

let dims g id = (Builder.node g id).Builder.shape

(* ------------------------------------------------------------------ *)
(* Pattern matching and lowering                                       *)
(* ------------------------------------------------------------------ *)

let lower_gemm_chain g ~name ~n1 ~softmax ~n2 ~n3 =
  let node1 = Builder.node g n1 and node2 = Builder.node g n2 in
  let x = List.nth node1.Builder.inputs 0 in
  let w2 = List.nth node2.Builder.inputs 1 in
  match (dims g x, dims g w2) with
  | [ b; m; k ], [ _; l; n ] -> (
      match n3 with
      | None ->
          Ir.Chain.batch_gemm_chain ~name ~batch:b ~m ~n ~k ~l
            ~softmax:(softmax <> None) ()
      | Some n3 ->
          let w3 = List.nth (Builder.node g n3).Builder.inputs 1 in
          let p = List.nth (dims g w3) 2 in
          Ir.Chain.batch_gemm_chain3 ~name ~batch:b ~m ~k ~l ~n ~p ())
  | _ -> invalid_arg "Partition: malformed batch_gemm shapes"

let lower_conv_chain g ~name ~c1 ~relu1 ~c2 ~relu2 =
  let node1 = Builder.node g c1 and node2 = Builder.node g c2 in
  let x = List.nth node1.Builder.inputs 0 in
  let square = function
    | Ops.Conv2d { stride; kh; kw } when kh = kw -> (stride, kh)
    | Ops.Conv2d _ ->
        invalid_arg "Partition: non-square convolution kernels unsupported"
    | _ -> assert false
  in
  let st1, k1 = square node1.Builder.op in
  let st2, k2 = square node2.Builder.op in
  match (dims g x, dims g c1, dims g c2) with
  | [ batch; ic; h; w ], [ _; oc1; _; _ ], [ _; oc2; _; _ ] ->
      let chain =
        Ir.Chain.conv_chain ~name ~batch ~ic ~h ~w ~oc1 ~oc2 ~st1 ~st2 ~k1
          ~k2 ()
      in
      let epi flag = if flag then Ir.Chain.Relu else Ir.Chain.Identity in
      Ir.Chain.with_epilogues chain [ epi relu1; epi relu2 ]
  | _ -> invalid_arg "Partition: malformed conv2d shapes"

let lower_single g id ~epilogue_node =
  let node = Builder.node g id in
  let name = node.Builder.name in
  match node.Builder.op with
  | Ops.Batch_gemm -> (
      match dims g (List.nth node.Builder.inputs 0) with
      | [ b; m; k ] ->
          let n = List.nth node.Builder.shape 2 in
          let chain = Ir.Chain.single_batch_gemm ~name ~batch:b ~m ~n ~k () in
          let epi =
            match epilogue_node with
            | None -> Ir.Chain.Identity
            | Some e -> (
                match (Builder.node g e).Builder.op with
                | Ops.Relu -> Ir.Chain.Relu
                | Ops.Softmax -> Ir.Chain.Softmax { axis = "n" }
                | _ -> Ir.Chain.Identity)
          in
          Ir.Chain.with_epilogues chain [ epi ]
      | _ -> invalid_arg "Partition: malformed batch_gemm input")
  | Ops.Conv2d { stride; kh; kw } -> (
      if kh <> kw then
        invalid_arg "Partition: non-square convolution kernels unsupported";
      match dims g (List.nth node.Builder.inputs 0) with
      | [ batch; ic; h; w ] ->
          let oc = List.nth node.Builder.shape 1 in
          let relu =
            match epilogue_node with
            | Some e -> (Builder.node g e).Builder.op = Ops.Relu
            | None -> false
          in
          Ir.Chain.single_conv2d ~name ~batch ~ic ~h ~w ~oc ~k:kh ~st:stride
            ~relu ()
      | _ -> invalid_arg "Partition: malformed conv2d input")
  | _ -> invalid_arg "Partition: lower_single on a non-CI node"

(* ------------------------------------------------------------------ *)
(* The partitioning pass                                               *)
(* ------------------------------------------------------------------ *)

let partition g =
  let nodes = Builder.nodes g in
  let matched : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let mark ids = List.iter (fun id -> Hashtbl.replace matched id ()) ids in
  let free id = not (Hashtbl.mem matched id) in
  let segments = ref [] in
  let push s = segments := s :: !segments in
  (* Pass 1: multi-stage CI chains, scanning producers in order. *)
  List.iter
    (fun (n : Builder.node) ->
      if free n.Builder.id then
        match n.Builder.op with
        | Ops.Batch_gemm -> (
            match
              follow_to g ~from:n.Builder.id ~accept_unary:(fun op ->
                  op = Ops.Softmax)
            with
            | Some (softmax, next)
              when (Builder.node g next).Builder.op = Ops.Batch_gemm
                   && free next
                   && Option.fold ~none:true ~some:free softmax -> (
                (* Optionally extend to a third plain GEMM. *)
                let third =
                  if softmax <> None then None
                  else
                    match
                      follow_to g ~from:next ~accept_unary:(fun _ -> false)
                    with
                    | Some (None, n3)
                      when (Builder.node g n3).Builder.op = Ops.Batch_gemm
                           && free n3 ->
                        Some n3
                    | _ -> None
                in
                let name =
                  Printf.sprintf "%s.%s" (Builder.graph_name g) n.Builder.name
                in
                match
                  lower_gemm_chain g ~name ~n1:n.Builder.id ~softmax ~n2:next
                    ~n3:third
                with
                | chain ->
                    let node_ids =
                      [ n.Builder.id ]
                      @ Option.to_list softmax
                      @ [ next ]
                      @ Option.to_list third
                    in
                    mark node_ids;
                    push (Ci_chain { chain; node_ids })
                | exception Invalid_argument _ -> ())
            | _ -> ())
        | Ops.Conv2d _ -> (
            match
              follow_to g ~from:n.Builder.id ~accept_unary:(fun op ->
                  op = Ops.Relu)
            with
            | Some (relu1, next)
              when (match (Builder.node g next).Builder.op with
                   | Ops.Conv2d _ -> true
                   | _ -> false)
                   && free next
                   && Option.fold ~none:true ~some:free relu1 -> (
                (* Fold a trailing single-consumer ReLU into stage 2. *)
                let relu2 =
                  match single_consumer g next with
                  | Some r
                    when (Builder.node g r).Builder.op = Ops.Relu && free r ->
                      Some r
                  | _ -> None
                in
                let name =
                  Printf.sprintf "%s.%s" (Builder.graph_name g) n.Builder.name
                in
                match
                  lower_conv_chain g ~name ~c1:n.Builder.id
                    ~relu1:(relu1 <> None) ~c2:next ~relu2:(relu2 <> None)
                with
                | chain ->
                    let node_ids =
                      [ n.Builder.id ]
                      @ Option.to_list relu1
                      @ [ next ]
                      @ Option.to_list relu2
                    in
                    mark node_ids;
                    push (Ci_chain { chain; node_ids })
                | exception Invalid_argument _ -> ())
            | _ -> ())
        | _ -> ())
    nodes;
  (* Pass 2: remaining CI ops become single-stage chains, folding one
     trailing unary epilogue. *)
  List.iter
    (fun (n : Builder.node) ->
      if free n.Builder.id && Ops.classify n.Builder.op = Some Ops.Compute_intensive
      then begin
        let epilogue_node =
          match single_consumer g n.Builder.id with
          | Some e
            when free e
                 && (match (Builder.node g e).Builder.op with
                    | Ops.Relu | Ops.Softmax -> true
                    | _ -> false) ->
              Some e
          | _ -> None
        in
        let chain = lower_single g n.Builder.id ~epilogue_node in
        let node_ids = n.Builder.id :: Option.to_list epilogue_node in
        mark node_ids;
        push (Ci_chain { chain; node_ids })
      end)
    nodes;
  (* Pass 3: remaining MI ops fuse into element-wise groups (connected
     components over producer-consumer edges). *)
  let remaining_mi =
    List.filter
      (fun (n : Builder.node) ->
        free n.Builder.id
        && Ops.classify n.Builder.op = Some Ops.Memory_intensive)
      nodes
  in
  let group_of : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let rec root i =
    match Hashtbl.find_opt group_of i with
    | Some p when p <> i -> root p
    | _ -> i
  in
  let union a b =
    let ra = root a and rb = root b in
    if ra <> rb then Hashtbl.replace group_of rb ra
  in
  List.iter
    (fun (n : Builder.node) ->
      Hashtbl.replace group_of n.Builder.id n.Builder.id)
    remaining_mi;
  List.iter
    (fun (n : Builder.node) ->
      List.iter
        (fun input ->
          if Hashtbl.mem group_of input then union input n.Builder.id)
        n.Builder.inputs)
    remaining_mi;
  let groups : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (n : Builder.node) ->
      let r = root n.Builder.id in
      match Hashtbl.find_opt groups r with
      | Some l -> l := n.Builder.id :: !l
      | None -> Hashtbl.add groups r (ref [ n.Builder.id ]))
    remaining_mi;
  Hashtbl.iter
    (fun _ members ->
      let ids = List.sort compare !members in
      let in_group i = List.mem i ids in
      let bytes = ref 0.0 and flops = ref 0.0 in
      List.iter
        (fun id ->
          let n = Builder.node g id in
          (* External reads. *)
          List.iter
            (fun input ->
              if not (in_group input) then
                bytes := !bytes +. fp16_bytes (dims g input))
            n.Builder.inputs;
          (* External writes: consumed outside the group or a graph
             output. *)
          let consumers = Builder.consumers g id in
          if consumers = [] || List.exists (fun c -> not (in_group c)) consumers
          then bytes := !bytes +. fp16_bytes n.Builder.shape;
          flops :=
            !flops
            +. Ops.flops n.Builder.op
                 ~inputs:(List.map (dims g) n.Builder.inputs)
                 ~output:n.Builder.shape)
        ids;
      push (Mi_group { node_ids = ids; bytes = !bytes; flops = !flops }))
    groups;
  let min_id = function
    | Ci_chain { node_ids; _ } | Mi_group { node_ids; _ } ->
        List.fold_left min max_int node_ids
  in
  let segments =
    List.sort (fun a b -> compare (min_id a) (min_id b)) !segments
  in
  { graph = g; segments }

let chains t =
  List.filter_map
    (function Ci_chain { chain; _ } -> Some chain | Mi_group _ -> None)
    t.segments

let fused_ci_ops t =
  List.fold_left
    (fun acc -> function
      | Ci_chain { chain; _ } when Ir.Chain.stage_count chain > 1 ->
          acc + Ir.Chain.stage_count chain
      | _ -> acc)
    0 t.segments

let describe t =
  String.concat "\n"
    (List.map
       (function
         | Ci_chain { chain; node_ids } ->
             Printf.sprintf "ci-chain %-24s stages=%d nodes=[%s]"
               chain.Ir.Chain.name
               (Ir.Chain.stage_count chain)
               (String.concat "," (List.map string_of_int node_ids))
         | Mi_group { node_ids; bytes; _ } ->
             Printf.sprintf "mi-group %.1f KB nodes=[%s]" (bytes /. 1024.0)
               (String.concat "," (List.map string_of_int node_ids)))
       t.segments)
