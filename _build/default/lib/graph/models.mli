(** Prebuilt compute DAGs: the model fragments the paper's workloads
    come from, expressed in the graph frontend. *)

val attention_layer :
  ?name:string -> heads:int -> seq:int -> head_dim:int -> unit -> Builder.t
(** The self-attention core of Figure 1a: scores = Q K^T, softmax,
    context = scores V. *)

val add_transformer_block :
  Builder.t -> layer:int -> hidden:int -> heads:int -> seq:int -> ffn:int ->
  Builder.value -> Builder.value
(** Append one encoder block to a graph, returning the block output. *)

val transformer_block :
  ?name:string -> hidden:int -> heads:int -> seq:int -> ffn:int -> unit ->
  Builder.t
(** A full encoder block: QKV projection, attention BMM chain with
    softmax, output projection, residual adds, layernorms, GELU FFN. *)

val encoder_stack :
  ?name:string -> layers:int -> hidden:int -> heads:int -> seq:int ->
  ffn:int -> unit -> Builder.t
(** A whole encoder network: [layers] chained blocks (e.g. Bert-Base is
    [~layers:12 ~hidden:768 ~heads:12 ~seq:512 ~ffn:3072]). *)

val conv_block :
  ?name:string -> ic:int -> h:int -> w:int -> oc1:int -> oc2:int ->
  st1:int -> st2:int -> k1:int -> k2:int -> unit -> Builder.t
(** The CNN fragment of Figure 1b: conv, ReLU, conv, ReLU. *)

val mlp_mixer_block :
  ?name:string -> tokens:int -> channels:int -> hidden:int -> unit ->
  Builder.t
(** Two back-to-back token-mixing GEMMs followed by a third projection —
    a three-GEMM fusion opportunity. *)

val fire_module :
  ?name:string -> ic:int -> h:int -> w:int -> squeeze:int -> expand:int ->
  unit -> Builder.t
(** A SqueezeNet fire module: squeeze 1x1 conv + ReLU feeding *two*
    expand branches — the squeeze output has two consumers, so the
    partitioner must refuse to fuse it into either branch. *)
