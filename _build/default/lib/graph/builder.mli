(** The compute-DAG builder: the domain-specific frontend a model is
    described in before Chimera partitions and compiles it (Figure 3). *)

type t
(** A mutable graph under construction. *)

type value
(** A tensor value produced by a node. *)

val create : ?name:string -> unit -> t
(** An empty graph. *)

val input : t -> name:string -> shape:int list -> value
(** Declare a graph input. *)

val batch_gemm : t -> ?name:string -> value -> value -> value
(** [batch_gemm g x w]: [x:[b;m;k] * w:[b;k;n]].  Raises
    [Invalid_argument] on shape mismatches (as do all builders). *)

val conv2d : t -> ?name:string -> stride:int -> value -> value -> value
(** [conv2d g ~stride x w]: [x:[n;ic;h;w] * w:[oc;ic;kh;kw]] with
    "same" padding. *)

val softmax : t -> ?name:string -> value -> value
(** Softmax along the last dimension. *)

val relu : t -> ?name:string -> value -> value
val gelu : t -> ?name:string -> value -> value
val layernorm : t -> ?name:string -> value -> value
val add : t -> ?name:string -> value -> value -> value

val shape : value -> int list
(** The value's inferred shape. *)

(** {1 Inspection} *)

type node = {
  id : int;
  name : string;
  op : Ops.t;
  inputs : int list;  (** producing node ids, in argument order. *)
  shape : int list;  (** output shape. *)
}

val nodes : t -> node list
(** All nodes in creation (topological) order. *)

val node : t -> int -> node
(** Lookup by id; raises [Not_found]. *)

val consumers : t -> int -> int list
(** Ids of the nodes that read a node's output. *)

val value_id : value -> int
(** The producing node's id. *)

val graph_name : t -> string
(** The graph's name. *)

val pp : Format.formatter -> t -> unit
(** One line per node. *)
