lib/graph/models.mli: Builder
