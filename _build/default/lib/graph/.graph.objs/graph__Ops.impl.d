lib/graph/ops.ml: Ir List Printf
