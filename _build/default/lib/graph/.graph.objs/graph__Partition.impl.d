lib/graph/partition.ml: Builder Hashtbl Ir List Ops Option Printf String
