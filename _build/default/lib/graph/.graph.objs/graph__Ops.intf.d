lib/graph/ops.mli:
