lib/graph/builder.mli: Format Ops
