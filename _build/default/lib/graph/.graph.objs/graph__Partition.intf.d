lib/graph/partition.mli: Builder Ir
