lib/graph/builder.ml: Format List Ops Printf String
