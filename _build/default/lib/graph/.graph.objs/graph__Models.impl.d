lib/graph/models.ml: Builder Printf
