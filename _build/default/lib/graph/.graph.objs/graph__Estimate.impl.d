lib/graph/estimate.ml: Arch Baselines Chimera Ir List Partition Printf Sim String
