lib/graph/estimate.mli: Arch Ir Partition
