(** Whole-graph execution estimation: Chimera-compiled kernels for the
    compute-intensive chains, one streaming kernel per element-wise
    group. *)

type segment_time = {
  label : string;
  seconds : float;
  kind : [ `Ci of Ir.Chain.t | `Mi ];
}

type report = {
  total_seconds : float;
  segments : segment_time list;  (** in topological order. *)
  ci_seconds : float;
  mi_seconds : float;
}

val estimate : Partition.t -> machine:Arch.Machine.t -> report
(** Price a partition on a machine model. *)

val unfused_estimate : Partition.t -> machine:Arch.Machine.t -> report
(** The same graph with every CI chain split into per-operator kernels —
    the no-fusion comparison point. *)
