(** Operators of the compute-DAG frontend (the input of Figure 3).

    Two classes, as in the paper: compute-intensive operators (batch
    GEMM, convolution) that Chimera fuses into chains, and
    memory-intensive operators (softmax, ReLU, GELU, add, layernorm)
    that fuse by the standard element-wise rules. *)

type t =
  | Input  (** a graph input; carries only its shape. *)
  | Batch_gemm  (** [x:[b;m;k] * w:[b;k;n] -> [b;m;n]]. *)
  | Conv2d of { stride : int; kh : int; kw : int }
      (** [x:[n;ic;h;w] * w:[oc;ic;kh;kw] -> [n;oc;oh;ow]], "same"
          padding of [(k-1)/2]. *)
  | Softmax  (** along the last dimension. *)
  | Relu
  | Gelu
  | Add  (** element-wise sum of two same-shape tensors. *)
  | Layernorm  (** normalisation over the last dimension. *)

type cls = Compute_intensive | Memory_intensive
(** The paper's operator taxonomy. *)

val classify : t -> cls option
(** [None] for {!Input}. *)

val infer_shape : t -> int list list -> (int list, string) result
(** Output shape from the input shapes; [Error] explains a mismatch. *)

val arity : t -> int
(** Number of tensor inputs ([0] for {!Input}). *)

val flops : t -> inputs:int list list -> output:int list -> float
(** FLOPs of one execution. *)

val memory_passes : t -> int
(** DRAM passes a standalone kernel for a memory-intensive operator
    makes over its operand footprint (0 for CI ops and inputs). *)

val to_string : t -> string
(** Short name, e.g. ["batch_gemm"], ["conv3x3s2"]. *)
