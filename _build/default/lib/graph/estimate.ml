type segment_time = {
  label : string;
  seconds : float;
  kind : [ `Ci of Ir.Chain.t | `Mi ];
}

type report = {
  total_seconds : float;
  segments : segment_time list;
  ci_seconds : float;
  mi_seconds : float;
}

let mi_seconds ~machine ~bytes =
  (bytes
  /. (Arch.Machine.dram_bandwidth_gbps machine
     *. 1e9
     *. Baselines.Profile.mi_bandwidth_efficiency))
  +. Sim.Perf.launch_overhead_seconds machine

let estimate_with ~machine ~config (p : Partition.t) =
  let segments =
    List.map
      (fun segment ->
        match segment with
        | Partition.Ci_chain { chain; _ } ->
            let compiled = Chimera.Compiler.optimize ~config ~machine chain in
            {
              label = chain.Ir.Chain.name;
              seconds = Chimera.Compiler.total_time_seconds compiled;
              kind = `Ci chain;
            }
        | Partition.Mi_group { node_ids; bytes; _ } ->
            {
              label =
                Printf.sprintf "elementwise[%s]"
                  (String.concat "," (List.map string_of_int node_ids));
              seconds = mi_seconds ~machine ~bytes;
              kind = `Mi;
            })
      p.Partition.segments
  in
  let sum f = List.fold_left (fun acc s -> acc +. f s) 0.0 segments in
  {
    total_seconds = sum (fun s -> s.seconds);
    segments;
    ci_seconds = sum (fun s -> match s.kind with `Ci _ -> s.seconds | `Mi -> 0.0);
    mi_seconds = sum (fun s -> match s.kind with `Mi -> s.seconds | `Ci _ -> 0.0);
  }

let estimate p ~machine = estimate_with ~machine ~config:Chimera.Config.default p

let unfused_estimate p ~machine =
  estimate_with ~machine
    ~config:{ Chimera.Config.default with use_fusion = false }
    p
