let attention_layer ?(name = "attention") ~heads ~seq ~head_dim () =
  let g = Builder.create ~name () in
  let q = Builder.input g ~name:"Q" ~shape:[ heads; seq; head_dim ] in
  let kt = Builder.input g ~name:"Kt" ~shape:[ heads; head_dim; seq ] in
  let v = Builder.input g ~name:"V" ~shape:[ heads; seq; head_dim ] in
  let scores = Builder.batch_gemm g ~name:"scores" q kt in
  let probs = Builder.softmax g ~name:"probs" scores in
  let _context = Builder.batch_gemm g ~name:"context" probs v in
  g

(* One encoder block appended to an existing graph, from [x] to the
   block's output value.  [layer] namespaces the node names. *)
let add_transformer_block g ~layer ~hidden ~heads ~seq ~ffn x =
  let head_dim = hidden / heads in
  let n s = Printf.sprintf "L%d.%s" layer s in
  let w_qkv = Builder.input g ~name:(n "Wqkv") ~shape:[ 1; hidden; 3 * hidden ] in
  let _qkv = Builder.batch_gemm g ~name:(n "qkv_proj") x w_qkv in
  (* The per-head attention BMM chain (heads split off the projection;
     modelled explicitly as the Table IV shape). *)
  let q = Builder.input g ~name:(n "Q") ~shape:[ heads; seq; head_dim ] in
  let kt = Builder.input g ~name:(n "Kt") ~shape:[ heads; head_dim; seq ] in
  let v = Builder.input g ~name:(n "V") ~shape:[ heads; seq; head_dim ] in
  let scores = Builder.batch_gemm g ~name:(n "scores") q kt in
  let probs = Builder.softmax g ~name:(n "probs") scores in
  let context = Builder.batch_gemm g ~name:(n "context") probs v in
  ignore context;
  let w_out = Builder.input g ~name:(n "Wout") ~shape:[ 1; hidden; hidden ] in
  let attn_out = Builder.batch_gemm g ~name:(n "out_proj") x w_out in
  let res1 = Builder.add g ~name:(n "residual1") attn_out x in
  let norm1 = Builder.layernorm g ~name:(n "ln1") res1 in
  let w_ffn1 = Builder.input g ~name:(n "Wffn1") ~shape:[ 1; hidden; ffn ] in
  let h = Builder.batch_gemm g ~name:(n "ffn1") norm1 w_ffn1 in
  let h = Builder.gelu g ~name:(n "gelu") h in
  let w_ffn2 = Builder.input g ~name:(n "Wffn2") ~shape:[ 1; ffn; hidden ] in
  let out = Builder.batch_gemm g ~name:(n "ffn2") h w_ffn2 in
  let res2 = Builder.add g ~name:(n "residual2") out norm1 in
  Builder.layernorm g ~name:(n "ln2") res2

let transformer_block ?(name = "encoder") ~hidden ~heads ~seq ~ffn () =
  let g = Builder.create ~name () in
  let x = Builder.input g ~name:"x" ~shape:[ 1; seq; hidden ] in
  let _ = add_transformer_block g ~layer:0 ~hidden ~heads ~seq ~ffn x in
  g

let encoder_stack ?(name = "encoder-stack") ~layers ~hidden ~heads ~seq ~ffn
    () =
  let g = Builder.create ~name () in
  let x = ref (Builder.input g ~name:"x" ~shape:[ 1; seq; hidden ]) in
  for layer = 0 to layers - 1 do
    x := add_transformer_block g ~layer ~hidden ~heads ~seq ~ffn !x
  done;
  g

let conv_block ?(name = "convnet") ~ic ~h ~w ~oc1 ~oc2 ~st1 ~st2 ~k1 ~k2 () =
  let g = Builder.create ~name () in
  let x = Builder.input g ~name:"x" ~shape:[ 1; ic; h; w ] in
  let w1 = Builder.input g ~name:"W1" ~shape:[ oc1; ic; k1; k1 ] in
  let w2 = Builder.input g ~name:"W2" ~shape:[ oc2; oc1; k2; k2 ] in
  let c1 = Builder.conv2d g ~name:"conv1" ~stride:st1 x w1 in
  let r1 = Builder.relu g ~name:"relu1" c1 in
  let c2 = Builder.conv2d g ~name:"conv2" ~stride:st2 r1 w2 in
  let _ = Builder.relu g ~name:"relu2" c2 in
  g

let mlp_mixer_block ?(name = "mixer") ~tokens ~channels ~hidden () =
  let g = Builder.create ~name () in
  let x = Builder.input g ~name:"x" ~shape:[ 1; tokens; channels ] in
  let w1 = Builder.input g ~name:"W1" ~shape:[ 1; channels; hidden ] in
  let w2 = Builder.input g ~name:"W2" ~shape:[ 1; hidden; channels ] in
  let w3 = Builder.input g ~name:"W3" ~shape:[ 1; channels; channels ] in
  let a = Builder.batch_gemm g ~name:"mix1" x w1 in
  let b = Builder.batch_gemm g ~name:"mix2" a w2 in
  let _ = Builder.batch_gemm g ~name:"proj" b w3 in
  g

let fire_module ?(name = "fire") ~ic ~h ~w ~squeeze ~expand () =
  let g = Builder.create ~name () in
  let x = Builder.input g ~name:"x" ~shape:[ 1; ic; h; w ] in
  let ws = Builder.input g ~name:"Wsq" ~shape:[ squeeze; ic; 1; 1 ] in
  let w1 = Builder.input g ~name:"We1" ~shape:[ expand; squeeze; 1; 1 ] in
  let w3 = Builder.input g ~name:"We3" ~shape:[ expand; squeeze; 3; 3 ] in
  let s = Builder.conv2d g ~name:"squeeze" ~stride:1 x ws in
  let s = Builder.relu g ~name:"squeeze_relu" s in
  (* Two expand branches consume the squeeze output: the intermediate
     has two consumers, so the squeeze cannot fuse into either. *)
  let e1 = Builder.conv2d g ~name:"expand1x1" ~stride:1 s w1 in
  let _ = Builder.relu g ~name:"expand1x1_relu" e1 in
  let e3 = Builder.conv2d g ~name:"expand3x3" ~stride:1 s w3 in
  let _ = Builder.relu g ~name:"expand3x3_relu" e3 in
  g
