type t =
  | Input
  | Batch_gemm
  | Conv2d of { stride : int; kh : int; kw : int }
  | Softmax
  | Relu
  | Gelu
  | Add
  | Layernorm

type cls = Compute_intensive | Memory_intensive

let classify = function
  | Input -> None
  | Batch_gemm | Conv2d _ -> Some Compute_intensive
  | Softmax | Relu | Gelu | Add | Layernorm -> Some Memory_intensive

let arity = function
  | Input -> 0
  | Batch_gemm | Conv2d _ | Add -> 2
  | Softmax | Relu | Gelu | Layernorm -> 1

let numel = List.fold_left ( * ) 1

let infer_shape op inputs =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  match (op, inputs) with
  | Input, _ -> fail "Input shape must be given explicitly"
  | Batch_gemm, [ [ b; m; k ]; [ b'; k'; n ] ] ->
      if b <> b' then fail "batch_gemm: batch mismatch %d vs %d" b b'
      else if k <> k' then fail "batch_gemm: inner dim mismatch %d vs %d" k k'
      else Ok [ b; m; n ]
  | Batch_gemm, _ -> fail "batch_gemm expects two rank-3 inputs"
  | Conv2d { stride; kh; kw }, [ [ n; ic; h; w ]; [ oc; ic'; kh'; kw' ] ] ->
      if ic <> ic' then fail "conv2d: channel mismatch %d vs %d" ic ic'
      else if kh <> kh' || kw <> kw' then
        fail "conv2d: kernel shape mismatch"
      else
        Ok
          [
            n;
            oc;
            Ir.Chain.conv_out ~h ~k:kh ~st:stride;
            Ir.Chain.conv_out ~h:w ~k:kw ~st:stride;
          ]
  | Conv2d _, _ -> fail "conv2d expects a rank-4 input and a rank-4 weight"
  | (Softmax | Relu | Gelu | Layernorm), [ shape ] -> Ok shape
  | Add, [ a; b ] ->
      if a = b then Ok a else fail "add: shape mismatch"
  | (Softmax | Relu | Gelu | Layernorm | Add), _ ->
      fail "%s: wrong number of inputs"
        (match op with Softmax -> "softmax" | _ -> "elementwise")

let flops op ~inputs ~output =
  match (op, inputs) with
  | Input, _ -> 0.0
  | Batch_gemm, [ [ _; _; k ]; _ ] ->
      2.0 *. float_of_int (numel output * k)
  | Conv2d { kh; kw; _ }, [ [ _; ic; _; _ ]; _ ] ->
      2.0 *. float_of_int (numel output * ic * kh * kw)
  | Softmax, _ -> 3.0 *. float_of_int (numel output)
  | Relu, _ | Add, _ -> float_of_int (numel output)
  | Gelu, _ -> 8.0 *. float_of_int (numel output)
  | Layernorm, _ -> 6.0 *. float_of_int (numel output)
  | (Batch_gemm | Conv2d _), _ -> 0.0

let memory_passes = function
  | Input | Batch_gemm | Conv2d _ -> 0
  | Relu -> 2
  | Softmax -> 2
  | Add -> 3
  | Gelu -> 2
  | Layernorm -> 3

let to_string = function
  | Input -> "input"
  | Batch_gemm -> "batch_gemm"
  | Conv2d { stride; kh; kw } -> Printf.sprintf "conv%dx%ds%d" kh kw stride
  | Softmax -> "softmax"
  | Relu -> "relu"
  | Gelu -> "gelu"
  | Add -> "add"
  | Layernorm -> "layernorm"
