(** The batch-GEMM chain configurations of Table IV.

    [(batch, M, K) x (batch, K, L)] is the first batch GEMM;
    [(batch, M, L) x (batch, L, N)] is the second. *)

type t = {
  name : string;  (** G1 .. G12. *)
  batch : int;
  m : int;
  n : int;
  k : int;
  l : int;
  network : string;  (** the model the shape comes from. *)
}

val all : t list
(** G1–G12, in table order. *)

val by_name : string -> t option
(** Lookup by the G-number. *)

val chain : ?softmax:bool -> ?batch_override:int -> t -> Ir.Chain.t
(** Build the batch-GEMM chain for a configuration.  [softmax] inserts
    the attention softmax between the two GEMMs; [batch_override]
    replaces the batch size (the NPU evaluation of Figure 7 uses
    batch 1). *)

val of_attention : heads:int -> seq:int -> head_dim:int -> t
(** The attention BMM-chain shape of a transformer layer:
    [batch = heads], [m = l = seq], [n = k = head_dim]. *)
