(** The Table I execution-time breakdown: how much of a network's
    (unfused, library-style) inference time goes to memory-intensive
    operators (%MI), to compute-intensive operators other than the
    attention batch GEMMs (%CI), and to the memory-bound attention batch
    GEMMs themselves (%BMM). *)

type t = {
  mi_pct : float;
  ci_pct : float;
  bmm_pct : float;
  total_seconds : float;
}

val gemm_efficiency : float
(** Modelled library dense-GEMM efficiency against peak (0.35 at
    transformer sizes). *)

val bmm_bandwidth_efficiency : float
(** Fraction of DRAM bandwidth the small batch-strided attention GEMMs
    sustain (0.25). *)

val bmm_launch_seconds : float
(** Per-BMM-kernel launch overhead (5 us). *)

val analyze : Networks.t -> machine:Arch.Machine.t -> t
(** Roofline-estimate every component executed unfused and aggregate by
    class.  The attention chain contributes its two batch GEMMs to %BMM
    and its softmax passes to %MI. *)

val pp : Format.formatter -> t -> unit
(** e.g. ["MI 30.6%  CI 42.8%  BMM 26.7%"]. *)
