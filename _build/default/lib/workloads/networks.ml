type component =
  | Linear of { m : int; n : int; k : int }
  | Attention of Gemm_configs.t
  | Elementwise of { elems : int; passes : int }

type t = {
  name : string;
  layers : int;
  per_layer : component list;
  dtype : Tensor.Dtype.t;
}

let transformer_block ~hidden ~heads ~seq ~ffn =
  let head_dim = hidden / heads in
  [
    (* Q, K, V projections. *)
    Linear { m = seq; n = 3 * hidden; k = hidden };
    Attention (Gemm_configs.of_attention ~heads ~seq ~head_dim);
    (* Attention output projection. *)
    Linear { m = seq; n = hidden; k = hidden };
    (* Residual add + layernorm. *)
    Elementwise { elems = seq * hidden; passes = 2 };
    Elementwise { elems = seq * hidden; passes = 3 };
    (* Feed-forward. *)
    Linear { m = seq; n = ffn; k = hidden };
    Elementwise { elems = seq * ffn; passes = 2 } (* GELU *);
    Linear { m = seq; n = hidden; k = ffn };
    Elementwise { elems = seq * hidden; passes = 2 };
    Elementwise { elems = seq * hidden; passes = 3 };
  ]

let encoder name ~layers ~hidden ~heads ~seq ?(ffn_mult = 4) () =
  {
    name;
    layers;
    per_layer = transformer_block ~hidden ~heads ~seq ~ffn:(ffn_mult * hidden);
    dtype = Tensor.Dtype.Fp16;
  }

let transformer_small = encoder "TF-Small" ~layers:6 ~hidden:256 ~heads:4 ~seq:512 ()
let transformer_base = encoder "TF-Base" ~layers:6 ~hidden:512 ~heads:8 ~seq:512 ()
let transformer_large = encoder "TF-Large" ~layers:6 ~hidden:1024 ~heads:16 ~seq:512 ()
let bert_small = encoder "Bert-Small" ~layers:4 ~hidden:512 ~heads:8 ~seq:512 ()
let bert_base = encoder "Bert-Base" ~layers:12 ~hidden:768 ~heads:12 ~seq:512 ()
let bert_large = encoder "Bert-Large" ~layers:24 ~hidden:1024 ~heads:16 ~seq:512 ()

(* ViT /16 on 224x224 images: the paper's Table IV rounds the 197-token
   sequence to 208. *)
let vit_base = encoder "ViT-Base" ~layers:12 ~hidden:768 ~heads:12 ~seq:208 ()
let vit_large = encoder "ViT-Large" ~layers:24 ~hidden:1024 ~heads:16 ~seq:208 ()

let vit_huge =
  (* ViT-Huge: hidden 1280, 16 heads of dimension 80. *)
  encoder "ViT-Huge" ~layers:32 ~hidden:1280 ~heads:16 ~seq:208 ()

let all =
  [
    transformer_small;
    transformer_base;
    transformer_large;
    bert_small;
    bert_base;
    bert_large;
    vit_base;
    vit_large;
    vit_huge;
  ]

let by_name name = List.find_opt (fun n -> n.name = name) all

let components t = List.concat (List.init t.layers (fun _ -> t.per_layer))

let attention_config t =
  let rec find = function
    | Attention c :: _ -> c
    | _ :: rest -> find rest
    | [] -> invalid_arg "Networks.attention_config: no attention component"
  in
  find t.per_layer

let linear_flops ~m ~n ~k = 2.0 *. float_of_int m *. float_of_int n *. float_of_int k

let component_bytes dtype component =
  let b = float_of_int (Tensor.Dtype.bytes dtype) in
  match component with
  | Linear { m; n; k } -> b *. float_of_int ((m * k) + (k * n) + (m * n))
  | Attention c ->
      (* Unfused: both GEMMs' operands and results, with the
         intermediate written and read back. *)
      let io = (c.m * c.k) + (c.k * c.l) + (c.l * c.n) + (c.m * c.n) in
      let inter = 2 * c.m * c.l in
      b *. float_of_int (c.batch * (io + inter))
  | Elementwise { elems; passes } -> b *. float_of_int (elems * passes)

let component_flops = function
  | Linear { m; n; k } -> linear_flops ~m ~n ~k
  | Attention c ->
      let fb = float_of_int c.batch in
      fb *. (linear_flops ~m:c.m ~n:c.l ~k:c.k
            +. linear_flops ~m:c.m ~n:c.n ~k:c.l)
      +. (3.0 *. fb *. float_of_int (c.m * c.l))
  | Elementwise { elems; passes = _ } -> float_of_int elems
