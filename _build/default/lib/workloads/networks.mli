(** Whole-network workloads for the Table I breakdown and the Figure 9
    end-to-end evaluation: Transformer, Bert and ViT encoders (batch 1,
    sequence length 512 for the language models), described as the
    per-layer components their inference executes. *)

type component =
  | Linear of { m : int; n : int; k : int }
      (** a dense projection / FFN GEMM: (m, k) x (k, n). *)
  | Attention of Gemm_configs.t
      (** the attention batch-GEMM chain, with softmax in between. *)
  | Elementwise of { elems : int; passes : int }
      (** a memory-intensive op (layernorm, GELU, residual add) touching
          [elems] elements [passes] times. *)

type t = {
  name : string;
  layers : int;  (** identical transformer blocks. *)
  per_layer : component list;
  dtype : Tensor.Dtype.t;
}

val transformer_block :
  hidden:int -> heads:int -> seq:int -> ffn:int -> component list
(** One encoder block: QKV + output projections, the attention BMM
    chain, the two FFN GEMMs, layernorms, GELU and residuals. *)

val transformer_small : t
val transformer_base : t
val transformer_large : t
val bert_small : t
val bert_base : t
val bert_large : t
val vit_base : t
val vit_large : t
val vit_huge : t

val all : t list
(** The nine Figure 9 networks, in presentation order. *)

val by_name : string -> t option
(** Lookup, e.g. ["Bert-Base"]. *)

val components : t -> component list
(** All components of the full network ([layers] copies of
    [per_layer]). *)

val attention_config : t -> Gemm_configs.t
(** The network's attention BMM-chain shape (all layers share it). *)

val linear_flops : m:int -> n:int -> k:int -> float
(** [2 m n k]. *)

val component_bytes : Tensor.Dtype.t -> component -> float
(** Unfused DRAM traffic of one component: operands + results for the
    GEMMs (intermediates spilled for the attention chain), [passes *
    elems] for element-wise ops. *)

val component_flops : component -> float
(** FLOPs of one component (element-wise ops count one FLOP per touched
    element). *)
