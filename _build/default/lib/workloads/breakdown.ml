type t = {
  mi_pct : float;
  ci_pct : float;
  bmm_pct : float;
  total_seconds : float;
}

(* Library-behaviour constants (documented in DESIGN.md): dense GEMMs in
   vendor libraries sustain ~35% of fp16 peak at transformer sizes; the
   small, batch-strided attention GEMMs reach only ~25% of DRAM
   bandwidth and pay a kernel launch each; element-wise kernels stream
   at full bandwidth. *)
let gemm_efficiency = 0.35
let bmm_bandwidth_efficiency = 0.25
let bmm_launch_seconds = 5e-6

let roofline machine ~flops ~bytes =
  Arch.Roofline.time_seconds machine ~flops ~bytes ~efficiency:gemm_efficiency
    ()

let memory_time machine ~bytes =
  bytes /. (Arch.Machine.dram_bandwidth_gbps machine *. 1e9)

let analyze (net : Networks.t) ~machine =
  let b = float_of_int (Tensor.Dtype.bytes net.Networks.dtype) in
  let mi = ref 0.0 and ci = ref 0.0 and bmm = ref 0.0 in
  List.iter
    (fun component ->
      match component with
      | Networks.Linear { m; n; k } ->
          let flops = Networks.linear_flops ~m ~n ~k in
          let bytes = b *. float_of_int ((m * k) + (k * n) + (m * n)) in
          ci := !ci +. roofline machine ~flops ~bytes
      | Networks.Elementwise { elems; passes } ->
          mi :=
            !mi +. memory_time machine ~bytes:(b *. float_of_int (elems * passes))
      | Networks.Attention c ->
          let fb = float_of_int c.Gemm_configs.batch in
          let gemm ~m ~n ~k =
            let bytes = fb *. b *. float_of_int ((m * k) + (k * n) + (m * n)) in
            (memory_time machine ~bytes /. bmm_bandwidth_efficiency)
            +. bmm_launch_seconds
          in
          bmm :=
            !bmm
            +. gemm ~m:c.Gemm_configs.m ~n:c.Gemm_configs.l ~k:c.Gemm_configs.k
            +. gemm ~m:c.Gemm_configs.m ~n:c.Gemm_configs.n ~k:c.Gemm_configs.l;
          (* The softmax between the GEMMs: three memory passes. *)
          let softmax_bytes =
            3.0 *. fb *. b
            *. float_of_int (c.Gemm_configs.m * c.Gemm_configs.l)
          in
          mi := !mi +. memory_time machine ~bytes:softmax_bytes)
    (Networks.components net);
  let total = !mi +. !ci +. !bmm in
  {
    mi_pct = 100.0 *. !mi /. total;
    ci_pct = 100.0 *. !ci /. total;
    bmm_pct = 100.0 *. !bmm /. total;
    total_seconds = total;
  }

let pp fmt t =
  Format.fprintf fmt "MI %.1f%%  CI %.1f%%  BMM %.1f%%" t.mi_pct t.ci_pct
    t.bmm_pct
