type t = {
  name : string;
  ic : int;
  h : int;
  w : int;
  oc1 : int;
  oc2 : int;
  st1 : int;
  st2 : int;
  k1 : int;
  k2 : int;
}

let mk name ic h w oc1 oc2 st1 st2 k1 k2 =
  { name; ic; h; w; oc1; oc2; st1; st2; k1; k2 }

let all =
  [
    mk "C1" 64 112 112 192 128 2 1 3 1;
    mk "C2" 32 147 147 64 80 2 1 3 1;
    mk "C3" 64 56 56 128 64 1 1 3 1;
    mk "C4" 128 28 28 256 128 1 1 3 1;
    mk "C5" 16 227 227 64 16 4 1 3 1;
    mk "C6" 64 56 56 64 64 1 1 1 3;
    mk "C7" 64 56 56 64 64 1 1 1 1;
    mk "C8" 256 56 56 256 64 1 1 1 1;
  ]

let by_name name = List.find_opt (fun c -> c.name = name) all

let chain ?(relu = false) ?(batch = 1) c =
  Ir.Chain.conv_chain
    ~name:(c.name ^ if relu then "+relu" else "")
    ~batch ~ic:c.ic ~h:c.h ~w:c.w ~oc1:c.oc1 ~oc2:c.oc2 ~st1:c.st1 ~st2:c.st2
    ~k1:c.k1 ~k2:c.k2 ~relu ()
