(** The convolution chain configurations of Table V.

    The first convolution is [(batch, IC, H, W) x (OC1, IC, k1, k1)] with
    stride [st1]; the second consumes its output with a [(OC2, OC1, k2,
    k2)] filter and stride [st2]. *)

type t = {
  name : string;  (** C1 .. C8. *)
  ic : int;
  h : int;
  w : int;
  oc1 : int;
  oc2 : int;
  st1 : int;
  st2 : int;
  k1 : int;
  k2 : int;
}

val all : t list
(** C1–C8, in table order. *)

val by_name : string -> t option
(** Lookup by the C-number. *)

val chain : ?relu:bool -> ?batch:int -> t -> Ir.Chain.t
(** Build the convolution chain ([batch] defaults to 1). *)
