lib/workloads/networks.ml: Gemm_configs List Tensor
