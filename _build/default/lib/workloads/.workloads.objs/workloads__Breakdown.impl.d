lib/workloads/breakdown.ml: Arch Format Gemm_configs List Networks Tensor
