lib/workloads/breakdown.mli: Arch Format Networks
