lib/workloads/gemm_configs.mli: Ir
