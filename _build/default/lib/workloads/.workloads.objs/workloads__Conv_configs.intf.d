lib/workloads/conv_configs.mli: Ir
