lib/workloads/networks.mli: Gemm_configs Tensor
