lib/workloads/conv_configs.ml: Ir List
