lib/workloads/gemm_configs.ml: Ir List Option Printf
