type t = {
  name : string;
  batch : int;
  m : int;
  n : int;
  k : int;
  l : int;
  network : string;
}

let mk name batch m n k l network = { name; batch; m; n; k; l; network }

let all =
  [
    mk "G1" 8 512 64 64 512 "Bert-Small";
    mk "G2" 12 512 64 64 512 "Bert-Base";
    mk "G3" 16 512 64 64 512 "Bert-Large";
    mk "G4" 12 256 64 64 256 "ViT-Base/14";
    mk "G5" 16 256 64 64 256 "ViT-Large/14";
    mk "G6" 16 256 80 80 256 "ViT-Huge/14";
    mk "G7" 12 208 64 64 208 "ViT-Base/16";
    mk "G8" 16 208 64 64 208 "ViT-Large/16";
    mk "G9" 16 208 80 80 208 "ViT-Huge/16";
    mk "G10" 1 512 64 64 256 "MLP-Mixer";
    mk "G11" 1 768 64 64 384 "MLP-Mixer";
    mk "G12" 1 1024 64 64 512 "MLP-Mixer";
  ]

let by_name name = List.find_opt (fun c -> c.name = name) all

let chain ?(softmax = false) ?batch_override c =
  let batch = Option.value batch_override ~default:c.batch in
  Ir.Chain.batch_gemm_chain
    ~name:(c.name ^ if softmax then "+softmax" else "")
    ~batch ~m:c.m ~n:c.n ~k:c.k ~l:c.l ~softmax ()

let of_attention ~heads ~seq ~head_dim =
  {
    name = Printf.sprintf "attn-h%d-s%d-d%d" heads seq head_dim;
    batch = heads;
    m = seq;
    n = head_dim;
    k = head_dim;
    l = seq;
    network = "attention";
  }
