(** Element data types.

    Numeric execution is always performed in OCaml [float] (IEEE 754
    double); the dtype only determines the *byte accounting* used by the
    analytical model and the memory-hierarchy simulator, exactly as the
    paper's model depends on element width and not on rounding. *)

type t = Fp16 | Fp32 | Fp64

val bytes : t -> int
(** Storage size in bytes of one element. *)

val to_string : t -> string
(** Lower-case name, e.g. ["fp16"]. *)

val of_string : string -> t option
(** Inverse of {!to_string}. *)

val pp : Format.formatter -> t -> unit
(** Formatter for {!to_string}. *)
