(** Dense row-major tensor shapes. *)

type t
(** An immutable shape: a list of positive dimension extents. *)

val of_list : int list -> t
(** Build a shape; raises [Invalid_argument] on non-positive extents. *)

val to_list : t -> int list
(** Extents, outermost first. *)

val rank : t -> int
(** Number of dimensions. *)

val dim : t -> int -> int
(** [dim t i] is the extent of dimension [i]; raises on out of range. *)

val numel : t -> int
(** Total number of elements. *)

val strides : t -> int array
(** Row-major element strides, one per dimension. *)

val linear_index : t -> int array -> int
(** Flatten a multi-index; raises [Invalid_argument] when the index is
    out of bounds or has the wrong rank. *)

val equal : t -> t -> bool
(** Structural equality. *)

val to_string : t -> string
(** e.g. ["[12x512x64]"]. *)

val pp : Format.formatter -> t -> unit
(** Formatter for {!to_string}. *)
