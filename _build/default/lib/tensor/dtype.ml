type t = Fp16 | Fp32 | Fp64

let bytes = function Fp16 -> 2 | Fp32 -> 4 | Fp64 -> 8
let to_string = function Fp16 -> "fp16" | Fp32 -> "fp32" | Fp64 -> "fp64"

let of_string = function
  | "fp16" -> Some Fp16
  | "fp32" -> Some Fp32
  | "fp64" -> Some Fp64
  | _ -> None

let pp fmt t = Format.pp_print_string fmt (to_string t)
