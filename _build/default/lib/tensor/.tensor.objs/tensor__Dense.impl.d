lib/tensor/dense.ml: Array Dtype Float Shape Util
