lib/tensor/dense.mli: Dtype Shape Util
