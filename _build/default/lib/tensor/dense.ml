type t = { shape : Shape.t; dtype : Dtype.t; data : float array }

let create ?(dtype = Dtype.Fp16) shape =
  { shape; dtype; data = Array.make (Shape.numel shape) 0.0 }

let of_array ?(dtype = Dtype.Fp16) shape data =
  if Array.length data <> Shape.numel shape then
    invalid_arg "Dense.of_array: buffer length mismatch";
  { shape; dtype; data }

let shape t = t.shape
let dtype t = t.dtype
let numel t = Shape.numel t.shape
let size_bytes t = numel t * Dtype.bytes t.dtype
let get t idx = t.data.(Shape.linear_index t.shape idx)
let set t idx v = t.data.(Shape.linear_index t.shape idx) <- v
let get_flat t i = t.data.(i)
let set_flat t i v = t.data.(i) <- v
let fill t v = Array.fill t.data 0 (Array.length t.data) v

let fill_random t ~prng ~lo ~hi =
  for i = 0 to Array.length t.data - 1 do
    t.data.(i) <- Util.Prng.uniform prng ~lo ~hi
  done

let copy t = { t with data = Array.copy t.data }
let map f t = { t with data = Array.map f t.data }

let iteri t f =
  let rank = Shape.rank t.shape in
  let idx = Array.make rank 0 in
  let dims = Array.of_list (Shape.to_list t.shape) in
  let n = numel t in
  for flat = 0 to n - 1 do
    f idx t.data.(flat);
    (* Advance the multi-index like an odometer. *)
    let rec bump i =
      if i >= 0 then begin
        idx.(i) <- idx.(i) + 1;
        if idx.(i) = dims.(i) then begin
          idx.(i) <- 0;
          bump (i - 1)
        end
      end
    in
    bump (rank - 1)
  done

let max_abs_diff a b =
  if not (Shape.equal a.shape b.shape) then
    invalid_arg "Dense.max_abs_diff: shape mismatch";
  let worst = ref 0.0 in
  for i = 0 to Array.length a.data - 1 do
    worst := Float.max !worst (Float.abs (a.data.(i) -. b.data.(i)))
  done;
  !worst

let allclose ?(rtol = 1e-9) ?(atol = 1e-9) a b =
  if not (Shape.equal a.shape b.shape) then
    invalid_arg "Dense.allclose: shape mismatch";
  let ok = ref true in
  for i = 0 to Array.length a.data - 1 do
    let d = Float.abs (a.data.(i) -. b.data.(i)) in
    if d > atol +. (rtol *. Float.abs b.data.(i)) then ok := false
  done;
  !ok

let to_flat_array t = t.data
