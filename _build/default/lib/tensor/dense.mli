(** Dense row-major tensors backed by OCaml float arrays.

    Used by the numeric executor to check that fused kernels compute the
    same values as the unfused reference implementations. *)

type t
(** A mutable dense tensor. *)

val create : ?dtype:Dtype.t -> Shape.t -> t
(** Zero-initialised tensor; the default dtype is {!Dtype.Fp16}
    (the paper evaluates in fp16). *)

val of_array : ?dtype:Dtype.t -> Shape.t -> float array -> t
(** Wrap an existing buffer; raises on a length mismatch.  The array is
    used directly, not copied. *)

val shape : t -> Shape.t
(** The tensor's shape. *)

val dtype : t -> Dtype.t
(** The tensor's accounting dtype. *)

val numel : t -> int
(** Total element count. *)

val size_bytes : t -> int
(** [numel * Dtype.bytes dtype]: the footprint the analytical model and
    simulator charge for this tensor. *)

val get : t -> int array -> float
(** Multi-index read. *)

val set : t -> int array -> float -> unit
(** Multi-index write. *)

val get_flat : t -> int -> float
(** Linear-index read. *)

val set_flat : t -> int -> float -> unit
(** Linear-index write. *)

val fill : t -> float -> unit
(** Set every element. *)

val fill_random : t -> prng:Util.Prng.t -> lo:float -> hi:float -> unit
(** Fill with uniform values from the deterministic generator. *)

val copy : t -> t
(** Deep copy. *)

val map : (float -> float) -> t -> t
(** Element-wise map into a fresh tensor. *)

val iteri : t -> (int array -> float -> unit) -> unit
(** Iterate in row-major order with the multi-index. *)

val max_abs_diff : t -> t -> float
(** Largest absolute element-wise difference; raises on shape mismatch. *)

val allclose : ?rtol:float -> ?atol:float -> t -> t -> bool
(** NumPy-style closeness: [|a - b| <= atol + rtol * |b|] element-wise.
    Defaults: [rtol = 1e-9], [atol = 1e-9]. *)

val to_flat_array : t -> float array
(** The underlying buffer (not a copy). *)
