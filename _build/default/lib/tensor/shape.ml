type t = { dims : int array; strides : int array }

let of_list dims_list =
  let dims = Array.of_list dims_list in
  Array.iter
    (fun d -> if d <= 0 then invalid_arg "Shape.of_list: non-positive extent")
    dims;
  let n = Array.length dims in
  let strides = Array.make n 1 in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * dims.(i + 1)
  done;
  { dims; strides }

let to_list t = Array.to_list t.dims
let rank t = Array.length t.dims

let dim t i =
  if i < 0 || i >= rank t then invalid_arg "Shape.dim: out of range";
  t.dims.(i)

let numel t = Array.fold_left ( * ) 1 t.dims
let strides t = Array.copy t.strides

let linear_index t idx =
  if Array.length idx <> rank t then
    invalid_arg "Shape.linear_index: rank mismatch";
  let acc = ref 0 in
  for i = 0 to rank t - 1 do
    if idx.(i) < 0 || idx.(i) >= t.dims.(i) then
      invalid_arg "Shape.linear_index: out of bounds";
    acc := !acc + (idx.(i) * t.strides.(i))
  done;
  !acc

let equal a b = a.dims = b.dims

let to_string t =
  "["
  ^ String.concat "x" (List.map string_of_int (Array.to_list t.dims))
  ^ "]"

let pp fmt t = Format.pp_print_string fmt (to_string t)
