type order_policy = Explored | Fixed

type t = {
  name : string;
  fuses_ci_chain : bool;
  order_policy : order_policy;
  fuses_elementwise : bool;
  fuses_softmax : bool;
  compute_efficiency : float;
  bandwidth_efficiency : float;
  bmm_bandwidth_penalty : float;
  dispatch_seconds : float;
}

type kernel_cost = {
  label : string;
  seconds : float;
  dram_bytes : float;
  flops : float;
}

type result = {
  profile : string;
  chain : string;
  time_seconds : float;
  kernels : kernel_cost list;
  kernel_count : int;
  dram_bytes : float;
}

let mi_bandwidth_efficiency = 0.9

let epilogue_passes = function
  | Ir.Chain.Identity -> 0
  | Ir.Chain.Relu -> 2
  (* exp+sum in one pass, the division re-read hits cache: two DRAM
     passes despite the three dependent steps. *)
  | Ir.Chain.Softmax _ -> 2

let has_softmax (chain : Ir.Chain.t) =
  List.exists
    (fun (s : Ir.Chain.stage) ->
      match s.Ir.Chain.epilogue with Ir.Chain.Softmax _ -> true | _ -> false)
    chain.stages

let is_batch_strided (chain : Ir.Chain.t) =
  match Ir.Axis.find_opt chain.axes "b" with
  | Some a -> a.Ir.Axis.extent > 1
  | None -> false

(* One single-stage chain per stage, optionally stripping the epilogue
   into a separate kernel (systems that cannot fuse element-wise ops). *)
let stage_chain (chain : Ir.Chain.t) (stage : Ir.Chain.stage) ~keep_epilogue =
  let epilogue =
    if keep_epilogue then stage.Ir.Chain.epilogue else Ir.Chain.Identity
  in
  Ir.Chain.make
    ~name:(chain.name ^ "." ^ stage.op.Ir.Operator.name)
    ~axes:chain.axes
    ~stages:
      [
        {
          Ir.Chain.op = stage.standalone;
          epilogue;
          standalone = stage.standalone;
        };
      ]

let plan_sub profile ~machine ~registry sub =
  let capacity =
    (Arch.Machine.primary_on_chip machine).Arch.Level.capacity_bytes
  in
  let perms =
    match profile.order_policy with
    | Explored -> None
    | Fixed -> Some [ Analytical.Movement.fused_axes sub ]
  in
  let micro = Microkernel.Registry.lower registry ~name:"matmul" ~machine in
  let min_tile = Codegen.Kernel.min_tile_floor ~micro sub in
  let plan =
    Analytical.Planner.optimize sub ~capacity_bytes:capacity ~min_tile ?perms
      ()
  in
  Analytical.Planner.refine_for_parallelism sub plan
    ~min_blocks:machine.Arch.Machine.cores ~min_tile ()

let ci_kernel_cost profile ~machine ~registry ~strided sub =
  let plan = plan_sub profile ~machine ~registry sub in
  let kernel =
    Codegen.Kernel.of_plan ~name:sub.Ir.Chain.name ~chain:sub ~machine
      ~registry ~plan ()
  in
  let flops = Ir.Chain.fused_flops sub in
  let micro_eff = Codegen.Kernel.micro_efficiency kernel in
  let par_eff =
    Analytical.Parallelism.efficiency sub kernel.Codegen.Kernel.tiling
      ~cores:machine.Arch.Machine.cores
  in
  let compute =
    flops
    /. (Arch.Machine.peak_flops machine *. micro_eff *. par_eff
       *. profile.compute_efficiency)
  in
  let dv = Codegen.Kernel.predicted_dv_bytes kernel in
  let bw_eff =
    profile.bandwidth_efficiency
    *. if strided then profile.bmm_bandwidth_penalty else 1.0
  in
  let memory =
    dv /. (Arch.Machine.dram_bandwidth_gbps machine *. 1e9 *. bw_eff)
  in
  let overlap = kernel.Codegen.Kernel.micro.Microkernel.Kernel_sig.overlap in
  {
    label = sub.Ir.Chain.name;
    seconds =
      Float.max compute memory
      +. ((1.0 -. overlap) *. Float.min compute memory)
      +. profile.dispatch_seconds;
    dram_bytes = dv;
    flops;
  }

let mi_kernel_cost profile ~machine ~label ~bytes ~flops =
  (* Element-wise kernels stream contiguously: near-full bandwidth
     regardless of how the system's GEMM kernels behave. *)
  let memory =
    bytes
    /. (Arch.Machine.dram_bandwidth_gbps machine
       *. 1e9 *. mi_bandwidth_efficiency)
  in
  { label; seconds = memory +. profile.dispatch_seconds; dram_bytes = bytes; flops }

let estimate profile ~machine (chain : Ir.Chain.t) =
  let registry = Microkernel.Registry.default () in
  let strided = is_batch_strided chain in
  let can_fuse_whole =
    profile.fuses_ci_chain
    && ((not (has_softmax chain)) || profile.fuses_softmax)
  in
  let kernels =
    if can_fuse_whole then
      [ ci_kernel_cost profile ~machine ~registry ~strided chain ]
    else
      List.concat_map
        (fun (stage : Ir.Chain.stage) ->
          let fuse_epi =
            match stage.Ir.Chain.epilogue with
            | Ir.Chain.Identity -> true
            | Ir.Chain.Relu -> profile.fuses_elementwise
            | Ir.Chain.Softmax _ -> false
          in
          let sub = stage_chain chain stage ~keep_epilogue:fuse_epi in
          let ci = ci_kernel_cost profile ~machine ~registry ~strided sub in
          if fuse_epi then [ ci ]
          else begin
            let passes = epilogue_passes stage.Ir.Chain.epilogue in
            let out = stage.standalone.Ir.Operator.output in
            let bytes =
              float_of_int (passes * Ir.Operator.tensor_bytes out)
            in
            let label =
              Printf.sprintf "%s.%s-epilogue" chain.name
                stage.op.Ir.Operator.name
            in
            [
              ci;
              mi_kernel_cost profile ~machine ~label ~bytes
                ~flops:(Ir.Chain.epilogue_flops chain stage);
            ]
          end)
        chain.stages
  in
  let total f = List.fold_left (fun acc k -> acc +. f k) 0.0 kernels in
  {
    profile = profile.name;
    chain = chain.name;
    time_seconds = total (fun k -> k.seconds);
    kernels;
    kernel_count = List.length kernels;
    dram_bytes = total (fun k -> k.dram_bytes);
  }
