type attention_impl = Via_chimera | Via_profile of Profile.t

type stack = {
  name : string;
  host_profile : Profile.t;
  attention : attention_impl;
  dynamic_graph_overhead_seconds : float;
}

let pytorch_cudnn =
  {
    name = "PyTorch+CuDNN";
    host_profile = Systems.gpu_pytorch;
    attention = Via_profile Systems.gpu_pytorch;
    dynamic_graph_overhead_seconds = 1.2e-5;
  }

let relay_tensorrt =
  {
    name = "Relay+TensorRT";
    host_profile = Systems.gpu_tensorrt;
    attention = Via_profile Systems.gpu_tensorrt;
    dynamic_graph_overhead_seconds = 0.0;
  }

let relay_cudnn =
  {
    name = "Relay+CuDNN";
    host_profile = Systems.gpu_relay;
    attention =
      (* cuDNN/cuBLAS batch GEMMs from a static graph: decent strided
         bandwidth, no eager dispatch. *)
      Via_profile
        {
          Systems.gpu_pytorch with
          name = "CuDNN";
          bandwidth_efficiency = 0.6;
          bmm_bandwidth_penalty = 0.8;
          dispatch_seconds = 5e-6;
        };
    dynamic_graph_overhead_seconds = 0.0;
  }

let relay_ansor =
  {
    name = "Relay+Ansor";
    host_profile = Systems.gpu_ansor;
    attention = Via_profile Systems.gpu_ansor;
    dynamic_graph_overhead_seconds = 0.0;
  }

let relay_chimera =
  {
    name = "Relay+Chimera";
    host_profile = Systems.gpu_relay;
    attention = Via_chimera;
    dynamic_graph_overhead_seconds = 0.0;
  }

let gpu_stacks =
  [ pytorch_cudnn; relay_tensorrt; relay_cudnn; relay_ansor; relay_chimera ]

let linear_seconds stack ~machine ~m ~n ~k =
  let p = stack.host_profile in
  let dtype_bytes = 2.0 in
  let flops = Workloads.Networks.linear_flops ~m ~n ~k in
  let bytes = dtype_bytes *. float_of_int ((m * k) + (k * n) + (m * n)) in
  let compute =
    flops
    /. (Arch.Machine.peak_flops machine *. 0.5 *. p.Profile.compute_efficiency)
  in
  let memory =
    bytes
    /. (Arch.Machine.dram_bandwidth_gbps machine
       *. 1e9 *. p.Profile.bandwidth_efficiency)
  in
  Float.max compute memory +. p.Profile.dispatch_seconds
  +. stack.dynamic_graph_overhead_seconds

let elementwise_seconds stack ~machine ~elems ~passes =
  let p = stack.host_profile in
  let bytes = 2.0 *. float_of_int (elems * passes) in
  let memory =
    bytes
    /. (Arch.Machine.dram_bandwidth_gbps machine
       *. 1e9 *. p.Profile.bandwidth_efficiency)
  in
  (* Compiled stacks fuse element-wise chains; eager ones dispatch each. *)
  let dispatch =
    if p.Profile.fuses_elementwise then 0.0
    else p.Profile.dispatch_seconds +. stack.dynamic_graph_overhead_seconds
  in
  memory +. dispatch

let attention_seconds stack ~machine config =
  let chain = Workloads.Gemm_configs.chain ~softmax:true config in
  match stack.attention with
  | Via_chimera ->
      let compiled = Chimera.Compiler.optimize ~machine chain in
      Chimera.Compiler.total_time_seconds compiled
  | Via_profile p ->
      let r = Profile.estimate p ~machine chain in
      r.Profile.time_seconds
      +. (float_of_int r.Profile.kernel_count
         *. stack.dynamic_graph_overhead_seconds)

let estimate_network stack ~machine (net : Workloads.Networks.t) =
  (* All layers share the attention shape: price it once. *)
  let attn =
    attention_seconds stack ~machine (Workloads.Networks.attention_config net)
  in
  List.fold_left
    (fun acc component ->
      acc
      +.
      match component with
      | Workloads.Networks.Linear { m; n; k } ->
          linear_seconds stack ~machine ~m ~n ~k
      | Workloads.Networks.Elementwise { elems; passes } ->
          elementwise_seconds stack ~machine ~elems ~passes
      | Workloads.Networks.Attention _ -> attn)
    0.0
    (Workloads.Networks.components net)
