let base =
  {
    Profile.name = "";
    fuses_ci_chain = false;
    order_policy = Profile.Explored;
    fuses_elementwise = false;
    fuses_softmax = false;
    compute_efficiency = 0.85;
    bandwidth_efficiency = 0.6;
    bmm_bandwidth_penalty = 1.0;
    dispatch_seconds = 5e-6;
  }

let cpu_pytorch =
  {
    base with
    Profile.name = "PyTorch";
    compute_efficiency = 0.85;
    bandwidth_efficiency = 0.55;
    dispatch_seconds = 5e-6;
  }

let cpu_onednn =
  {
    base with
    Profile.name = "oneDNN";
    fuses_elementwise = true;
    compute_efficiency = 0.9;
    bandwidth_efficiency = 0.45;
    dispatch_seconds = 2e-6;
  }

let cpu_relay =
  (* Relay's hand-written x86 conv templates are serviceable; its
     batch_matmul template has poor strides (the paper's weakest CPU
     baseline on GEMM chains). *)
  {
    base with
    Profile.name = "Relay";
    fuses_elementwise = true;
    compute_efficiency = 0.6;
    bandwidth_efficiency = 0.4;
    bmm_bandwidth_penalty = 0.5;
    dispatch_seconds = 2e-6;
  }

let cpu_ansor =
  {
    base with
    Profile.name = "Ansor";
    fuses_elementwise = true;
    compute_efficiency = 0.8;
    bandwidth_efficiency = 0.95;
    dispatch_seconds = 2e-6;
  }

let gpu_pytorch =
  {
    base with
    Profile.name = "PyTorch";
    compute_efficiency = 0.85;
    bandwidth_efficiency = 0.5;
    bmm_bandwidth_penalty = 0.7;
    dispatch_seconds = 1e-5;
  }

let gpu_taso =
  {
    base with
    Profile.name = "TASO";
    compute_efficiency = 0.85;
    bandwidth_efficiency = 0.45;
    bmm_bandwidth_penalty = 0.6;
    dispatch_seconds = 8e-6;
  }

let gpu_relay =
  {
    base with
    Profile.name = "Relay";
    fuses_elementwise = true;
    compute_efficiency = 0.8;
    bandwidth_efficiency = 0.85;
    dispatch_seconds = 5e-6;
  }

let gpu_ansor =
  {
    base with
    Profile.name = "Ansor";
    fuses_elementwise = true;
    compute_efficiency = 0.9;
    bandwidth_efficiency = 0.95;
    dispatch_seconds = 5e-6;
  }

let gpu_tensorrt =
  {
    base with
    Profile.name = "TensorRT";
    fuses_elementwise = true;
    compute_efficiency = 0.9;
    bandwidth_efficiency = 0.85;
    bmm_bandwidth_penalty = 0.4;
    dispatch_seconds = 5e-6;
  }

let gpu_tvm_cutlass =
  {
    base with
    Profile.name = "TVM+Cutlass";
    fuses_ci_chain = true;
    order_policy = Profile.Fixed;
    fuses_elementwise = true;
    compute_efficiency = 0.95;
    bandwidth_efficiency = 0.9;
    dispatch_seconds = 5e-6;
  }

let npu_tbe =
  {
    base with
    Profile.name = "TBE";
    compute_efficiency = 0.85;
    bandwidth_efficiency = 0.6;
    dispatch_seconds = 5e-6;
  }

let npu_akg =
  {
    base with
    Profile.name = "AKG";
    fuses_elementwise = true;
    compute_efficiency = 0.9;
    bandwidth_efficiency = 0.92;
    dispatch_seconds = 3e-6;
  }

let for_machine (machine : Arch.Machine.t) =
  match machine.Arch.Machine.backend with
  | Arch.Machine.Cpu -> [ cpu_pytorch; cpu_relay; cpu_ansor; cpu_onednn ]
  | Arch.Machine.Gpu ->
      [
        gpu_pytorch;
        gpu_taso;
        gpu_relay;
        gpu_ansor;
        gpu_tensorrt;
        gpu_tvm_cutlass;
      ]
  | Arch.Machine.Npu -> [ npu_tbe; npu_akg ]
