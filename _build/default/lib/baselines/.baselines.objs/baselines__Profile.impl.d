lib/baselines/profile.ml: Analytical Arch Codegen Float Ir List Microkernel Printf
