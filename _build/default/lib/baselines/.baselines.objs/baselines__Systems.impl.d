lib/baselines/systems.ml: Arch Profile
