lib/baselines/e2e.mli: Arch Profile Workloads
