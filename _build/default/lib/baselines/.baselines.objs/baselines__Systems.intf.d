lib/baselines/systems.mli: Arch Profile
