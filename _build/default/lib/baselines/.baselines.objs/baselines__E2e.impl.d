lib/baselines/e2e.ml: Arch Chimera Float List Profile Systems Workloads
