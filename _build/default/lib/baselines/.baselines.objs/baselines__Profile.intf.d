lib/baselines/profile.mli: Arch Ir
