(** The paper's comparison systems as strategy profiles (Section VI-A).

    Capability axes (what fuses, whether the block order is explored)
    come straight from the paper's discussion of each system; the
    efficiency constants are calibrated once against the paper's
    headline speedup ratios and recorded in DESIGN.md. *)

val cpu_pytorch : Profile.t
(** Eager PyTorch on MKL/oneDNN kernels: nothing fused, every operator a
    dispatch. *)

val cpu_onednn : Profile.t
(** Direct oneDNN calls: ReLU post-ops fuse, GEMM chains do not. *)

val cpu_relay : Profile.t
(** TVM Relay with hand-written CPU templates: element-wise fusion only,
    weak CPU kernels (the paper's weakest CPU baseline). *)

val cpu_ansor : Profile.t
(** Ansor-tuned single operators: strong kernels, no CI-CI fusion. *)

val gpu_pytorch : Profile.t
(** PyTorch + cuBLAS/cuDNN: unfused, dynamic-graph dispatch. *)

val gpu_taso : Profile.t
(** TASO: graph substitutions over cuDNN kernels; cannot fuse dependent
    CI operators, no softmax support. *)

val gpu_relay : Profile.t
(** Relay on CUDA templates. *)

val gpu_ansor : Profile.t
(** Ansor-tuned CUDA kernels. *)

val gpu_tensorrt : Profile.t
(** TensorRT: strong fused element-wise kernels, cannot fuse softmax,
    weak on irregular batch GEMMs (Section VI-D). *)

val gpu_tvm_cutlass : Profile.t
(** TVM+CUTLASS (BOLT): fuses GEMM chains through templates but with a
    fixed block execution order and no softmax support. *)

val npu_tbe : Profile.t
(** CANN TBE library: hand-optimised single GEMMs, no fusion. *)

val npu_akg : Profile.t
(** AKG polyhedral compiler: state-of-the-art single-op NPU kernels and
    element-wise fusion; GEMM-chain fusion unexplored. *)

val for_machine : Arch.Machine.t -> Profile.t list
(** The baselines the paper compares on that backend, in figure order. *)
