(** Parametric models of the systems the paper compares against.

    What separates the baselines in the paper is *strategy*: what each
    system can and cannot fuse, whether its block order is fixed or
    explored, and the quality of its kernels.  A profile captures those
    axes; {!estimate} compiles a chain under the profile's strategy on
    the shared planner/simulator substrate and prices the result with
    the profile's efficiency parameters (constants recorded in
    DESIGN.md, calibrated once against the paper's headline ratios). *)

type order_policy =
  | Explored  (** search all candidate block orders (Chimera-style). *)
  | Fixed  (** the chain's declaration order only (CUTLASS/BOLT-style
               templates with a hard-coded execution order). *)

type t = {
  name : string;
  fuses_ci_chain : bool;
      (** can emit one kernel for a CI-CI chain; otherwise one kernel
          per compute-intensive operator. *)
  order_policy : order_policy;  (** only meaningful when fusing. *)
  fuses_elementwise : bool;
      (** folds ReLU-class epilogues into the producing kernel. *)
  fuses_softmax : bool;
      (** folds softmax into the chain (needs the sum-merge/div-swap
          rewrite; only Chimera does this in the paper). *)
  compute_efficiency : float;
      (** kernel quality relative to the modelled tuned micro kernel. *)
  bandwidth_efficiency : float;
      (** fraction of DRAM bandwidth the kernels sustain. *)
  bmm_bandwidth_penalty : float;
      (** additional multiplier (<= 1) on bandwidth for batch-strided
          GEMM kernels (TensorRT's irregular-BMM weakness). *)
  dispatch_seconds : float;  (** per-kernel host/dispatch overhead. *)
}

type kernel_cost = {
  label : string;
  seconds : float;
  dram_bytes : float;
  flops : float;
}

type result = {
  profile : string;
  chain : string;
  time_seconds : float;
  kernels : kernel_cost list;
  kernel_count : int;
  dram_bytes : float;
}

val estimate : t -> machine:Arch.Machine.t -> Ir.Chain.t -> result
(** Compile-and-price a chain under the profile's strategy. *)

val mi_bandwidth_efficiency : float
(** Bandwidth fraction element-wise kernels sustain (0.9: contiguous
    streaming). *)

val epilogue_passes : Ir.Chain.epilogue -> int
(** DRAM passes a standalone epilogue kernel makes over its operand
    (2 for ReLU read+write; 2 for softmax — exp+sum fuse into one pass
    and the division re-read hits cache; 0 for identity). *)
