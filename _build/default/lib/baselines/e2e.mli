(** End-to-end network estimation (Figure 9): a framework *stack* runs
    the whole model — dense projections and element-wise operators
    through its own kernels — and delegates the attention batch-GEMM
    chain either to its own strategy or to Chimera (the paper's
    [Relay+Chimera] integration). *)

type attention_impl =
  | Via_chimera  (** the chain compiled by Chimera. *)
  | Via_profile of Profile.t  (** the stack's own strategy. *)

type stack = {
  name : string;
  host_profile : Profile.t;
      (** prices the network's linears and element-wise operators. *)
  attention : attention_impl;
  dynamic_graph_overhead_seconds : float;
      (** extra per-operator host time for eager frameworks (PyTorch);
          0 for compiled static graphs. *)
}

val pytorch_cudnn : stack
val relay_tensorrt : stack
val relay_cudnn : stack
val relay_ansor : stack
val relay_chimera : stack

val gpu_stacks : stack list
(** The five Figure 9 stacks, in figure order. *)

val estimate_network :
  stack -> machine:Arch.Machine.t -> Workloads.Networks.t -> float
(** Estimated inference latency (seconds, batch 1). *)
