let upper = String.uppercase_ascii
let lower = String.lowercase_ascii
let spf = Printf.sprintf

type dialect = { comment : string; indent_unit : string }

let dialect_of (machine : Arch.Machine.t) =
  match machine.Arch.Machine.backend with
  | Arch.Machine.Cpu | Arch.Machine.Gpu ->
      { comment = "//"; indent_unit = "  " }
  | Arch.Machine.Npu -> { comment = "#"; indent_unit = "  " }

(* The loop nest: one level of loops per memory-level plan (outermost
   plan's order outside, sub-block orders within), matching the
   hierarchical execution the simulator replays.  Loop variables are
   numbered per level: m0 steps by the L3-plan tile, m1 subdivides the
   m0 block by the L2-plan tile, and so on. *)
let plan_levels (kernel : Kernel.t) =
  match kernel.Kernel.level_plans with
  | [] -> [ (kernel.Kernel.perm, kernel.Kernel.tiling) ]
  | lps ->
      List.rev_map
        (fun (lp : Analytical.Planner.level_plan) ->
          ( lp.Analytical.Planner.plan.Analytical.Planner.perm,
            lp.Analytical.Planner.plan.Analytical.Planner.tiling ))
        lps

(* Innermost loop-variable name per axis, after collapsing levels whose
   tile equals the enclosing block (no subdivision). *)
let loop_plan (kernel : Kernel.t) =
  let levels = plan_levels kernel in
  let extent =
    Analytical.Tiling.extent_of (snd (List.hd levels))
  in
  (* (axis, var_name, lo_expr, hi_expr, step) in emission order, plus a
     map axis -> innermost var. *)
  let innermost : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let enclosing : (string, int * string) Hashtbl.t = Hashtbl.create 8 in
  (* enclosing: axis -> (block span, variable of the enclosing loop) *)
  let loops = ref [] in
  List.iteri
    (fun level (perm, tiling) ->
      List.iter
        (fun axis ->
          let tile = Analytical.Tiling.get tiling axis in
          let span, base =
            match Hashtbl.find_opt enclosing axis with
            | Some (span, v) -> (span, Some v)
            | None -> (extent axis, None)
          in
          if tile < span && span > 1 then begin
            let var = Printf.sprintf "%s%d" axis level in
            let lo, hi =
              match base with
              | None -> ("0", string_of_int (extent axis))
              | Some v ->
                  ( v,
                    Printf.sprintf "min(%d, %s + %d)" (extent axis) v span )
            in
            loops := (axis, var, lo, hi, tile) :: !loops;
            Hashtbl.replace enclosing axis (tile, var);
            Hashtbl.replace innermost axis var
          end)
        perm)
    levels;
  (List.rev !loops, fun axis ->
    match Hashtbl.find_opt innermost axis with
    | Some v -> v
    | None -> axis ^ "0")

let stage_guard (kernel : Kernel.t) (stage : Ir.Chain.stage) =
  (* First-visit rule for loops this stage does not own, last-reduction
     rule for earlier stages' reduction loops that must complete before
     this stage consumes its input (dependency preservation). *)
  let chain = kernel.Kernel.chain in
  let op = stage.Ir.Chain.op in
  let earlier_stages =
    let rec before acc = function
      | [] -> List.rev acc
      | (s : Ir.Chain.stage) :: rest ->
          if s.op.Ir.Operator.name = op.Ir.Operator.name then List.rev acc
          else before (s :: acc) rest
    in
    before [] chain.Ir.Chain.stages
  in
  let earlier_reductions =
    List.concat_map
      (fun (s : Ir.Chain.stage) -> s.op.Ir.Operator.reduction_axes)
      earlier_stages
  in
  let _, var_of = loop_plan kernel in
  let conds =
    List.filter_map
      (fun axis ->
        if Ir.Operator.uses_axis op axis then None
        else if List.mem axis earlier_reductions then
          Some (spf "%s == %s - T_%s" (var_of axis) (upper axis) axis)
        else Some (spf "%s == 0" (var_of axis)))
      kernel.Kernel.perm
  in
  match conds with [] -> None | cs -> Some (String.concat " && " cs)

let buffer_declarations (kernel : Kernel.t) add =
  let chain = kernel.Kernel.chain in
  let tile_of = Analytical.Tiling.tile_of kernel.Kernel.tiling in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (stage : Ir.Chain.stage) ->
      List.iter
        (fun (r : Ir.Operator.tensor_ref) ->
          if not (Hashtbl.mem seen r.tensor) then begin
            Hashtbl.add seen r.tensor ();
            let elems = Ir.Operator.tile_footprint_elems r ~tile_of in
            let role =
              if Ir.Chain.is_intermediate chain r.tensor then
                "intermediate, resident on chip"
              else "staging tile"
            in
            add
              (spf "half %s_tile[%d];  %s %s" (lower r.tensor) elems
                 (dialect_of kernel.Kernel.machine).comment role)
          end)
        (Ir.Operator.all_refs stage.Ir.Chain.op))
    chain.Ir.Chain.stages

let emit_loops (kernel : Kernel.t) buf ~body =
  let d = dialect_of kernel.Kernel.machine in
  let loops, _ = loop_plan kernel in
  let depth = ref 0 in
  let add s =
    for _ = 1 to !depth do
      Buffer.add_string buf d.indent_unit
    done;
    Buffer.add_string buf (s ^ "\n")
  in
  (match kernel.Kernel.machine.Arch.Machine.backend with
  | Arch.Machine.Cpu -> add "#pragma omp parallel for collapse(2)"
  | Arch.Machine.Gpu -> add (d.comment ^ " grid-mapped: blockIdx.x")
  | Arch.Machine.Npu -> add (d.comment ^ " block-dispatched across AI cores"));
  List.iter
    (fun (_, var, lo, hi, step) ->
      add (spf "for (int %s = %s; %s < %s; %s += %d) {" var lo var hi var step);
      incr depth)
    loops;
  body add;
  List.iter
    (fun _ ->
      decr depth;
      add "}")
    (List.rev loops)

let stage_body (kernel : Kernel.t) (stage : Ir.Chain.stage) add =
  let d = dialect_of kernel.Kernel.machine in
  let op = stage.Ir.Chain.op in
  let out = op.Ir.Operator.output in
  let m, n, k = Kernel.matmul_block_dims kernel op in
  let fetches =
    List.map
      (fun (r : Ir.Operator.tensor_ref) -> r.Ir.Operator.tensor)
      op.Ir.Operator.inputs
  in
  (match stage_guard kernel stage with
  | Some cond -> add (spf "if (%s) {" cond)
  | None -> add "{");
  add
    (spf "%s %s: stage tiles of %s into on-chip memory" d.comment
       op.Ir.Operator.name
       (String.concat ", " fetches));
  add
    (spf "%s replaceable micro kernel \"matmul\" -> %s" d.comment
       kernel.Kernel.micro.Microkernel.Kernel_sig.id);
  add
    (spf "micro_matmul_%dx%dx%d(%s_tile, %s);" m n k
       (lower out.Ir.Operator.tensor)
       (String.concat ", " (List.map (fun t -> lower t ^ "_tile") fetches)));
  (match stage.Ir.Chain.epilogue with
  | Ir.Chain.Identity -> ()
  | Ir.Chain.Relu ->
      add
        (spf "if (last_reduction_block) relu_inplace(%s_tile);"
           (lower out.Ir.Operator.tensor))
  | Ir.Chain.Softmax { axis } ->
      add
        (spf "%s softmax fused: exp on the completed tile; the row-sum is"
           d.comment);
      add
        (spf "%s merged into the consumer GEMM and the division swapped past \
              it"
           d.comment);
      add "if (last_reduction_block) {";
      add (spf "  exp_inplace(%s_tile);" (lower out.Ir.Operator.tensor));
      add
        (spf "  rowsum_accumulate(softmax_sum, %s_tile /* along %s */);"
           (lower out.Ir.Operator.tensor)
           axis);
      add "}");
  add "}"

let emit_loop_nest kernel =
  let buf = Buffer.create 4096 in
  emit_loops kernel buf ~body:(fun add ->
      List.iter
        (fun stage -> stage_body kernel stage add)
        kernel.Kernel.chain.Ir.Chain.stages);
  Buffer.contents buf

let has_softmax (kernel : Kernel.t) =
  List.exists
    (fun (s : Ir.Chain.stage) ->
      match s.Ir.Chain.epilogue with Ir.Chain.Softmax _ -> true | _ -> false)
    kernel.Kernel.chain.Ir.Chain.stages

let emit kernel =
  let d = dialect_of kernel.Kernel.machine in
  let buf = Buffer.create 8192 in
  let add s = Buffer.add_string buf (s ^ "\n") in
  let machine = kernel.Kernel.machine in
  add (spf "%s === Chimera generated kernel: %s ===" d.comment kernel.Kernel.name);
  add (spf "%s target: %s" d.comment machine.Arch.Machine.name);
  add
    (spf "%s block order: %s  tiles: %s" d.comment
       (String.concat "" kernel.Kernel.perm)
       (Analytical.Tiling.to_string kernel.Kernel.tiling));
  add
    (spf "%s predicted DV = %.3e MB, block MU = %.1f KiB, %.0f blocks"
       d.comment
       (Kernel.predicted_dv_bytes kernel /. 1e6)
       (float_of_int (Kernel.predicted_mu_bytes kernel) /. 1024.0)
       (Kernel.block_count kernel));
  List.iter
    (fun (lp : Analytical.Planner.level_plan) ->
      add
        (spf "%s   level %s: tiles %s, DV %.3e MB" d.comment
           lp.level.Arch.Level.name
           (Analytical.Tiling.to_string lp.plan.Analytical.Planner.tiling)
           (lp.plan.Analytical.Planner.movement.Analytical.Movement.dv_bytes
           /. 1e6)))
    kernel.Kernel.level_plans;
  add "";
  buffer_declarations kernel add;
  if has_softmax kernel then
    add "float softmax_sum[/* rows of the softmax operand */];";
  add "";
  Buffer.add_string buf (emit_loop_nest kernel);
  if has_softmax kernel then begin
    add "";
    add
      (spf "%s swapped softmax division: E[row, :] /= softmax_sum[row]"
         d.comment);
    add "divide_rows(e, softmax_sum);"
  end;
  add "";
  add (spf "%s --- substituted low-level micro kernel body ---" d.comment);
  let m, n, k =
    match kernel.Kernel.chain.Ir.Chain.stages with
    | stage :: _ -> Kernel.matmul_block_dims kernel stage.Ir.Chain.op
    | [] -> (1, 1, 1)
  in
  Buffer.add_string buf
    (kernel.Kernel.micro.Microkernel.Kernel_sig.emit ~block_m:m ~block_n:n
       ~block_k:k);
  Buffer.contents buf
