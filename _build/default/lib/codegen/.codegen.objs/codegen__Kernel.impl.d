lib/codegen/kernel.ml: Analytical Arch Hashtbl Ir List Microkernel Option
