lib/codegen/kernel.mli: Analytical Arch Ir Microkernel
