lib/codegen/source.mli: Kernel
