lib/codegen/source.ml: Analytical Arch Buffer Hashtbl Ir Kernel List Microkernel Printf String
