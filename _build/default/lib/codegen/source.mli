(** Source-code emission for compiled fused kernels.

    The emitted text is the human-readable form of what Chimera's code
    generator produces: the interleaved block loop nest in the chosen
    execution order, on-chip buffer allocations sized by the block
    footprints, per-stage micro-kernel invocations with first-visit /
    last-reduction guards, epilogue handling (including the softmax
    sum-merge and div-swap rewrite), and the substituted low-level micro
    kernel body.  The dialect follows the target backend: C with OpenMP
    for CPU, CUDA for GPU, a pragma-annotated Python DSL for NPU. *)

val emit : Kernel.t -> string
(** Full kernel source, ending with the micro kernel body. *)

val emit_loop_nest : Kernel.t -> string
(** Just the fused block loop nest (used in documentation examples). *)
