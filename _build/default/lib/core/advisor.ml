type boundedness_summary = {
  stage : string;
  boundedness : Arch.Roofline.boundedness;
  arithmetic_intensity : float;
}

type verdict = {
  fuse : bool;
  fused_seconds : float;
  unfused_seconds : float;
  speedup : float;
  recompute_ratio : float;
  stages : boundedness_summary list;
}

let stage_summary machine (chain : Ir.Chain.t) (stage : Ir.Chain.stage) =
  let op = stage.Ir.Chain.standalone in
  let flops = Ir.Operator.flops op ~extent_of:(Ir.Chain.extent_of chain) in
  let bytes =
    List.fold_left
      (fun acc (r : Ir.Operator.tensor_ref) ->
        acc +. float_of_int (Ir.Operator.tensor_bytes r))
      0.0 (Ir.Operator.all_refs op)
  in
  {
    stage = op.Ir.Operator.name;
    boundedness = Arch.Roofline.classify machine ~flops ~bytes;
    arithmetic_intensity = Arch.Roofline.arithmetic_intensity ~flops ~bytes;
  }

let assess ~machine chain =
  let fused_seconds =
    Compiler.total_time_seconds (Compiler.optimize ~machine chain)
  in
  let unfused_seconds =
    Compiler.total_time_seconds
      (Compiler.optimize
         ~config:{ Config.default with use_fusion = false }
         ~machine chain)
  in
  let speedup = unfused_seconds /. fused_seconds in
  {
    fuse = speedup > 1.02;
    fused_seconds;
    unfused_seconds;
    speedup;
    recompute_ratio =
      Ir.Chain.fused_flops chain /. Ir.Chain.standalone_flops chain;
    stages = List.map (stage_summary machine chain) chain.Ir.Chain.stages;
  }

let explain v =
  let consumer =
    match List.rev v.stages with s :: _ -> Some s | [] -> None
  in
  let head =
    if v.fuse then
      Printf.sprintf "fuse: %.2fx faster than separate kernels" v.speedup
    else
      Printf.sprintf "do not fuse: only %.2fx (within noise or slower)"
        v.speedup
  in
  let consumer_note =
    match consumer with
    | Some s ->
        Printf.sprintf "; consumer %s is %s (AI %.0f flop/byte)" s.stage
          (Arch.Roofline.boundedness_to_string s.boundedness)
          s.arithmetic_intensity
    | None -> ""
  in
  let recompute_note =
    if v.recompute_ratio > 1.01 then
      Printf.sprintf "; fusion recomputes %.0f%% extra FLOPs"
        (100.0 *. (v.recompute_ratio -. 1.0))
    else ""
  in
  head ^ consumer_note ^ recompute_note
