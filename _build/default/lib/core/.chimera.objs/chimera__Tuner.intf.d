lib/core/tuner.mli: Analytical Arch Ir Util
