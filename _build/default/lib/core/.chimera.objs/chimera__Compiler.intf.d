lib/core/compiler.mli: Arch Codegen Config Ir Microkernel Sim Tuner
