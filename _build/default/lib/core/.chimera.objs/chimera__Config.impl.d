lib/core/config.ml:
