lib/core/tuner.ml: Analytical Arch Array Ir List Sim Util
