lib/core/advisor.mli: Arch Ir
