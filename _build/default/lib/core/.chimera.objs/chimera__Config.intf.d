lib/core/config.mli:
