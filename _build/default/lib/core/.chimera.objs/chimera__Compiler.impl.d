lib/core/compiler.ml: Analytical Arch Codegen Config Ir List Microkernel Sim String Sys Tuner
