lib/core/advisor.ml: Arch Compiler Config Ir List Printf
