(** Chimera: the analytical optimizing framework for compute-intensive
    operator fusion — the paper's primary contribution, assembled.

    Given an operator chain and a target machine, [optimize] performs
    block decomposition, inter-block reordering against the analytical
    data-movement model (Section IV), intra-block scheduling through the
    replaceable micro-kernel registry (Section V), and produces compiled
    fused kernels that can be executed numerically, simulated against
    the memory hierarchy, cost-estimated, and emitted as source text.

    The {!Config} switches expose the ablation axes of Figure 10. *)

type unit_ = {
  sub_chain : Ir.Chain.t;
      (** the whole chain when fused; one stage when unfused. *)
  kernel : Codegen.Kernel.t;
  tuner : Tuner.result option;
      (** present when the sampling fallback chose the tiling. *)
}
(** One generated kernel. *)

type compiled = {
  chain : Ir.Chain.t;
  machine : Arch.Machine.t;
  config : Config.t;
  units : unit_ list;  (** in execution order. *)
}
(** The result of {!optimize}. *)

val split_stages : Ir.Chain.t -> Ir.Chain.t list
(** The unfused view: one single-stage chain per stage (standalone loop
    nests, intermediates spilled to DRAM). *)

val registry_for : Config.t -> Microkernel.Registry.t
(** The micro-kernel registry the configuration selects: the tuned
    kernels, or the naive ones when [use_micro_kernel] is off. *)

val optimize :
  ?config:Config.t -> machine:Arch.Machine.t -> Ir.Chain.t -> compiled
(** Compile a chain for a machine. *)

val reports : compiled -> (string * Sim.Perf.report) list
(** Per-kernel performance estimates, in execution order. *)

val total_time_seconds : compiled -> float
(** Sum of the kernels' estimated times (kernels run back to back). *)

val measure : compiled -> Sim.Trace.stats list
(** Replay each kernel against the simulated memory hierarchy. *)

val total_time_measured_seconds : compiled -> float
(** Like {!total_time_seconds} but with each kernel's DRAM traffic taken
    from the simulator instead of the analytical model. *)

val source : compiled -> string
(** Emitted source text of every kernel. *)

val run : compiled -> Sim.Exec.env -> unit
(** Execute the compiled kernels numerically on an environment created
    by [Sim.Exec.make_env] for the original chain. *)

val optimization_time_seconds : (unit -> 'a) -> 'a * float
(** Wall-clock helper used to report compilation overhead (§VI-E). *)
