lib/microkernel/cpu.ml: Arch Buffer Float Kernel_sig Printf Util
