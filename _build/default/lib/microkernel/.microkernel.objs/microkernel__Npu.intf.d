lib/microkernel/npu.mli: Kernel_sig
