lib/microkernel/npu.ml: Arch Buffer Kernel_sig Printf Util
