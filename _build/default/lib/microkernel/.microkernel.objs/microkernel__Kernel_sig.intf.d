lib/microkernel/kernel_sig.mli: Arch
