lib/microkernel/kernel_sig.ml: Arch Array
