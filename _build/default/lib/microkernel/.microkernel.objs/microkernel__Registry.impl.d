lib/microkernel/registry.ml: Arch Cpu Gpu Hashtbl Kernel_sig List Npu Printf
