lib/microkernel/registry.mli: Arch Kernel_sig
