lib/microkernel/gpu.mli: Kernel_sig
