lib/microkernel/gpu.ml: Arch Buffer Float Kernel_sig Printf Util
