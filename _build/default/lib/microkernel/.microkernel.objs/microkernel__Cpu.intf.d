lib/microkernel/cpu.mli: Kernel_sig
