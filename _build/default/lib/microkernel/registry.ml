type t = (string, Kernel_sig.impl list ref) Hashtbl.t

let create () : t = Hashtbl.create 8

let register t ~name impl =
  let entry =
    match Hashtbl.find_opt t name with
    | Some e -> e
    | None ->
        let e = ref [] in
        Hashtbl.add t name e;
        e
  in
  entry :=
    impl
    :: List.filter (fun (i : Kernel_sig.impl) -> i.id <> impl.Kernel_sig.id)
         !entry

let default () =
  let t = create () in
  register t ~name:"matmul" Cpu.impl;
  register t ~name:"matmul" Gpu.impl;
  register t ~name:"matmul" Npu.impl;
  t

let implementations t ~name =
  match Hashtbl.find_opt t name with Some e -> !e | None -> []

let lookup t ~name ~backend =
  List.find_opt
    (fun (i : Kernel_sig.impl) -> i.backend = backend)
    (implementations t ~name)

let lower t ~name ~machine =
  match lookup t ~name ~backend:machine.Arch.Machine.backend with
  | Some impl -> impl
  | None ->
      failwith
        (Printf.sprintf "no %s micro kernel registered for backend %s" name
           (Arch.Machine.backend_to_string machine.Arch.Machine.backend))

let names t = Hashtbl.fold (fun name _ acc -> name :: acc) t []
