(** The replaceable micro kernel abstraction (Section V-A).

    A replaceable micro kernel describes a computation block as a naive
    loop nest over input/output buffers; hardware-specific low-level
    implementations performing *the same computation* with different
    device instructions are registered under it and substituted at code
    generation time. *)

type buffers = {
  a : float array;
  a_off : int;
  lda : int;  (** row stride of A. *)
  b : float array;
  b_off : int;
  ldb : int;  (** row stride of B. *)
  c : float array;
  c_off : int;
  ldc : int;  (** row stride of C. *)
}
(** Flat views of the three matrix operands of a matmul-family block:
    [C[m,n] += A[m,k] * B[k,n]]. *)

type impl = {
  id : string;  (** e.g. ["cpu.avx512.outer_product"]. *)
  backend : Arch.Machine.backend;
  description : string;
  native_tile : int * int * int;
      (** (m, n, k) quantum the implementation processes at once; block
          shapes are rounded up to multiples of it by code generation. *)
  overlap : float;
      (** how well the kernel's schedule overlaps memory traffic with
          compute, in [0, 1]: 1 hides all transfer behind the pipeline,
          0 serialises them.  Feeds the execution-time model. *)
  efficiency :
    machine:Arch.Machine.t -> block_m:int -> block_n:int -> block_k:int ->
    float;
      (** modelled fraction of peak throughput sustained inside a block
          of the given shape (pipeline utilisation, load/store overhead,
          tail effects). *)
  emit : block_m:int -> block_n:int -> block_k:int -> string;
      (** the low-level program text (assembly / CUDA / NPU DSL). *)
  instruction_count : block_m:int -> block_n:int -> block_k:int -> int;
      (** static instruction count of the emitted block body. *)
  execute : m:int -> n:int -> k:int -> buffers -> unit;
      (** the semantic function: identical numerics on every backend. *)
}
(** One registered hardware-specific implementation. *)

val reference_execute : m:int -> n:int -> k:int -> buffers -> unit
(** The naive loop nest the replaceable micro kernel describes — the
    semantics every registered implementation must match. *)
