(** The Ascend NPU micro kernel of Section V-B: the [mad] pragma expects
    a six-loop tiled matrix multiplication

    {v C[m1,n1,m2,n2] += A[m1,k1,m2,k2] * B[k1,n1,n2,k2] v}

    over DMA-packed contiguous arrays.  The inner (m2, n2, k2) shape is
    fixed to the cube-unit lane count; (m1, n1) are maximised under the
    L0 buffer capacities with [M1 = N1], giving the arithmetic intensity

    {v AI = M1*M2*N1*N2 / (M1*M2 + N1*N2). v} *)

type params = {
  m1 : int;
  n1 : int;
  k1 : int;
  lane : int;  (** M2 = N2 = K2 = cube lanes (16). *)
}

val select_params :
  l0c_bytes:int -> l0ab_bytes:int -> lane:int -> params
(** [M1 = N1 = sqrt(L0C / (lane^2 * acc_bytes))] (fp32 accumulators) and
    [K1] bounded by the A-tile fitting L0A in fp16. *)

val params : params
(** Parameters for the Ascend 910 (64 KiB L0A/B, 256 KiB L0C, lane 16):
    [m1 = n1 = 16], [k1 = 8]. *)

val arithmetic_intensity : params -> float
(** The AI formula above. *)

val impl : Kernel_sig.impl
(** The registered implementation (id ["npu.cube.mad"]). *)
