type params = {
  frag_m : int;
  frag_n : int;
  wmma : int * int * int;
}

let params = { frag_m = 2; frag_n = 2; wmma = (16, 16, 16) }

let fragment_reuse p =
  (* Each mma consumes one A and one B fragment: an A fragment serves
     frag_n mmas and a B fragment serves frag_m, so on average each
     loaded fragment is used 2*fm*fn/(fm+fn) times. *)
  2.0 *. float_of_int (p.frag_m * p.frag_n) /. float_of_int (p.frag_m + p.frag_n)

(* Modelled utilisation: per k step the tensor cores issue
   [frag_m*frag_n] mma ops while [frag_m+frag_n] fragments stream from
   shared memory (one fragment load costs about one mma); the C
   fragments are loaded and stored once per block. *)
let efficiency p ~machine:_ ~block_m ~block_n ~block_k =
  let fm = p.frag_m and fn = p.frag_n in
  let _, _, wk = p.wmma in
  let steps = float_of_int (max 1 (Util.Ints.ceil_div (max 1 block_k) wk)) in
  let mma = float_of_int (fm * fn) in
  let loads = float_of_int (fm + fn) in
  let steady = steps *. Float.max mma loads in
  let epilogue = 2.0 *. mma in
  let pipeline = steps *. mma /. (steady +. epilogue) in
  let wm, wn, _ = p.wmma in
  let occupancy dim tile =
    let covered = Util.Ints.ceil_div (max 1 dim) tile * tile in
    float_of_int (max 1 dim) /. float_of_int covered
  in
  pipeline
  *. occupancy block_m (fm * wm)
  *. occupancy block_n (fn * wn)

let instruction_count p ~block_m ~block_n ~block_k =
  let wm, wn, wk = p.wmma in
  let tiles_m = Util.Ints.ceil_div (max 1 block_m) (p.frag_m * wm) in
  let tiles_n = Util.Ints.ceil_div (max 1 block_n) (p.frag_n * wn) in
  let steps = Util.Ints.ceil_div (max 1 block_k) wk in
  let per_tile =
    (2 * p.frag_m * p.frag_n)
    + (steps * (p.frag_m + p.frag_n + (p.frag_m * p.frag_n)))
  in
  tiles_m * tiles_n * per_tile

let emit p ~block_m ~block_n ~block_k =
  let wm, wn, wk = p.wmma in
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "// WMMA %dx%d-fragment outer-product micro kernel" p.frag_m p.frag_n;
  line "// covers block %dx%dx%d with %dx%dx%d fragments" block_m block_n
    block_k wm wn wk;
  line "wmma::fragment<matrix_a, %d, %d, %d, half, row_major> a[%d];" wm wn wk
    p.frag_m;
  line "wmma::fragment<matrix_b, %d, %d, %d, half, row_major> b[%d];" wm wn wk
    p.frag_n;
  line "wmma::fragment<accumulator, %d, %d, %d, half> c[%d][%d];" wm wn wk
    p.frag_m p.frag_n;
  for i = 0 to p.frag_m - 1 do
    for j = 0 to p.frag_n - 1 do
      line "wmma::load_matrix_sync(c[%d][%d], &C[%d][%d], ldc, mem_row_major);"
        i j (i * wm) (j * wn)
    done
  done;
  line "for (int kk = 0; kk < %d; kk += %d) {" block_k wk;
  for i = 0 to p.frag_m - 1 do
    line "  wmma::load_matrix_sync(a[%d], &A[%d][kk], lda);" i (i * wm)
  done;
  for j = 0 to p.frag_n - 1 do
    line "  wmma::load_matrix_sync(b[%d], &B[kk][%d], ldb);" j (j * wn)
  done;
  for i = 0 to p.frag_m - 1 do
    for j = 0 to p.frag_n - 1 do
      line "  wmma::mma_sync(c[%d][%d], a[%d], b[%d], c[%d][%d]);" i j i j i j
    done
  done;
  line "}";
  for i = 0 to p.frag_m - 1 do
    for j = 0 to p.frag_n - 1 do
      line "wmma::store_matrix_sync(&C[%d][%d], c[%d][%d], ldc, mem_row_major);"
        (i * wm) (j * wn) i j
    done
  done;
  Buffer.contents b

let make_impl ~id ~description ~overlap p =
  let wm, wn, wk = p.wmma in
  {
    Kernel_sig.id;
    overlap;
    backend = Arch.Machine.Gpu;
    description;
    native_tile = (p.frag_m * wm, p.frag_n * wn, wk);
    efficiency = efficiency p;
    emit = emit p;
    instruction_count = instruction_count p;
    execute = Kernel_sig.reference_execute;
  }

let impl =
  make_impl ~id:"gpu.wmma.2x2" ~overlap:0.9
    ~description:"Tensor Core WMMA 2x2-fragment outer product" params

let naive_impl =
  make_impl ~id:"gpu.wmma.naive" ~overlap:0.3
    ~description:"Tensor Core WMMA, one mma_sync per fragment pair"
    { params with frag_m = 1; frag_n = 1 }
