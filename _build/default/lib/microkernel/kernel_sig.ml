type buffers = {
  a : float array;
  a_off : int;
  lda : int;
  b : float array;
  b_off : int;
  ldb : int;
  c : float array;
  c_off : int;
  ldc : int;
}

type impl = {
  id : string;
  backend : Arch.Machine.backend;
  description : string;
  native_tile : int * int * int;
  overlap : float;
      (** how well the kernel's schedule overlaps memory traffic with
          compute, in [0, 1]: 1 hides all transfer behind the pipeline,
          0 serialises them.  Feeds the execution-time model. *)
  efficiency :
    machine:Arch.Machine.t -> block_m:int -> block_n:int -> block_k:int ->
    float;
  emit : block_m:int -> block_n:int -> block_k:int -> string;
  instruction_count : block_m:int -> block_n:int -> block_k:int -> int;
  execute : m:int -> n:int -> k:int -> buffers -> unit;
}

let reference_execute ~m ~n ~k buf =
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref buf.c.(buf.c_off + (i * buf.ldc) + j) in
      for p = 0 to k - 1 do
        acc :=
          !acc
          +. (buf.a.(buf.a_off + (i * buf.lda) + p)
             *. buf.b.(buf.b_off + (p * buf.ldb) + j))
      done;
      buf.c.(buf.c_off + (i * buf.ldc) + j) <- !acc
    done
  done
