(** The replaceable-micro-kernel registry (Figure 4).

    A replaceable micro kernel is named by the computation it describes
    (e.g. ["matmul"]); implementations for different backends are
    registered under that name and the right one is substituted during
    code generation according to the target machine. *)

type t
(** A mutable registry. *)

val create : unit -> t
(** An empty registry. *)

val default : unit -> t
(** A registry pre-populated with the paper's three matmul kernels:
    {!Cpu.impl}, {!Gpu.impl} and {!Npu.impl}. *)

val register : t -> name:string -> Kernel_sig.impl -> unit
(** Add an implementation under a replaceable kernel name.  Re-registering
    the same (name, backend, id) replaces the previous entry; a second
    distinct implementation for the same backend becomes an alternative
    (the latest registration wins lookup). *)

val lookup : t -> name:string -> backend:Arch.Machine.backend ->
  Kernel_sig.impl option
(** The implementation that will be substituted for the named replaceable
    kernel on the given backend. *)

val lower : t -> name:string -> machine:Arch.Machine.t -> Kernel_sig.impl
(** {!lookup} for the machine's backend; raises [Failure] with a clear
    message when no implementation is registered. *)

val implementations : t -> name:string -> Kernel_sig.impl list
(** Every implementation registered under a name, latest first. *)

val names : t -> string list
(** All replaceable kernel names. *)
