(** The Tensor-Core (WMMA) micro kernel of Section V-B.

    One [mma_sync] computes a 16x16x16 matrix multiplication; using it
    directly needs one fragment load per operand per mma, so the
    fragment-level arithmetic intensity is too low and the kernel is
    bound by shared-memory traffic.  The micro kernel instead unrolls a
    [2x2]-fragment outer product: per k step it loads 2 A fragments and
    2 B fragments and issues 4 mma ops, reusing every loaded fragment
    twice. *)

type params = {
  frag_m : int;  (** fragment rows of the C tile (2). *)
  frag_n : int;  (** fragment columns of the C tile (2). *)
  wmma : int * int * int;  (** the (16,16,16) fragment shape. *)
}

val params : params
(** The paper's 2x2 configuration. *)

val fragment_reuse : params -> float
(** [2 * frag_m * frag_n / (frag_m + frag_n)]: average times each loaded
    fragment is used (2.0 for the 2x2 kernel, 1.0 for the naive one). *)

val impl : Kernel_sig.impl
(** The registered implementation (id ["gpu.wmma.2x2"]). *)

val naive_impl : Kernel_sig.impl
(** The 1x1 (one mma per load pair) kernel — the inefficient baseline
    the paper argues against; used by the ablation study. *)
