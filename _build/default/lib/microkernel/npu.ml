type params = { m1 : int; n1 : int; k1 : int; lane : int }

let select_params ~l0c_bytes ~l0ab_bytes ~lane =
  (* C accumulates in fp32: M1*lane * N1*lane * 4 <= L0C with M1 = N1. *)
  let acc_bytes = 4 in
  let max_mn =
    int_of_float (sqrt (float_of_int (l0c_bytes / (lane * lane * acc_bytes))))
  in
  let m1 = max 1 (Util.Ints.prev_pow2 (max 1 max_mn)) in
  (* A tile in fp16: M1*lane * K1*lane * 2 <= L0A. *)
  let max_k1 = l0ab_bytes / (m1 * lane * lane * 2) in
  let k1 = max 1 (Util.Ints.prev_pow2 (max 1 max_k1)) in
  { m1; n1 = m1; k1; lane }

let params =
  select_params ~l0c_bytes:(256 * 1024) ~l0ab_bytes:(64 * 1024) ~lane:16

let arithmetic_intensity p =
  let m = p.m1 * p.lane and n = p.n1 * p.lane in
  float_of_int (m * n) /. float_of_int (m + n)

(* Modelled cube utilisation: the mad op sustains the cube as long as L0
   refills keep up; charged for DMA packing and partial-tile edges.  The
   kernel generator shrinks M1/N1 to the block shape, so small blocks
   cost arithmetic intensity rather than raw occupancy. *)
let adapt p ~block_m ~block_n =
  let fit limit dim =
    Util.Ints.clamp ~lo:1 ~hi:limit
      (Util.Ints.ceil_div (max 1 dim) p.lane)
  in
  { p with m1 = fit p.m1 block_m; n1 = fit p.n1 block_n }

let efficiency p ~machine:_ ~block_m ~block_n ~block_k =
  let p = adapt p ~block_m ~block_n in
  let ai = arithmetic_intensity p in
  let steady = ai /. (ai +. 16.0) in
  let packing = 0.95 in
  let tile_m = p.m1 * p.lane and tile_n = p.n1 * p.lane in
  let occupancy dim tile =
    let covered = Util.Ints.ceil_div (max 1 dim) tile * tile in
    float_of_int (max 1 dim) /. float_of_int covered
  in
  ignore block_k;
  steady *. packing *. occupancy block_m tile_m *. occupancy block_n tile_n

let instruction_count p ~block_m ~block_n ~block_k =
  let tile_m = p.m1 * p.lane and tile_n = p.n1 * p.lane in
  let tile_k = p.k1 * p.lane in
  let mads =
    Util.Ints.ceil_div (max 1 block_m) tile_m
    * Util.Ints.ceil_div (max 1 block_n) tile_n
    * Util.Ints.ceil_div (max 1 block_k) tile_k
  in
  (* one mad pragma + three DMA packs per tile step *)
  mads * 4

let emit p ~block_m ~block_n ~block_k =
  let b = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "# Ascend mad micro kernel: M1=%d N1=%d K1=%d lane=%d" p.m1 p.n1 p.k1
    p.lane;
  line "# covers block %dx%dx%d; AI = %.1f" block_m block_n block_k
    (arithmetic_intensity p);
  line "with tik.for_range(0, %d) as m1:" p.m1;
  line "  with tik.for_range(0, %d) as n1:" p.n1;
  line "    # DMA-pack A, B tiles into contiguous L0A/L0B arrays";
  line "    tik.data_move(l0a, a_l1[m1, :, :, :], pragma='dma_copy')";
  line "    tik.data_move(l0b, b_l1[:, n1, :, :], pragma='dma_copy')";
  line "    with tik.for_range(0, %d) as k1:" p.k1;
  line "      with tik.for_range(0, %d) as m2:" p.lane;
  line "        with tik.for_range(0, %d) as n2:" p.lane;
  line "          with tik.for_range(0, %d) as k2:" p.lane;
  line
    "            # pragma mad: C[m1,n1,m2,n2] += A[m1,k1,m2,k2] * \
     B[k1,n1,n2,k2]";
  line "            tik.mad(l0c[m1, n1, m2, n2], l0a[m1, k1, m2, k2],";
  line "                    l0b[k1, n1, n2, k2], pragma='mad')";
  line "tik.data_move(c_ub, l0c, pragma='dma_copy')  # to Unified Buffer";
  Buffer.contents b

let impl =
  {
    Kernel_sig.id = "npu.cube.mad";
    overlap = 0.85;
    backend = Arch.Machine.Npu;
    description =
      Printf.sprintf "Ascend cube mad kernel, M1=N1=%d K1=%d (AI %.0f)"
        params.m1 params.k1
        (arithmetic_intensity params);
    native_tile =
      (params.m1 * params.lane, params.n1 * params.lane, params.lane);
    efficiency = efficiency params;
    emit = emit params;
    instruction_count = instruction_count params;
    execute = Kernel_sig.reference_execute;
  }
