type params = { mi : int; ni : int; mii : int; pipeline_depth : int }

let select_params ~vector_registers =
  if vector_registers < 8 then
    invalid_arg "Cpu.select_params: register budget too small";
  let best = ref None in
  (* MII | MI and MII >= 2 (except the degenerate MI = 1), so MI is even
     whenever it exceeds 1; larger MII only wastes registers. *)
  for mi = 1 to vector_registers do
    if mi = 1 || mi mod 2 = 0 then
      for ni = 2 to vector_registers do
        if ni mod 2 = 0 then begin
          let mii = min mi 2 in
          let reg_used = (mi * ni) + ni + mii in
          if reg_used <= vector_registers then begin
            let ai = float_of_int (mi * ni) /. float_of_int (mi + ni) in
            let cand = (ai, mi, ni, mii) in
            match !best with
            | None -> best := Some cand
            | Some (bai, bmi, _, _) ->
                if ai > bai || (ai = bai && mi > bmi) then best := Some cand
          end
        end
      done
  done;
  match !best with
  | None -> invalid_arg "Cpu.select_params: no feasible kernel"
  | Some (_, mi, ni, mii) -> { mi; ni; mii; pipeline_depth = mi * ni }

let ki_for ~block_k = max 1 (min block_k 64)

let arithmetic_intensity p ~ki =
  let compute = p.mi * p.ni * ki in
  let loadstore = (ki * (p.mi + p.ni)) + (2 * p.mi * p.ni) in
  float_of_int compute /. float_of_int loadstore

let lanes = 16 (* fp32 elements per ZMM register *)
let avx2_lanes = 8 (* fp32 elements per YMM register *)
let params_32 = select_params ~vector_registers:32
let params_avx2 = select_params ~vector_registers:16

(* Modelled pipeline utilisation of one computation block: FMA-port-bound
   steady state, charged for the C-tile load/store prologue+epilogue and
   for partial tiles at the block edges. *)
let efficiency_with p ~machine:_ ~block_m ~block_n ~block_k =
  let bk = max 1 block_k in
  let fma_cycles_per_k = float_of_int (p.mi * p.ni) /. 2.0 in
  let load_cycles_per_k = float_of_int (p.mi + p.ni) /. 2.0 in
  let steady = float_of_int bk *. Float.max fma_cycles_per_k load_cycles_per_k in
  (* C loads at 2/cycle, C stores at 1/cycle. *)
  let prologue = float_of_int (p.mi * p.ni) *. 1.5 in
  let ideal = float_of_int bk *. fma_cycles_per_k in
  let pipeline = ideal /. (steady +. prologue) in
  let tile_n = p.ni * lanes in
  let occupancy dim tile =
    let covered = Util.Ints.ceil_div dim tile * tile in
    float_of_int dim /. float_of_int covered
  in
  pipeline *. occupancy (max 1 block_m) p.mi *. occupancy (max 1 block_n) tile_n

let efficiency = efficiency_with params_32

let invocations ~block_m ~block_n =
  Util.Ints.ceil_div (max 1 block_m) params_32.mi
  * Util.Ints.ceil_div (max 1 block_n) (params_32.ni * lanes)

let instructions_per_invocation ~block_k =
  let p = params_32 in
  let ki = max 1 block_k in
  (p.mi * p.ni) + (ki * (p.ni + p.mi + (p.mi * p.ni))) + (p.mi * p.ni)

let instruction_count ~block_m ~block_n ~block_k =
  invocations ~block_m ~block_n * instructions_per_invocation ~block_k

let emit ~block_m ~block_n ~block_k =
  let p = params_32 in
  let ki = ki_for ~block_k in
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "; AVX-512 outer-product micro kernel (MI=%d NI=%d MII=%d KI=%d)" p.mi
    p.ni p.mii ki;
  line "; covers block %dx%dx%d via %d invocation(s)" block_m block_n block_k
    (invocations ~block_m ~block_n);
  line "; rsi=A rbx=B rcx=C; zmm0-%d = C tile" ((p.mi * p.ni) - 1);
  for m = 0 to p.mi - 1 do
    for n = 0 to p.ni - 1 do
      line "  vmovups zmm%d, ZMMWORD PTR [rcx + %d]" ((m * p.ni) + n)
        (((m * p.ni) + n) * 64)
    done
  done;
  line ".k_loop:  ; KI = %d iterations" ki;
  for n = 0 to p.ni - 1 do
    line "  vmovups zmm%d, ZMMWORD PTR [rbx + %d]  ; B[k,%d*16]"
      ((p.mi * p.ni) + n)
      (n * 64) n
  done;
  let a_base = (p.mi * p.ni) + p.ni in
  for mo = 0 to (p.mi / p.mii) - 1 do
    for mi_ = 0 to p.mii - 1 do
      line "  vbroadcastss zmm%d, DWORD PTR [rsi + %d]  ; A[%d,k]"
        (a_base + mi_)
        (((mo * p.mii) + mi_) * 4)
        ((mo * p.mii) + mi_)
    done;
    for mi_ = 0 to p.mii - 1 do
      let m = (mo * p.mii) + mi_ in
      for n = 0 to p.ni - 1 do
        line "  vfmadd231ps zmm%d, zmm%d, zmm%d" ((m * p.ni) + n)
          (a_base + mi_)
          ((p.mi * p.ni) + n)
      done
    done
  done;
  line "  add rsi, 4";
  line "  add rbx, %d" (p.ni * 64);
  line "  dec r9";
  line "  jnz .k_loop";
  for m = 0 to p.mi - 1 do
    for n = 0 to p.ni - 1 do
      line "  vmovups ZMMWORD PTR [rcx + %d], zmm%d" (((m * p.ni) + n) * 64)
        ((m * p.ni) + n)
    done
  done;
  line "  ret";
  Buffer.contents b

let impl =
  {
    Kernel_sig.id = "cpu.avx512.outer_product";
    overlap = 0.9;
    backend = Arch.Machine.Cpu;
    description =
      Printf.sprintf
        "AVX-512 register outer product, MI=%d NI=%d MII=%d (Algorithm 2)"
        params_32.mi params_32.ni params_32.mii;
    native_tile = (params_32.mi, params_32.ni * lanes, 1);
    efficiency;
    emit;
    instruction_count;
    execute = Kernel_sig.reference_execute;
  }

(* The un-scheduled kernel the ablation study (Figure 10) compares
   against: one FMA per k step with no register blocking, so every step
   pays two loads per multiply-add and the pipeline is load-bound. *)
let naive_params = { mi = 1; ni = 1; mii = 1; pipeline_depth = 1 }

let naive_impl =
  {
    Kernel_sig.id = "cpu.avx512.naive";
    overlap = 0.15;
    backend = Arch.Machine.Cpu;
    description = "AVX-512 vectorised loop without register blocking";
    native_tile = (1, lanes, 1);
    efficiency = efficiency_with naive_params;
    emit =
      (fun ~block_m ~block_n ~block_k ->
        Printf.sprintf
          "; naive vector loop over %dx%dx%d: vmovups/vfmadd/vmovups per \
           element row\n"
          block_m block_n block_k);
    instruction_count =
      (fun ~block_m ~block_n ~block_k ->
        max 1 block_m * Util.Ints.ceil_div (max 1 block_n) lanes
        * max 1 block_k * 3);
    execute = Kernel_sig.reference_execute;
  }


(* A second CPU implementation registered under the same replaceable
   micro kernel: AVX2 with 16 YMM registers, selecting (MI, NI, MII) by
   the same analytical objective.  Demonstrates the extensibility claim
   of Section V-A — new hardware means registering a new low-level
   implementation, nothing else changes. *)
let avx2_impl =
  let p = params_avx2 in
  {
    Kernel_sig.id = "cpu.avx2.outer_product";
    overlap = 0.85;
    backend = Arch.Machine.Cpu;
    description =
      Printf.sprintf
        "AVX2 register outer product, MI=%d NI=%d MII=%d (Algorithm 2, 16 \
         YMM registers)"
        p.mi p.ni p.mii;
    native_tile = (p.mi, p.ni * avx2_lanes, 1);
    efficiency = efficiency_with p;
    emit =
      (fun ~block_m ~block_n ~block_k ->
        Printf.sprintf
          "; AVX2 outer-product micro kernel (MI=%d NI=%d MII=%d)\n; covers \
           block %dx%dx%d with ymm0-%d as the C tile\n; vbroadcastss / \
           vfmadd231ps structure as in the AVX-512 kernel, 8 lanes\n"
          p.mi p.ni p.mii block_m block_n block_k
          ((p.mi * p.ni) - 1));
    instruction_count =
      (fun ~block_m ~block_n ~block_k ->
        let ki = max 1 block_k in
        Util.Ints.ceil_div (max 1 block_m) p.mi
        * Util.Ints.ceil_div (max 1 block_n) (p.ni * avx2_lanes)
        * ((p.mi * p.ni) + (ki * (p.ni + p.mi + (p.mi * p.ni)))
          + (p.mi * p.ni)));
    execute = Kernel_sig.reference_execute;
  }
