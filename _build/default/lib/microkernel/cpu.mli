(** The CPU (AVX-512) micro kernel of Algorithm 2: a register-blocked
    outer product that hides load latency behind [MI x NI] consecutive
    FMA instructions.

    Parameters are chosen analytically by maximizing arithmetic
    intensity under the register budget (Section V-B):

    {v
    max   AI = #ComputeInst / #LoadStoreInst
    s.t.  RegUsed = MI*NI + NI + MII <= #Registers
    where #ComputeInst   = MI * NI * KI
          #LoadStoreInst = KI * (MI + NI) + 2 * MI * NI
    v}

    with two micro-architectural side constraints: [NI] is even (B-tile
    vector loads dual-issue) and [MII >= 2] (at least two A registers so
    an A load can overlap the FMAs using the previous one).  For a
    32-register Cascade Lake this selects [(MI, NI, MII) = (6, 4, 2)]
    with a pipeline depth of 24, exactly the paper's choice. *)

type params = {
  mi : int;  (** rows of C kept in registers. *)
  ni : int;  (** vector-register columns of C kept in registers. *)
  mii : int;  (** A-register group size (load double-buffering). *)
  pipeline_depth : int;  (** [mi * ni]: FMAs in flight per k step. *)
}

val select_params : vector_registers:int -> params
(** Maximize asymptotic AI [MI*NI / (MI+NI)] under the register budget;
    ties prefer the wider-M shape.  Raises if the budget is below the
    minimal kernel. *)

val ki_for : block_k:int -> int
(** The dynamic KI: the k-extent one micro-kernel invocation covers,
    [min block_k 64]. *)

val impl : Kernel_sig.impl
(** The registered AVX-512 implementation (id
    ["cpu.avx512.outer_product"]), parameterised for a 32-register
    machine and 16 fp32 lanes. *)

val arithmetic_intensity : params -> ki:int -> float
(** [#ComputeInst / #LoadStoreInst] for one invocation. *)

val naive_impl : Kernel_sig.impl
(** The unblocked vector loop used as the micro-kernel-less point of the
    Figure 10 ablation: no register tiling, load-bound pipeline. *)

val params_avx2 : params
(** The analytical selection for a 16-register (AVX2/YMM) machine. *)

val avx2_impl : Kernel_sig.impl
(** An AVX2 implementation registered under the same replaceable micro
    kernel — the Section V-A extensibility story: supporting new
    hardware is one registration. *)
