lib/ir/access.ml: Array Format Hashtbl List
