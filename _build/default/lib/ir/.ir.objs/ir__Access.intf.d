lib/ir/access.mli: Format
