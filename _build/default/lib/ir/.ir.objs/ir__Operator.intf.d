lib/ir/operator.mli: Access Format Tensor
