lib/ir/operator.ml: Access Format List Printf String Tensor
