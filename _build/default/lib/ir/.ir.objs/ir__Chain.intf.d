lib/ir/chain.mli: Axis Format Operator Tensor
