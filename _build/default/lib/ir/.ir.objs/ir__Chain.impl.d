lib/ir/chain.ml: Access Axis Format Hashtbl List Operator Printf Tensor
