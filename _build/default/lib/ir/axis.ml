type t = { name : string; extent : int }

let make name extent =
  if name = "" then invalid_arg "Axis.make: empty name";
  if extent <= 0 then invalid_arg "Axis.make: non-positive extent";
  { name; extent }

let equal a b = a.name = b.name && a.extent = b.extent
let find axes name = List.find (fun a -> a.name = name) axes
let find_opt axes name = List.find_opt (fun a -> a.name = name) axes
let names axes = List.map (fun a -> a.name) axes
let pp fmt a = Format.fprintf fmt "%s:%d" a.name a.extent
