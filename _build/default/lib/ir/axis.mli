(** Loop axes of a fused operator chain.

    An axis is one of the independent loops [l_1 .. l_I] of Section IV-B:
    loops shared between two operators in a chain appear once, under one
    name.  Axes are identified by name within a chain. *)

type t = { name : string; extent : int }
(** A loop with its original trip count [L_i]. *)

val make : string -> int -> t
(** [make name extent]; raises [Invalid_argument] on non-positive extent
    or empty name. *)

val equal : t -> t -> bool
(** Name and extent equality. *)

val find : t list -> string -> t
(** Lookup by name; raises [Not_found]. *)

val find_opt : t list -> string -> t option
(** Lookup by name. *)

val names : t list -> string list
(** The names, in order. *)

val pp : Format.formatter -> t -> unit
(** e.g. ["m:512"]. *)
