(** Affine tensor access maps.

    Each tensor dimension is indexed by an affine combination of chain
    axes plus a constant offset, e.g. the input height of a padded
    convolution is [oh*stride + kh - pad].  This is the only information
    the analytical model needs: which axes touch a tensor (observations
    1–3 of Section IV-B) and how large a data tile a set of tile sizes
    spans (the [getFootprint] of Algorithm 1). *)

type term = { axis : string; coeff : int }
(** One [coeff * axis] summand; [coeff > 0]. *)

type dim = { terms : term list; offset : int }
(** One tensor dimension's index expression: [offset + sum of terms].
    An empty term list denotes a broadcast (constant) dimension. *)

type t = dim list
(** One expression per tensor dimension, outermost dimension first. *)

val term : string -> int -> term
(** [term axis coeff]; raises on non-positive coefficient or empty name. *)

val dim : ?offset:int -> term list -> dim
(** A dimension expression; [offset] defaults to 0. *)

val simple : string list -> t
(** Access where dimension [i] is indexed directly by the [i]-th axis
    (coefficient 1, offset 0) — the GEMM/batch-GEMM case. *)

val axes_used : t -> string list
(** All axis names appearing in the access, deduplicated, in first-use
    order. *)

val uses_axis : t -> string -> bool
(** Whether the named axis appears (with its necessarily positive
    coefficient). *)

val tile_extent : t -> tile_of:(string -> int) -> int list
(** Extent of each dimension touched by one computation block whose tile
    sizes are given by [tile_of]: the footprint rule with window
    expansion, [sum_j coeff_j * (T_j - 1) + 1].  Offsets shift the
    window without changing its size, so they do not appear. *)

val eval : t -> value_of:(string -> int) -> int array
(** Concrete (possibly out-of-bounds, for padded windows) index of one
    iteration point. *)

val pp : Format.formatter -> t -> unit
(** e.g. ["[m][k]"] or ["[n][ic][oh*2+kh-1][ow*2+kw-1]"]. *)
