(** Compute-intensive operators expressed over the fused axes of a chain.

    An operator is a perfect loop nest over a subset of the chain's axes
    that reads tiles of its input tensors and accumulates into a tile of
    its output tensor — the computation-block view of Section IV-A. *)

type tensor_ref = {
  tensor : string;  (** tensor name, unique within a chain. *)
  dtype : Tensor.Dtype.t;
  dims : int list;  (** declared full extents, outermost first. *)
  access : Access.t;  (** index map over chain axes. *)
}
(** One use (read or write) of a tensor by an operator. *)

type t = {
  name : string;
  axes : string list;  (** the fused axes forming this op's loop nest. *)
  reduction_axes : string list;  (** subset of [axes]. *)
  inputs : tensor_ref list;
  output : tensor_ref;
  flops_per_point : int;  (** 2 for one fused multiply-add. *)
}
(** One compute-intensive operator. *)

val tensor_ref :
  tensor:string -> ?dtype:Tensor.Dtype.t -> dims:int list ->
  access:Access.t -> unit -> tensor_ref
(** Build a reference; checks that [dims] and [access] have equal rank.
    Default dtype is fp16. *)

val make :
  name:string -> axes:string list -> reduction_axes:string list ->
  inputs:tensor_ref list -> output:tensor_ref -> ?flops_per_point:int ->
  unit -> t
(** Build an operator; checks reduction axes are a subset of [axes], that
    every accessed axis is listed in [axes], and that the output is not
    indexed by a reduction axis. *)

val all_refs : t -> tensor_ref list
(** Inputs followed by the output. *)

val uses_axis : t -> string -> bool
(** Whether the axis belongs to this operator's loop nest. *)

val is_reduction : t -> string -> bool
(** Whether the axis is one of this operator's reduction loops. *)

val iteration_points : t -> extent_of:(string -> int) -> float
(** Product of this operator's loop extents. *)

val flops : t -> extent_of:(string -> int) -> float
(** Total floating-point operations. *)

val tensor_bytes : tensor_ref -> int
(** Full-tensor size in bytes (declared dims times dtype width). *)

val tile_footprint_elems : tensor_ref -> tile_of:(string -> int) -> int
(** Elements of the data tile touched by one block with the given tile
    sizes: the product of window-expanded per-dimension extents, each
    capped at the declared extent. *)

val tile_footprint_bytes : tensor_ref -> tile_of:(string -> int) -> int
(** {!tile_footprint_elems} times the dtype width. *)

val pp : Format.formatter -> t -> unit
(** e.g. ["gemm1: C[b][m][l] += A[b][m][k] * B[b][k][l]  (reduce k)"]. *)
