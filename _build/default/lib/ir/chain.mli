(** Chains of compute-intensive operators with strict data dependency.

    A chain is expressed over one set of *fused axes*: loops shared by
    two operators appear once (the paper's [I] independent loops), and a
    producer whose output is consumed through a sliding window (conv
    chains) has its loop nest re-expressed in the consumer's axes — which
    faithfully models the recomputation fusion introduces for 3x3
    windows.

    Each stage may carry a memory-intensive epilogue (ReLU, softmax)
    applied to its output; epilogues do not join the block-reordering
    search (they are fused by the standard elementwise rules, Section
    IV-B), but they do affect numerics, FLOP counts and what the baseline
    compilers are able to fuse. *)

type epilogue =
  | Identity
  | Relu
  | Softmax of { axis : string }
      (** row softmax along the named chain axis. *)

type stage = {
  op : Operator.t;  (** the operator in fused-axes form. *)
  epilogue : epilogue;
  standalone : Operator.t;
      (** the same operator as an isolated loop nest (no recomputation);
          identical to [op] for GEMM chains, and what unfused baselines
          execute. *)
}

type t = {
  name : string;
  axes : Axis.t list;  (** the fused independent loops [l_1..l_I]. *)
  stages : stage list;  (** producers before consumers. *)
}

val make : name:string -> axes:Axis.t list -> stages:stage list -> t
(** Validates axis references, producer/consumer linkage and tensor
    declaration consistency; raises [Invalid_argument] on violations. *)

(** {1 Builders} *)

val batch_gemm_chain :
  name:string -> batch:int -> m:int -> n:int -> k:int -> l:int ->
  ?softmax:bool -> ?dtype:Tensor.Dtype.t -> unit -> t
(** The attention batch-GEMM chain of Figure 1a / Figure 2:
    [C = A x B] ((batch,M,K) x (batch,K,L)) then [E = C x D]
    ((batch,M,L) x (batch,L,N)), with an optional softmax over [l]
    between them.  Axes: [b, m, n, k, l]. *)

val single_batch_gemm :
  name:string -> batch:int -> m:int -> n:int -> k:int ->
  ?dtype:Tensor.Dtype.t -> unit -> t
(** A one-stage chain (used for unfused baselines and tests). *)

val batch_gemm_chain3 :
  name:string -> batch:int -> m:int -> k:int -> l:int -> n:int -> p:int ->
  ?dtype:Tensor.Dtype.t -> unit -> t
(** A three-GEMM chain [G = ((A x B) x D) x F]: the "more
    compute-intensive operators" case of Section IV-B, for which the
    paper notes the analysis method remains the same.  Shapes:
    [(batch,M,K) x (batch,K,L)], then [x (batch,L,N)], then
    [x (batch,N,P)].  Axes: [b, m, k, l, n, p]; both [l] and [n] are
    shared producer-spatial / consumer-reduction axes. *)

val conv_chain :
  name:string -> ?batch:int -> ic:int -> h:int -> w:int -> oc1:int ->
  oc2:int -> st1:int -> st2:int -> k1:int -> k2:int -> ?relu:bool ->
  ?dtype:Tensor.Dtype.t -> unit -> t
(** The convolution chain of Figure 1b / Table V: conv(k1,st1) then
    conv(k2,st2), with optional ReLU after each convolution.  Both
    convolutions use "same"-style zero padding of [(k-1)/2].  Axes (up to
    ten): [n, oc2, oh, ow, oc1, kh2, kw2, ic, kh1, kw1]. *)

val single_conv2d :
  name:string -> ?batch:int -> ic:int -> h:int -> w:int -> oc:int -> k:int ->
  st:int -> ?relu:bool -> ?dtype:Tensor.Dtype.t -> unit -> t
(** A one-stage convolution chain (for unfused baselines and graph
    segments without a fusion partner). *)

val with_epilogues : t -> epilogue list -> t
(** Replace each stage's epilogue (one entry per stage, in order). *)

val conv_out : h:int -> k:int -> st:int -> int
(** Output spatial extent of a padded convolution:
    [(h + 2*((k-1)/2) - k)/st + 1]. *)

(** {1 Analysis} *)

val extent_of : t -> string -> int
(** Trip count of a chain axis; raises [Not_found] for unknown names. *)

val stage_count : t -> int
(** Number of compute-intensive stages. *)

val tensor_names : t -> string list
(** All distinct tensor names, in first-use order. *)

val find_ref : t -> string -> Operator.tensor_ref
(** A representative reference for a tensor name. *)

val intermediate_names : t -> string list
(** Tensors produced by one stage and consumed by a later one — held in
    on-chip memory by the fused kernel, so they cause no data movement. *)

val io_names : t -> string list
(** Chain inputs plus the final output: the tensors whose movement
    Algorithm 1 charges ([Ops.IOTensors()]). *)

val is_intermediate : t -> string -> bool
(** Membership in {!intermediate_names}. *)

val axis_is_private : t -> string -> bool
(** Whether the axis is used by exactly one stage (a producer-private
    reduction loop such as [k] in the GEMM chain — observation 3). *)

val producer_stage : t -> string -> int option
(** Index of the stage producing the named tensor, if any. *)

val fused_flops : t -> float
(** FLOPs of the fused execution (conv chains include window
    recomputation), epilogues included. *)

val standalone_flops : t -> float
(** FLOPs of the unfused execution: each stage at its standalone
    iteration count, epilogues included. *)

val epilogue_flops : t -> stage -> float
(** FLOPs charged for one stage's epilogue (1/elem for ReLU, 3/elem for
    softmax's exp+sum+div, 0 for identity). *)

val io_bytes : t -> float
(** Total bytes of the chain's input/output tensors: the lower bound on
    any implementation's DRAM traffic. *)

val unfused_dram_bytes : t -> float
(** DRAM traffic floor of the *unfused* execution: IO tensors plus every
    intermediate written once and read once. *)

val pp : Format.formatter -> t -> unit
(** Multi-line chain description. *)
