type epilogue = Identity | Relu | Softmax of { axis : string }

type stage = {
  op : Operator.t;
  epilogue : epilogue;
  standalone : Operator.t;
}

type t = { name : string; axes : Axis.t list; stages : stage list }

let validate t =
  let fail fmt = Printf.ksprintf invalid_arg ("Chain.make: " ^^ fmt) in
  if t.stages = [] then fail "no stages";
  let axis_names = Axis.names t.axes in
  List.iter
    (fun stage ->
      List.iter
        (fun a ->
          if not (List.mem a axis_names) then
            fail "op %s uses unknown axis %s" stage.op.Operator.name a)
        stage.op.Operator.axes)
    t.stages;
  (* Producer/consumer linkage: every stage after the first must read the
     previous stage's output. *)
  let rec link = function
    | a :: (b :: _ as rest) ->
        let prev = a.op.Operator.output.Operator.tensor in
        let reads =
          List.exists
            (fun (r : Operator.tensor_ref) -> r.tensor = prev)
            b.op.Operator.inputs
        in
        if not reads then
          fail "stage %s does not consume %s" b.op.Operator.name prev;
        link rest
    | _ -> ()
  in
  link t.stages;
  (* Tensor declarations must agree wherever a name is reused. *)
  let decls = Hashtbl.create 8 in
  List.iter
    (fun stage ->
      List.iter
        (fun (r : Operator.tensor_ref) ->
          match Hashtbl.find_opt decls r.tensor with
          | None -> Hashtbl.add decls r.tensor (r.dims, r.dtype)
          | Some (dims, dtype) ->
              if dims <> r.dims || dtype <> r.dtype then
                fail "tensor %s declared with conflicting dims/dtype" r.tensor)
        (Operator.all_refs stage.op))
    t.stages;
  (* Softmax epilogues must name an axis of their own stage. *)
  List.iter
    (fun stage ->
      match stage.epilogue with
      | Softmax { axis } when not (List.mem axis stage.op.Operator.axes) ->
          fail "softmax axis %s not in op %s" axis stage.op.Operator.name
      | _ -> ())
    t.stages

let make ~name ~axes ~stages =
  let t = { name; axes; stages } in
  validate t;
  t

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)
(* ------------------------------------------------------------------ *)

let batch_gemm_chain ~name ~batch ~m ~n ~k ~l ?(softmax = false)
    ?(dtype = Tensor.Dtype.Fp16) () =
  let axes =
    [
      Axis.make "b" batch;
      Axis.make "m" m;
      Axis.make "n" n;
      Axis.make "k" k;
      Axis.make "l" l;
    ]
  in
  let ref_ tensor dims names =
    Operator.tensor_ref ~tensor ~dtype ~dims ~access:(Access.simple names) ()
  in
  let a = ref_ "A" [ batch; m; k ] [ "b"; "m"; "k" ] in
  let b_ = ref_ "B" [ batch; k; l ] [ "b"; "k"; "l" ] in
  let c = ref_ "C" [ batch; m; l ] [ "b"; "m"; "l" ] in
  let d = ref_ "D" [ batch; l; n ] [ "b"; "l"; "n" ] in
  let e = ref_ "E" [ batch; m; n ] [ "b"; "m"; "n" ] in
  let gemm1 =
    Operator.make ~name:"gemm1"
      ~axes:[ "b"; "m"; "l"; "k" ]
      ~reduction_axes:[ "k" ] ~inputs:[ a; b_ ] ~output:c ()
  in
  let gemm2 =
    Operator.make ~name:"gemm2"
      ~axes:[ "b"; "m"; "n"; "l" ]
      ~reduction_axes:[ "l" ] ~inputs:[ c; d ] ~output:e ()
  in
  let epi1 = if softmax then Softmax { axis = "l" } else Identity in
  make ~name ~axes
    ~stages:
      [
        { op = gemm1; epilogue = epi1; standalone = gemm1 };
        { op = gemm2; epilogue = Identity; standalone = gemm2 };
      ]

let single_batch_gemm ~name ~batch ~m ~n ~k ?(dtype = Tensor.Dtype.Fp16) () =
  let axes =
    [ Axis.make "b" batch; Axis.make "m" m; Axis.make "n" n; Axis.make "k" k ]
  in
  let ref_ tensor dims names =
    Operator.tensor_ref ~tensor ~dtype ~dims ~access:(Access.simple names) ()
  in
  let a = ref_ "A" [ batch; m; k ] [ "b"; "m"; "k" ] in
  let b_ = ref_ "B" [ batch; k; n ] [ "b"; "k"; "n" ] in
  let c = ref_ "C" [ batch; m; n ] [ "b"; "m"; "n" ] in
  let gemm =
    Operator.make ~name:"gemm"
      ~axes:[ "b"; "m"; "n"; "k" ]
      ~reduction_axes:[ "k" ] ~inputs:[ a; b_ ] ~output:c ()
  in
  make ~name ~axes ~stages:[ { op = gemm; epilogue = Identity; standalone = gemm } ]

let batch_gemm_chain3 ~name ~batch ~m ~k ~l ~n ~p ?(dtype = Tensor.Dtype.Fp16)
    () =
  let axes =
    [
      Axis.make "b" batch;
      Axis.make "m" m;
      Axis.make "k" k;
      Axis.make "l" l;
      Axis.make "n" n;
      Axis.make "p" p;
    ]
  in
  let ref_ tensor dims names =
    Operator.tensor_ref ~tensor ~dtype ~dims ~access:(Access.simple names) ()
  in
  let a = ref_ "A" [ batch; m; k ] [ "b"; "m"; "k" ] in
  let b_ = ref_ "B" [ batch; k; l ] [ "b"; "k"; "l" ] in
  let c = ref_ "C" [ batch; m; l ] [ "b"; "m"; "l" ] in
  let d = ref_ "D" [ batch; l; n ] [ "b"; "l"; "n" ] in
  let e = ref_ "E" [ batch; m; n ] [ "b"; "m"; "n" ] in
  let f = ref_ "F" [ batch; n; p ] [ "b"; "n"; "p" ] in
  let g = ref_ "G" [ batch; m; p ] [ "b"; "m"; "p" ] in
  let gemm1 =
    Operator.make ~name:"gemm1"
      ~axes:[ "b"; "m"; "l"; "k" ]
      ~reduction_axes:[ "k" ] ~inputs:[ a; b_ ] ~output:c ()
  in
  let gemm2 =
    Operator.make ~name:"gemm2"
      ~axes:[ "b"; "m"; "n"; "l" ]
      ~reduction_axes:[ "l" ] ~inputs:[ c; d ] ~output:e ()
  in
  let gemm3 =
    Operator.make ~name:"gemm3"
      ~axes:[ "b"; "m"; "p"; "n" ]
      ~reduction_axes:[ "n" ] ~inputs:[ e; f ] ~output:g ()
  in
  let stage op = { op; epilogue = Identity; standalone = op } in
  make ~name ~axes ~stages:[ stage gemm1; stage gemm2; stage gemm3 ]

let conv_out ~h ~k ~st =
  let pad = (k - 1) / 2 in
  ((h + (2 * pad) - k) / st) + 1

let conv_chain ~name ?(batch = 1) ~ic ~h ~w ~oc1 ~oc2 ~st1 ~st2 ~k1 ~k2
    ?(relu = false) ?(dtype = Tensor.Dtype.Fp16) () =
  let p1 = (k1 - 1) / 2 and p2 = (k2 - 1) / 2 in
  let oh1 = conv_out ~h ~k:k1 ~st:st1 in
  let ow1 = conv_out ~h:w ~k:k1 ~st:st1 in
  let oh2 = conv_out ~h:oh1 ~k:k2 ~st:st2 in
  let ow2 = conv_out ~h:ow1 ~k:k2 ~st:st2 in
  let axes =
    [
      Axis.make "n" batch;
      Axis.make "oc2" oc2;
      Axis.make "oh" oh2;
      Axis.make "ow" ow2;
      Axis.make "oc1" oc1;
      Axis.make "kh2" k2;
      Axis.make "kw2" k2;
      Axis.make "ic" ic;
      Axis.make "kh1" k1;
      Axis.make "kw1" k1;
    ]
  in
  let open Access in
  (* conv1's spatial position, expressed in the consumer's axes:
     oh1 = oh*st2 + kh2 - p2 (and likewise for width). *)
  let o1_h = dim ~offset:(-p2) [ term "oh" st2; term "kh2" 1 ] in
  let o1_w = dim ~offset:(-p2) [ term "ow" st2; term "kw2" 1 ] in
  (* conv1's input position after composing both windows:
     ih = oh1*st1 + kh1 - p1 = oh*(st1*st2) + kh2*st1 + kh1 - (p2*st1 + p1). *)
  let i_h =
    dim
      ~offset:(-((p2 * st1) + p1))
      [ term "oh" (st1 * st2); term "kh2" st1; term "kh1" 1 ]
  in
  let i_w =
    dim
      ~offset:(-((p2 * st1) + p1))
      [ term "ow" (st1 * st2); term "kw2" st1; term "kw1" 1 ]
  in
  let input =
    Operator.tensor_ref ~tensor:"I" ~dtype ~dims:[ batch; ic; h; w ]
      ~access:[ dim [ term "n" 1 ]; dim [ term "ic" 1 ]; i_h; i_w ]
      ()
  in
  let w1 =
    Operator.tensor_ref ~tensor:"W1" ~dtype
      ~dims:[ oc1; ic; k1; k1 ]
      ~access:(Access.simple [ "oc1"; "ic"; "kh1"; "kw1" ])
      ()
  in
  let o1_fused =
    Operator.tensor_ref ~tensor:"O1" ~dtype
      ~dims:[ batch; oc1; oh1; ow1 ]
      ~access:[ dim [ term "n" 1 ]; dim [ term "oc1" 1 ]; o1_h; o1_w ]
      ()
  in
  let w2 =
    Operator.tensor_ref ~tensor:"W2" ~dtype
      ~dims:[ oc2; oc1; k2; k2 ]
      ~access:(Access.simple [ "oc2"; "oc1"; "kh2"; "kw2" ])
      ()
  in
  let o2 =
    Operator.tensor_ref ~tensor:"O2" ~dtype
      ~dims:[ batch; oc2; oh2; ow2 ]
      ~access:(Access.simple [ "n"; "oc2"; "oh"; "ow" ])
      ()
  in
  let conv1_fused =
    Operator.make ~name:"conv1"
      ~axes:[ "n"; "oc1"; "oh"; "kh2"; "ow"; "kw2"; "ic"; "kh1"; "kw1" ]
      ~reduction_axes:[ "ic"; "kh1"; "kw1" ]
      ~inputs:[ input; w1 ] ~output:o1_fused ()
  in
  let conv2 =
    Operator.make ~name:"conv2"
      ~axes:[ "n"; "oc2"; "oh"; "ow"; "oc1"; "kh2"; "kw2" ]
      ~reduction_axes:[ "oc1"; "kh2"; "kw2" ]
      ~inputs:[ o1_fused; w2 ] ~output:o2 ()
  in
  (* The standalone (unfused) conv1 iterates its own output grid once —
     no recomputation.  It lives over private standalone axes. *)
  let conv1_standalone =
    let s_axes = [ "n"; "oc1"; "s_oh"; "s_ow"; "ic"; "kh1"; "kw1" ] in
    let i_ref =
      Operator.tensor_ref ~tensor:"I" ~dtype ~dims:[ batch; ic; h; w ]
        ~access:
          [
            dim [ term "n" 1 ];
            dim [ term "ic" 1 ];
            dim ~offset:(-p1) [ term "s_oh" st1; term "kh1" 1 ];
            dim ~offset:(-p1) [ term "s_ow" st1; term "kw1" 1 ];
          ]
        ()
    in
    let o_ref =
      Operator.tensor_ref ~tensor:"O1" ~dtype
        ~dims:[ batch; oc1; oh1; ow1 ]
        ~access:(Access.simple [ "n"; "oc1"; "s_oh"; "s_ow" ])
        ()
    in
    Operator.make ~name:"conv1" ~axes:s_axes
      ~reduction_axes:[ "ic"; "kh1"; "kw1" ]
      ~inputs:[ i_ref; w1 ] ~output:o_ref ()
  in
  let epi = if relu then Relu else Identity in
  let axes =
    axes @ [ Axis.make "s_oh" oh1; Axis.make "s_ow" ow1 ]
  in
  make ~name ~axes
    ~stages:
      [
        { op = conv1_fused; epilogue = epi; standalone = conv1_standalone };
        { op = conv2; epilogue = epi; standalone = conv2 };
      ]

let single_conv2d ~name ?(batch = 1) ~ic ~h ~w ~oc ~k ~st ?(relu = false)
    ?(dtype = Tensor.Dtype.Fp16) () =
  let p = (k - 1) / 2 in
  let oh = conv_out ~h ~k ~st in
  let ow = conv_out ~h:w ~k ~st in
  let axes =
    [
      Axis.make "n" batch;
      Axis.make "oc" oc;
      Axis.make "oh" oh;
      Axis.make "ow" ow;
      Axis.make "ic" ic;
      Axis.make "kh" k;
      Axis.make "kw" k;
    ]
  in
  let open Access in
  let input =
    Operator.tensor_ref ~tensor:"I" ~dtype ~dims:[ batch; ic; h; w ]
      ~access:
        [
          dim [ term "n" 1 ];
          dim [ term "ic" 1 ];
          dim ~offset:(-p) [ term "oh" st; term "kh" 1 ];
          dim ~offset:(-p) [ term "ow" st; term "kw" 1 ];
        ]
      ()
  in
  let weight =
    Operator.tensor_ref ~tensor:"W" ~dtype
      ~dims:[ oc; ic; k; k ]
      ~access:(Access.simple [ "oc"; "ic"; "kh"; "kw" ])
      ()
  in
  let output =
    Operator.tensor_ref ~tensor:"O" ~dtype
      ~dims:[ batch; oc; oh; ow ]
      ~access:(Access.simple [ "n"; "oc"; "oh"; "ow" ])
      ()
  in
  let conv =
    Operator.make ~name:"conv"
      ~axes:[ "n"; "oc"; "oh"; "ow"; "ic"; "kh"; "kw" ]
      ~reduction_axes:[ "ic"; "kh"; "kw" ]
      ~inputs:[ input; weight ] ~output ()
  in
  let epilogue = if relu then Relu else Identity in
  make ~name ~axes ~stages:[ { op = conv; epilogue; standalone = conv } ]

let with_epilogues t epilogues =
  if List.length epilogues <> List.length t.stages then
    invalid_arg "Chain.with_epilogues: arity mismatch";
  make ~name:t.name ~axes:t.axes
    ~stages:
      (List.map2
         (fun stage epilogue -> { stage with epilogue })
         t.stages epilogues)

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

let extent_of t name = (Axis.find t.axes name).Axis.extent
let stage_count t = List.length t.stages

let all_refs t =
  List.concat_map (fun s -> Operator.all_refs s.op) t.stages

let tensor_names t =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun (r : Operator.tensor_ref) ->
      if Hashtbl.mem seen r.tensor then None
      else begin
        Hashtbl.add seen r.tensor ();
        Some r.tensor
      end)
    (all_refs t)

let find_ref t name =
  match
    List.find_opt (fun (r : Operator.tensor_ref) -> r.tensor = name) (all_refs t)
  with
  | Some r -> r
  | None -> raise Not_found

let intermediate_names t =
  let produced =
    List.map (fun s -> s.op.Operator.output.Operator.tensor) t.stages
  in
  let consumed =
    List.concat_map
      (fun s ->
        List.map (fun (r : Operator.tensor_ref) -> r.tensor) s.op.Operator.inputs)
      t.stages
  in
  List.filter (fun n -> List.mem n consumed) produced

let io_names t =
  let inter = intermediate_names t in
  List.filter (fun n -> not (List.mem n inter)) (tensor_names t)

let is_intermediate t name = List.mem name (intermediate_names t)

let axis_is_private t name =
  let users =
    List.filter (fun s -> Operator.uses_axis s.op name) t.stages
  in
  List.length users = 1

let producer_stage t name =
  let rec go i = function
    | [] -> None
    | s :: rest ->
        if s.op.Operator.output.Operator.tensor = name then Some i
        else go (i + 1) rest
  in
  go 0 t.stages

let epilogue_elems t stage =
  (* Epilogues apply once per element of the stage's (standalone) output. *)
  ignore t;
  List.fold_left
    (fun acc d -> acc *. float_of_int d)
    1.0 stage.standalone.Operator.output.Operator.dims

let epilogue_flops t stage =
  match stage.epilogue with
  | Identity -> 0.0
  | Relu -> epilogue_elems t stage
  | Softmax _ -> 3.0 *. epilogue_elems t stage

let fused_flops t =
  let extent_of = extent_of t in
  List.fold_left
    (fun acc s -> acc +. Operator.flops s.op ~extent_of +. epilogue_flops t s)
    0.0 t.stages

let standalone_flops t =
  let extent_of = extent_of t in
  List.fold_left
    (fun acc s ->
      acc +. Operator.flops s.standalone ~extent_of +. epilogue_flops t s)
    0.0 t.stages

let io_bytes t =
  List.fold_left
    (fun acc name ->
      acc +. float_of_int (Operator.tensor_bytes (find_ref t name)))
    0.0 (io_names t)

let unfused_dram_bytes t =
  let inter =
    List.fold_left
      (fun acc name ->
        acc +. (2.0 *. float_of_int (Operator.tensor_bytes (find_ref t name))))
      0.0 (intermediate_names t)
  in
  io_bytes t +. inter

let pp fmt t =
  Format.fprintf fmt "chain %s over" t.name;
  List.iter (fun a -> Format.fprintf fmt " %a" Axis.pp a) t.axes;
  Format.pp_print_newline fmt ();
  List.iter
    (fun s ->
      Format.fprintf fmt "  %a" Operator.pp s.op;
      (match s.epilogue with
      | Identity -> ()
      | Relu -> Format.pp_print_string fmt "  ; relu"
      | Softmax { axis } -> Format.fprintf fmt "  ; softmax(%s)" axis);
      Format.pp_print_newline fmt ())
    t.stages
