type t = {
  line_bytes : int;
  ways : int;
  sets : int;
  tags : int array array;  (* [set][way], -1 = invalid *)
  stamps : int array array;  (* LRU timestamps *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

let create ~capacity_bytes ~line_bytes ?(ways = 8) () =
  if capacity_bytes <= 0 || line_bytes <= 0 || ways <= 0 then
    invalid_arg "Line_cache.create: non-positive parameter";
  if capacity_bytes mod (line_bytes * ways) <> 0 then
    invalid_arg "Line_cache.create: capacity not a multiple of ways * line";
  let sets = capacity_bytes / (line_bytes * ways) in
  {
    line_bytes;
    ways;
    sets;
    tags = Array.make_matrix sets ways (-1);
    stamps = Array.make_matrix sets ways 0;
    clock = 0;
    accesses = 0;
    misses = 0;
  }

let access t ~addr =
  if addr < 0 then invalid_arg "Line_cache.access: negative address";
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let line = addr / t.line_bytes in
  let set = line mod t.sets in
  let tag = line / t.sets in
  let tags = t.tags.(set) and stamps = t.stamps.(set) in
  let found = ref (-1) in
  for w = 0 to t.ways - 1 do
    if tags.(w) = tag then found := w
  done;
  if !found >= 0 then begin
    stamps.(!found) <- t.clock;
    Lru.Hit
  end
  else begin
    t.misses <- t.misses + 1;
    (* Replace the least recently used way. *)
    let victim = ref 0 in
    for w = 1 to t.ways - 1 do
      if stamps.(w) < stamps.(!victim) then victim := w
    done;
    tags.(!victim) <- tag;
    stamps.(!victim) <- t.clock;
    Lru.Miss
  end

let access_range t ~addr ~bytes =
  if bytes > 0 then begin
    let first = addr / t.line_bytes in
    let last = (addr + bytes - 1) / t.line_bytes in
    for line = first to last do
      ignore (access t ~addr:(line * t.line_bytes))
    done
  end

let accesses t = t.accesses
let misses t = t.misses
let bytes_in t = float_of_int (t.misses * t.line_bytes)

let hit_rate t =
  if t.accesses = 0 then 1.0
  else 1.0 -. (float_of_int t.misses /. float_of_int t.accesses)
