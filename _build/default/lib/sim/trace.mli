(** Block-level execution traces of a fused kernel.

    The fused loop nest visits blocks in lexicographic order of the
    chosen permutation; at each visit, each stage whose guard passes
    (first visit of the loops it does not own; producers' reduction
    loops complete before consumers run) touches its data tiles.  The
    trace drives both the numeric executor and the cache simulator. *)

type starts = (string * int) list
(** Element-granular block origin: one (axis, start) per permuted axis. *)

val iter_blocks :
  ?bounds:(string * (int * int)) list -> perm:string list ->
  tiling:Analytical.Tiling.t -> f:(starts -> unit) -> unit -> unit
(** Visit every block origin in execution order (outermost axis
    slowest).  [bounds] restricts named axes to a half-open element
    range — how one parallel task covers its slice of the grid. *)

val iter_blocks_hier :
  levels:(string list * Analytical.Tiling.t) list -> f:(starts -> unit) ->
  unit
(** Multi-level iteration (Section IV-C): visit the outermost level's
    blocks in its own order and cover each with the next level's
    sub-blocks in *that* level's order, recursively.  [levels] is
    outermost first; the callback receives absolute origins at the
    innermost granularity. *)

val block_count : perm:string list -> tiling:Analytical.Tiling.t -> float
(** Number of visits {!iter_blocks} makes. *)

val stage_runs :
  Ir.Chain.t -> stage_index:int -> tiling:Analytical.Tiling.t -> starts ->
  bool
(** The guard: whether stage [stage_index] executes at this block visit.
    For every permuted axis the stage does not own, the visit must be at
    block 0 — or at the *last* block when the axis is a reduction loop
    of an earlier stage (the consumer waits for the producer's tile to
    complete). *)

val is_last_reduction_block :
  Ir.Chain.stage -> tiling:Analytical.Tiling.t -> starts -> bool
(** Whether all of the stage's own reduction axes are at their final
    block — the point where its output tile is complete and the
    epilogue fires. *)

val tile_key : Ir.Operator.tensor_ref -> starts -> string
(** Stable identity of the data tile a reference touches from this
    block: the tensor name plus the block origin restricted to the axes
    the access uses. *)

type level_stats = {
  level : Arch.Level.t;
  hit_rate : float;
  accesses : int;
  misses : int;
  bytes_in : float;  (** traffic filling this level from outside. *)
  bytes_accessed : float;  (** traffic this level serves inward. *)
}

type stats = {
  levels : level_stats list;  (** innermost level first. *)
  dram_bytes : float;
      (** bytes crossing the DRAM boundary (the outermost level's
          [bytes_in]). *)
  blocks_visited : int;
  stage_executions : int;
}

val measure_chain :
  Ir.Chain.t -> levels:Arch.Level.t list -> perm:string list ->
  tiling:Analytical.Tiling.t -> ?spill_intermediates:bool -> unit -> stats
(** Replay the tile trace against one LRU per on-chip level (independent
    capacities) and report per-level statistics — the simulator's
    "hardware counters".  With [spill_intermediates] the intermediate
    tensors bypass every cache (each touch moves their bytes), modelling
    an implementation that does not keep producer results on chip
    (Figure 8f). *)

val measure_hier :
  Ir.Chain.t -> levels:Arch.Level.t list ->
  plan_levels:(string list * Analytical.Tiling.t) list ->
  ?spill_intermediates:bool -> unit -> stats
(** {!measure_chain} over the hierarchical iteration of
    {!iter_blocks_hier}; tile accesses are issued at the innermost
    level's granularity. *)

val measure : Codegen.Kernel.t -> stats
(** Replay a compiled kernel: hierarchical iteration over its level
    plans (outermost plan's order outside, sub-block orders within)
    against the machine's on-chip levels. *)
