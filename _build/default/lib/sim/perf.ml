type report = {
  time_seconds : float;
  compute_seconds : float;
  memory_seconds : float;
  per_level_cost : (string * float) list;
  micro_efficiency : float;
  parallel_efficiency : float;
  flops : float;
  dram_bytes : float;
  launch_seconds : float;
  kernels_launched : int;
}

let launch_overhead_seconds (machine : Arch.Machine.t) =
  match machine.Arch.Machine.backend with
  | Arch.Machine.Cpu -> 2e-6
  | Arch.Machine.Gpu -> 5e-6
  | Arch.Machine.Npu -> 5e-6

let unified_buffer_bandwidth_gbps = 400.0

let intermediate_bytes (chain : Ir.Chain.t) =
  List.fold_left
    (fun acc name ->
      acc +. float_of_int (Ir.Operator.tensor_bytes (Ir.Chain.find_ref chain name)))
    0.0
    (Ir.Chain.intermediate_names chain)

let estimate ?(kernels_launched = 1) ?dram_bytes (kernel : Codegen.Kernel.t) =
  let machine = kernel.Codegen.Kernel.machine in
  let chain = kernel.Codegen.Kernel.chain in
  let flops = Ir.Chain.fused_flops chain in
  let micro_efficiency = Codegen.Kernel.micro_efficiency kernel in
  let parallel_efficiency =
    Analytical.Parallelism.efficiency chain kernel.Codegen.Kernel.tiling
      ~cores:machine.Arch.Machine.cores
  in
  let compute_seconds =
    flops
    /. (Arch.Machine.peak_flops machine *. micro_efficiency
       *. parallel_efficiency)
  in
  let analytic_dv = Codegen.Kernel.predicted_dv_bytes kernel in
  let dram_bytes = Option.value dram_bytes ~default:analytic_dv in
  let per_level_cost =
    match kernel.Codegen.Kernel.level_plans with
    | [] ->
        [ ("DRAM", dram_bytes /. (Arch.Machine.dram_bandwidth_gbps machine *. 1e9)) ]
    | lps ->
        List.map
          (fun (lp : Analytical.Planner.level_plan) ->
            let dv =
              (* The outermost on-chip level's fill traffic is the DRAM
                 traffic; honour a simulator-measured override there. *)
              if
                lp.Analytical.Planner.level.Arch.Level.name
                = (Arch.Machine.primary_on_chip machine).Arch.Level.name
              then dram_bytes
              else
                lp.Analytical.Planner.plan.Analytical.Planner.movement
                  .Analytical.Movement.dv_bytes
            in
            ( lp.Analytical.Planner.level.Arch.Level.name,
              dv /. (lp.Analytical.Planner.feed_bandwidth_gbps *. 1e9) ))
          lps
  in
  let per_level_cost =
    match machine.Arch.Machine.backend with
    | Arch.Machine.Npu ->
        (* Intermediate results of the producer transfer through the
           Unified Buffer; when they fit, they simply stay there, but a
           larger intermediate round-trips through it (the Figure 7
           bottleneck on big GEMMs). *)
        let inter = intermediate_bytes chain in
        let ub_cost =
          if inter <= float_of_int Arch.Presets.ascend_unified_buffer_bytes
          then 0.0
          else 2.0 *. inter /. (unified_buffer_bandwidth_gbps *. 1e9)
        in
        per_level_cost @ [ ("UB", ub_cost) ]
    | Arch.Machine.Cpu | Arch.Machine.Gpu -> per_level_cost
  in
  let memory_seconds =
    List.fold_left (fun acc (_, c) -> Float.max acc c) 0.0 per_level_cost
  in
  let launch_seconds =
    float_of_int kernels_launched *. launch_overhead_seconds machine
  in
  (* A well-scheduled kernel hides transfers behind the pipeline (the
     roofline max); a poorly scheduled one serialises them.  The micro
     kernel's overlap factor interpolates between the two. *)
  let overlap = kernel.Codegen.Kernel.micro.Microkernel.Kernel_sig.overlap in
  let time_seconds =
    Float.max compute_seconds memory_seconds
    +. ((1.0 -. overlap) *. Float.min compute_seconds memory_seconds)
    +. launch_seconds
  in
  {
    time_seconds;
    compute_seconds;
    memory_seconds;
    per_level_cost;
    micro_efficiency;
    parallel_efficiency;
    flops;
    dram_bytes;
    launch_seconds;
    kernels_launched;
  }

let gflops r = r.flops /. r.time_seconds /. 1e9
