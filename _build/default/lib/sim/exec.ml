type env = (string, Tensor.Dense.t) Hashtbl.t

let tensor env name =
  match Hashtbl.find_opt env name with
  | Some t -> t
  | None -> raise Not_found

let chain_input_names (chain : Ir.Chain.t) =
  let produced =
    List.map
      (fun (s : Ir.Chain.stage) -> s.op.Ir.Operator.output.Ir.Operator.tensor)
      chain.stages
  in
  List.filter (fun n -> not (List.mem n produced)) (Ir.Chain.tensor_names chain)

let chain_output_names (chain : Ir.Chain.t) =
  let io = Ir.Chain.io_names chain in
  let inputs = chain_input_names chain in
  List.filter (fun n -> not (List.mem n inputs)) io

let make_env (chain : Ir.Chain.t) ~seed =
  let env : env = Hashtbl.create 8 in
  let prng = Util.Prng.create ~seed in
  let inputs = chain_input_names chain in
  List.iter
    (fun name ->
      let r = Ir.Chain.find_ref chain name in
      let t =
        Tensor.Dense.create ~dtype:r.Ir.Operator.dtype
          (Tensor.Shape.of_list r.Ir.Operator.dims)
      in
      if List.mem name inputs then
        Tensor.Dense.fill_random t ~prng ~lo:(-1.0) ~hi:1.0;
      Hashtbl.replace env name t)
    (Ir.Chain.tensor_names chain);
  env

let zero_non_inputs chain env =
  let inputs = chain_input_names chain in
  List.iter
    (fun name ->
      if not (List.mem name inputs) then Tensor.Dense.fill (tensor env name) 0.0)
    (Ir.Chain.tensor_names chain)

(* ------------------------------------------------------------------ *)
(* Point-wise evaluation helpers                                       *)
(* ------------------------------------------------------------------ *)

let in_bounds (r : Ir.Operator.tensor_ref) ~value_of =
  let idx = Ir.Access.eval r.access ~value_of in
  let dims = Array.of_list r.dims in
  let ok = ref true in
  Array.iteri (fun i v -> if v < 0 || v >= dims.(i) then ok := false) idx;
  !ok

(* Iterate every integer point of [ranges] (axis, lo, hi_exclusive),
   exposing the current point through a lookup function. *)
let iter_points ranges ~f =
  let ranges = Array.of_list ranges in
  let n = Array.length ranges in
  let values = Hashtbl.create (2 * n) in
  let value_of axis =
    match Hashtbl.find_opt values axis with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Exec: unbound axis %s" axis)
  in
  let rec go i =
    if i = n then f ~value_of
    else begin
      let axis, lo, hi = ranges.(i) in
      for v = lo to hi - 1 do
        Hashtbl.replace values axis v;
        go (i + 1)
      done
    end
  in
  go 0


(* ------------------------------------------------------------------ *)
(* Compiled point loops                                                 *)
(*                                                                      *)
(* The generic [iter_points] pays a hashtable lookup per axis per       *)
(* point; the contraction loops dominate execution, so operators are    *)
(* compiled once per block run into closures over an int array of axis  *)
(* values.                                                              *)
(* ------------------------------------------------------------------ *)

type compiled_ref = {
  data : float array;
  flat_index : int array -> int;  (* -1 when padded out of bounds *)
}

let compile_ref env ~slot_of (r : Ir.Operator.tensor_ref) =
  let t = tensor env r.tensor in
  let dims = Array.of_list r.dims in
  let rank = Array.length dims in
  let strides = Array.make rank 1 in
  for i = rank - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * dims.(i + 1)
  done;
  let dim_exprs =
    Array.of_list
      (List.map
         (fun (d : Ir.Access.dim) ->
           ( d.Ir.Access.offset,
             Array.of_list
               (List.map
                  (fun (term : Ir.Access.term) ->
                    (slot_of term.Ir.Access.axis, term.Ir.Access.coeff))
                  d.Ir.Access.terms) ))
         r.access)
  in
  let flat_index values =
    let flat = ref 0 in
    let ok = ref true in
    for d = 0 to rank - 1 do
      let offset, terms = dim_exprs.(d) in
      let idx = ref offset in
      Array.iter (fun (slot, coeff) -> idx := !idx + (coeff * values.(slot))) terms;
      if !idx < 0 || !idx >= dims.(d) then ok := false
      else flat := !flat + (!idx * strides.(d))
    done;
    if !ok then !flat else -1
  in
  { data = Tensor.Dense.to_flat_array t; flat_index }


(* ------------------------------------------------------------------ *)
(* Matmul fast path                                                     *)
(*                                                                      *)
(* A block whose operator is a plain (batched) matrix multiplication    *)
(* with simple accesses executes through the micro-kernel semantic      *)
(* function over flat array slices — the code path the generated        *)
(* kernel itself takes.                                                 *)
(* ------------------------------------------------------------------ *)

type matmul_pattern = {
  ax_b : string;
  ax_m : string;
  ax_n : string;
  ax_k : string;
  full_m : int;  (* row strides of the full tensors *)
  full_n : int;
  full_k : int;
}

let simple_axes (r : Ir.Operator.tensor_ref) =
  let ok = ref true in
  let axes =
    List.map
      (fun (d : Ir.Access.dim) ->
        match d.Ir.Access.terms with
        | [ { Ir.Access.axis; coeff = 1 } ] when d.Ir.Access.offset = 0 -> axis
        | _ ->
            ok := false;
            "")
      r.access
  in
  if !ok then Some axes else None

let detect_matmul (op : Ir.Operator.t) =
  match (op.Ir.Operator.inputs, op.Ir.Operator.reduction_axes) with
  | [ a; b ], [ red ] -> (
      match (simple_axes a, simple_axes b, simple_axes op.Ir.Operator.output) with
      | ( Some [ ab; am; ak ],
          Some [ bb; bk; bn ],
          Some [ ob; om; on ] )
        when ab = ob && bb = ob && am = om && bn = on && ak = bk && ak = red ->
          Some
            {
              ax_b = ob;
              ax_m = om;
              ax_n = on;
              ax_k = ak;
              full_m = List.nth a.dims 1;
              full_n = List.nth b.dims 2;
              full_k = List.nth a.dims 2;
            }
      | _ -> None)
  | _ -> None

let run_matmul_block env (op : Ir.Operator.t) pat ~ranges ~micro =
  let range axis ~extent =
    match List.assoc_opt axis ranges with
    | Some (lo, hi) -> (lo, hi)
    | None -> (0, extent)
  in
  ignore pat.full_m;
  let a_ref = List.nth op.Ir.Operator.inputs 0 in
  let b_ref = List.nth op.Ir.Operator.inputs 1 in
  let out_ref = op.Ir.Operator.output in
  let a = Tensor.Dense.to_flat_array (tensor env a_ref.tensor) in
  let b = Tensor.Dense.to_flat_array (tensor env b_ref.tensor) in
  let c = Tensor.Dense.to_flat_array (tensor env out_ref.tensor) in
  let m_full = List.nth out_ref.dims 1 and n_full = pat.full_n in
  let k_full = pat.full_k in
  let b_lo, b_hi = range pat.ax_b ~extent:(List.nth out_ref.dims 0) in
  let m_lo, m_hi = range pat.ax_m ~extent:m_full in
  let n_lo, n_hi = range pat.ax_n ~extent:n_full in
  let k_lo, k_hi = range pat.ax_k ~extent:k_full in
  let m = m_hi - m_lo and n = n_hi - n_lo and k = k_hi - k_lo in
  if m > 0 && n > 0 && k > 0 then
    for bi = b_lo to b_hi - 1 do
      let buffers =
        {
          Microkernel.Kernel_sig.a;
          a_off = (((bi * m_full) + m_lo) * k_full) + k_lo;
          lda = k_full;
          b;
          b_off = (((bi * k_full) + k_lo) * n_full) + n_lo;
          ldb = n_full;
          c;
          c_off = (((bi * m_full) + m_lo) * n_full) + n_lo;
          ldc = n_full;
        }
      in
      micro ~m ~n ~k buffers
    done

(* Run one operator over per-axis ranges, accumulating products of the
   inputs into the output.  [dedup] guards windowed producers against
   re-accumulating recomputed points. *)
let rec run_op_ranges ?micro chain env (op : Ir.Operator.t) ~ranges ~dedup ~visited =
  match detect_matmul op with
  | Some pat ->
      let micro =
        Option.value micro ~default:Microkernel.Kernel_sig.reference_execute
      in
      run_matmul_block env op pat ~ranges ~micro
  | None -> run_op_ranges_generic chain env op ~ranges ~dedup ~visited

and run_op_ranges_generic chain env (op : Ir.Operator.t) ~ranges ~dedup ~visited =
  let axes = Array.of_list op.Ir.Operator.axes in
  let n = Array.length axes in
  let slot_of axis =
    let rec find i = if axes.(i) = axis then i else find (i + 1) in
    find 0
  in
  let out = compile_ref env ~slot_of op.Ir.Operator.output in
  let inputs =
    Array.of_list (List.map (compile_ref env ~slot_of) op.Ir.Operator.inputs)
  in
  let n_inputs = Array.length inputs in
  let reduction_slots =
    Array.of_list
      (List.map
         (fun a -> (slot_of a, Ir.Chain.extent_of chain a))
         op.Ir.Operator.reduction_axes)
  in
  let bounds =
    Array.map
      (fun axis ->
        match List.assoc_opt axis ranges with
        | Some (lo, hi) -> (lo, hi)
        | None -> (0, Ir.Chain.extent_of chain axis))
      axes
  in
  let values = Array.make n 0 in
  let rec go i =
    if i = n then begin
      let out_idx = out.flat_index values in
      if out_idx >= 0 then begin
        let proceed =
          if not dedup then true
          else begin
            let rkey = ref 0 in
            Array.iter
              (fun (slot, extent) -> rkey := (!rkey * extent) + values.(slot))
              reduction_slots;
            let key = (out_idx, !rkey) in
            if Hashtbl.mem visited key then false
            else begin
              Hashtbl.add visited key ();
              true
            end
          end
        in
        if proceed then begin
          let acc = ref 1.0 in
          (try
             for j = 0 to n_inputs - 1 do
               let idx = inputs.(j).flat_index values in
               if idx < 0 then begin
                 acc := 0.0;
                 raise Exit
               end
               else acc := !acc *. inputs.(j).data.(idx)
             done
           with Exit -> ());
          if !acc <> 0.0 then out.data.(out_idx) <- out.data.(out_idx) +. !acc
        end
      end
    end
    else begin
      let lo, hi = bounds.(i) in
      for v = lo to hi - 1 do
        values.(i) <- v;
        go (i + 1)
      done
    end
  in
  go 0

let output_is_injective (op : Ir.Operator.t) =
  List.for_all
    (fun (d : Ir.Access.dim) -> List.length d.terms <= 1)
    op.Ir.Operator.output.Ir.Operator.access

(* ------------------------------------------------------------------ *)
(* Epilogues                                                           *)
(* ------------------------------------------------------------------ *)

type softmax_state = {
  sums : Tensor.Dense.t;  (** row accumulators, producer dims minus axis. *)
  sum_axes : string list;  (** axis names indexing [sums]. *)
  consumed_by : Ir.Chain.stage option;  (** stage whose output gets divided. *)
}

let simple_axes_of (r : Ir.Operator.tensor_ref) =
  List.map
    (fun (d : Ir.Access.dim) ->
      match d.Ir.Access.terms with
      | [ { Ir.Access.axis; coeff = 1 } ] when d.Ir.Access.offset = 0 -> axis
      | _ ->
          invalid_arg
            (Printf.sprintf
               "Exec: softmax requires a simple access on tensor %s" r.tensor))
    r.access

let softmax_states (chain : Ir.Chain.t) =
  List.filteri (fun _ _ -> true) chain.stages
  |> List.mapi (fun i (stage : Ir.Chain.stage) -> (i, stage))
  |> List.filter_map (fun (i, (stage : Ir.Chain.stage)) ->
         match stage.Ir.Chain.epilogue with
         | Ir.Chain.Softmax { axis } ->
             let out = stage.op.Ir.Operator.output in
             let axes = simple_axes_of out in
             let sum_axes = List.filter (fun a -> a <> axis) axes in
             let dims =
               List.filteri
                 (fun j _ -> List.nth axes j <> axis)
                 out.Ir.Operator.dims
             in
             let consumed_by =
               List.find_opt
                 (fun (s : Ir.Chain.stage) ->
                   List.exists
                     (fun (r : Ir.Operator.tensor_ref) ->
                       r.tensor = out.Ir.Operator.tensor)
                     s.op.Ir.Operator.inputs)
                 chain.stages
             in
             let sums =
               Tensor.Dense.create ~dtype:Tensor.Dtype.Fp64
                 (Tensor.Shape.of_list (if dims = [] then [ 1 ] else dims))
             in
             Some (i, { sums; sum_axes; consumed_by })
         | _ -> None)

let sums_index state ~value_of =
  match state.sum_axes with
  | [] -> [| 0 |]
  | axes -> Array.of_list (List.map value_of axes)

(* Divide by the softmax sums: into the consumer's output when the chain
   fuses one (the swapped division of Section VI-B), or in place on the
   producer's output when the softmax stands alone. *)
let divide_rows ?(bounds = []) chain env state (out : Ir.Operator.tensor_ref)
    =
  let out_tensor = tensor env out.Ir.Operator.tensor in
  let axes = simple_axes_of out in
  let range a =
    match List.assoc_opt a bounds with
    | Some (lo, hi) -> (a, lo, hi)
    | None -> (a, 0, Ir.Chain.extent_of chain a)
  in
  let ranges = List.map range axes in
  iter_points ranges ~f:(fun ~value_of ->
      let idx = Array.of_list (List.map value_of axes) in
      let s = Tensor.Dense.get state.sums (sums_index state ~value_of) in
      if s <> 0.0 then
        Tensor.Dense.set out_tensor idx (Tensor.Dense.get out_tensor idx /. s))

let apply_softmax_division ?bounds chain env state ~producer_out =
  match state.consumed_by with
  | Some consumer ->
      divide_rows ?bounds chain env state consumer.op.Ir.Operator.output
  | None -> divide_rows ?bounds chain env state producer_out

(* ------------------------------------------------------------------ *)
(* Reference (unfused) execution                                       *)
(* ------------------------------------------------------------------ *)

let run_op_full chain env (op : Ir.Operator.t) =
  (* Standalone loop nests have injective outputs: no deduplication. *)
  run_op_ranges chain env op ~ranges:[] ~dedup:false
    ~visited:(Hashtbl.create 1)

let apply_epilogue_full chain env (stage : Ir.Chain.stage) =
  let out = stage.standalone.Ir.Operator.output in
  let out_tensor = tensor env out.Ir.Operator.tensor in
  match stage.Ir.Chain.epilogue with
  | Ir.Chain.Identity -> ()
  | Ir.Chain.Relu ->
      for i = 0 to Tensor.Dense.numel out_tensor - 1 do
        Tensor.Dense.set_flat out_tensor i
          (Float.max 0.0 (Tensor.Dense.get_flat out_tensor i))
      done
  | Ir.Chain.Softmax { axis } ->
      let axes = simple_axes_of out in
      let row_axes = List.filter (fun a -> a <> axis) axes in
      let extent a = Ir.Chain.extent_of chain a in
      let ranges = List.map (fun a -> (a, 0, extent a)) row_axes in
      iter_points ranges ~f:(fun ~value_of ->
          (* One softmax row: exp, sum, divide. *)
          let values = Hashtbl.create 4 in
          List.iter (fun a -> Hashtbl.replace values a (value_of a)) row_axes;
          let idx_of v =
            Hashtbl.replace values axis v;
            Array.of_list
              (List.map (fun a -> Hashtbl.find values a) axes)
          in
          let n = extent axis in
          let total = ref 0.0 in
          for v = 0 to n - 1 do
            let idx = idx_of v in
            let e = exp (Tensor.Dense.get out_tensor idx) in
            Tensor.Dense.set out_tensor idx e;
            total := !total +. e
          done;
          if !total <> 0.0 then
            for v = 0 to n - 1 do
              let idx = idx_of v in
              Tensor.Dense.set out_tensor idx
                (Tensor.Dense.get out_tensor idx /. !total)
            done)

let run_reference chain env =
  zero_non_inputs chain env;
  List.iter
    (fun (stage : Ir.Chain.stage) ->
      run_op_full chain env stage.Ir.Chain.standalone;
      apply_epilogue_full chain env stage)
    chain.Ir.Chain.stages

(* ------------------------------------------------------------------ *)
(* Fused execution                                                     *)
(* ------------------------------------------------------------------ *)

let block_ranges chain ~tiling ~starts (op : Ir.Operator.t) =
  List.map
    (fun axis ->
      let extent = Ir.Chain.extent_of chain axis in
      match List.assoc_opt axis starts with
      | Some start ->
          (axis, start, min extent (start + Analytical.Tiling.get tiling axis))
      | None -> (axis, 0, extent))
    op.Ir.Operator.axes

let execute_stage_block ?micro chain env ~tiling ~starts
    (stage : Ir.Chain.stage) ~visited =
  let op = stage.Ir.Chain.op in
  let dedup = not (output_is_injective op) in
  let ranges =
    List.map
      (fun (axis, lo, hi) -> (axis, (lo, hi)))
      (block_ranges chain ~tiling ~starts op)
  in
  run_op_ranges ?micro chain env op ~ranges ~dedup ~visited

let apply_epilogue_block chain env ~tiling ~starts (stage : Ir.Chain.stage)
    ~softmax =
  let op = stage.Ir.Chain.op in
  let out = op.Ir.Operator.output in
  let out_tensor = tensor env out.Ir.Operator.tensor in
  let spatial =
    List.filter
      (fun a -> not (List.mem a op.Ir.Operator.reduction_axes))
      op.Ir.Operator.axes
  in
  let ranges =
    List.map
      (fun axis ->
        let extent = Ir.Chain.extent_of chain axis in
        match List.assoc_opt axis starts with
        | Some start ->
            (axis, start, min extent (start + Analytical.Tiling.get tiling axis))
        | None -> (axis, 0, extent))
      spatial
  in
  match stage.Ir.Chain.epilogue with
  | Ir.Chain.Identity -> ()
  | Ir.Chain.Relu ->
      iter_points ranges ~f:(fun ~value_of ->
          if in_bounds out ~value_of then begin
            let idx = Ir.Access.eval out.Ir.Operator.access ~value_of in
            Tensor.Dense.set out_tensor idx
              (Float.max 0.0 (Tensor.Dense.get out_tensor idx))
          end)
  | Ir.Chain.Softmax _ -> (
      match softmax with
      | None -> ()
      | Some state ->
          iter_points ranges ~f:(fun ~value_of ->
              if in_bounds out ~value_of then begin
                let idx = Ir.Access.eval out.Ir.Operator.access ~value_of in
                let e = exp (Tensor.Dense.get out_tensor idx) in
                Tensor.Dense.set out_tensor idx e;
                let sidx = sums_index state ~value_of in
                Tensor.Dense.set state.sums sidx
                  (Tensor.Dense.get state.sums sidx +. e)
              end))

let run_fused ?micro ?bounds ?(zero = true) chain ~perm ~tiling env =
  Analytical.Movement.validate_perm chain perm;
  if zero then zero_non_inputs chain env;
  let softmax = softmax_states chain in
  let stages = Array.of_list chain.Ir.Chain.stages in
  let visited = Array.map (fun _ -> Hashtbl.create 64) stages in
  Trace.iter_blocks ?bounds ~perm ~tiling
    ~f:(fun starts ->
      Array.iteri
        (fun i stage ->
          if Trace.stage_runs chain ~stage_index:i ~tiling starts then begin
            execute_stage_block ?micro chain env ~tiling ~starts stage
              ~visited:visited.(i);
            if Trace.is_last_reduction_block stage ~tiling starts then
              apply_epilogue_block chain env ~tiling ~starts stage
                ~softmax:(List.assoc_opt i softmax)
          end)
        stages)
    ();
  List.iter
    (fun (i, state) ->
      let producer_out = stages.(i).Ir.Chain.op.Ir.Operator.output in
      apply_softmax_division ?bounds chain env state ~producer_out)
    softmax

let run_kernel (kernel : Codegen.Kernel.t) env =
  (* Route matmul blocks through the substituted micro kernel's semantic
     function — the same computation the emitted code performs. *)
  let micro = kernel.Codegen.Kernel.micro.Microkernel.Kernel_sig.execute in
  run_fused ~micro kernel.Codegen.Kernel.chain ~perm:kernel.Codegen.Kernel.perm
    ~tiling:kernel.Codegen.Kernel.tiling env

let outputs_match ?(rtol = 1e-6) ?(atol = 1e-9) chain env_a env_b =
  List.for_all
    (fun name ->
      Tensor.Dense.allclose ~rtol ~atol (tensor env_a name) (tensor env_b name))
    (chain_output_names chain)
