(** Numeric execution of operator chains.

    [run_reference] executes each stage as an isolated loop nest (what
    an unfused library call computes); [run_fused] interprets the fused
    block loop nest in a chosen execution order with chosen tile sizes,
    including the recomputation of windowed producers and the paper's
    fused-softmax rewrite (exp per completed tile, row-sum merged into
    the consumer loop, division swapped to the end).  Tests compare the
    two to establish that every block order Chimera selects preserves
    the chain's dependencies and numerics. *)

type env = (string, Tensor.Dense.t) Hashtbl.t
(** Tensor storage by name. *)

val make_env : Ir.Chain.t -> seed:int -> env
(** Allocate every tensor of the chain: chain inputs filled uniformly
    from [-1, 1) with the deterministic generator, intermediates and
    outputs zeroed. *)

val tensor : env -> string -> Tensor.Dense.t
(** Lookup; raises [Not_found]. *)

val run_reference : Ir.Chain.t -> env -> unit
(** Execute the standalone stages in order, materialising every
    intermediate in full and applying epilogues tensor-at-a-time
    (softmax normalised row by row). *)

val run_fused :
  ?micro:
    (m:int -> n:int -> k:int -> Microkernel.Kernel_sig.buffers -> unit) ->
  ?bounds:(string * (int * int)) list -> ?zero:bool -> Ir.Chain.t ->
  perm:string list -> tiling:Analytical.Tiling.t -> env -> unit
(** Execute the fused block loop nest.  Works for any permutation of the
    fused axes: producers run on the first visit of loops they do not
    own, consumers wait for producers' reduction loops to complete, and
    recomputed window halo points are deduplicated.  Blocks that are
    plain (batched) matrix multiplications execute through [micro]
    (default: the reference micro-kernel semantics) over flat slices.
    [bounds] restricts (safely parallel) axes to one task's slice;
    [zero:false] skips clearing the non-input tensors (the parallel
    coordinator clears them once). *)

val run_kernel : Codegen.Kernel.t -> env -> unit
(** {!run_fused} with the kernel's primary order and tiling. *)

val outputs_match :
  ?rtol:float -> ?atol:float -> Ir.Chain.t -> env -> env -> bool
(** Compare the chain's non-input tensors between two environments. *)
