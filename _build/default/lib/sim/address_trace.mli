(** Line-granular address-trace simulation.

    The fast tile-granular model ({!Trace}) treats whole data tiles as
    cache objects.  This module replays the same block execution at
    cache-line granularity against a set-associative cache
    ({!Line_cache}), touching the actual byte addresses each block's
    tiles span — the ground-truth model the tile approximation is
    validated against (on problem sizes where it is tractable). *)

type stats = {
  accesses : int;  (** line-granular accesses. *)
  misses : int;
  bytes_in : float;  (** fill traffic, [misses * line_bytes]. *)
  hit_rate : float;
  blocks_visited : int;
}

val tensor_base_addresses : Ir.Chain.t -> (string * int) list
(** The disjoint, line-aligned address ranges the chain's tensors are
    laid out at (row-major, in first-use order). *)

val measure :
  Ir.Chain.t -> capacity_bytes:int -> ?line_bytes:int -> ?ways:int ->
  perm:string list -> tiling:Analytical.Tiling.t -> unit -> stats
(** Replay the fused block execution, touching every cache line of every
    tile each executing stage reads or writes.  All tensors (including
    intermediates) occupy memory, so this corresponds to the
    tile-granular model with [spill_intermediates:true].
    [line_bytes] defaults to 64, [ways] to 8. *)
