lib/sim/perf.ml: Analytical Arch Codegen Float Ir List Microkernel Option
