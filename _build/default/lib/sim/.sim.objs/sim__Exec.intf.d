lib/sim/exec.mli: Analytical Codegen Hashtbl Ir Microkernel Tensor
