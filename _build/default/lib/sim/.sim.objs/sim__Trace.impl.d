lib/sim/trace.ml: Analytical Arch Array Buffer Codegen Hashtbl Ir List Lru Util
