lib/sim/trace.mli: Analytical Arch Codegen Ir
