lib/sim/address_trace.mli: Analytical Ir
