lib/sim/line_cache.mli: Lru
