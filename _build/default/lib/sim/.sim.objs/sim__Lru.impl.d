lib/sim/lru.ml: Hashtbl
