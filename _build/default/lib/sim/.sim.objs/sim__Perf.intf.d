lib/sim/perf.mli: Arch Codegen
