lib/sim/line_cache.ml: Array Lru
