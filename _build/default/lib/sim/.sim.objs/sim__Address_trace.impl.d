lib/sim/address_trace.ml: Analytical Array Ir Line_cache List Option Tensor Trace
