lib/sim/exec.ml: Analytical Array Codegen Float Hashtbl Ir List Microkernel Option Printf Tensor Trace Util
