lib/sim/lru.mli:
