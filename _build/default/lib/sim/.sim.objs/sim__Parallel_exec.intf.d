lib/sim/parallel_exec.mli: Analytical Exec Ir
