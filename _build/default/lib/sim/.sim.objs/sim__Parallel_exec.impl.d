lib/sim/parallel_exec.ml: Analytical Array Domain Exec Hashtbl Ir List Option Tensor Util
