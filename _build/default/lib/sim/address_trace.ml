type stats = {
  accesses : int;
  misses : int;
  bytes_in : float;
  hit_rate : float;
  blocks_visited : int;
}

let align_up v a = (v + a - 1) / a * a

let tensor_base_addresses (chain : Ir.Chain.t) =
  let next = ref 0 in
  List.map
    (fun name ->
      let bytes = Ir.Operator.tensor_bytes (Ir.Chain.find_ref chain name) in
      let base = !next in
      next := align_up (base + bytes) 4096;
      (name, base))
    (Ir.Chain.tensor_names chain)

(* The bounding box one block's access spans in one tensor: per
   dimension, [offset + sum coeff*start, ... + span), clipped to the
   declared extent. *)
let tile_box (r : Ir.Operator.tensor_ref) ~starts ~tile_of =
  List.map2
    (fun (d : Ir.Access.dim) extent ->
      let lo =
        List.fold_left
          (fun acc (t : Ir.Access.term) ->
            acc
            + t.Ir.Access.coeff
              * Option.value (List.assoc_opt t.Ir.Access.axis starts) ~default:0)
          d.Ir.Access.offset d.Ir.Access.terms
      in
      let span =
        List.fold_left
          (fun acc (t : Ir.Access.term) ->
            acc + (t.Ir.Access.coeff * (tile_of t.Ir.Access.axis - 1)))
          0 d.Ir.Access.terms
        + 1
      in
      let lo' = max 0 lo in
      let hi' = min extent (lo + span) in
      (lo', max lo' hi'))
    r.access r.dims

let measure (chain : Ir.Chain.t) ~capacity_bytes ?(line_bytes = 64) ?(ways = 8)
    ~perm ~tiling () =
  Analytical.Movement.validate_perm chain perm;
  let cache = Line_cache.create ~capacity_bytes ~line_bytes ~ways () in
  let bases = tensor_base_addresses chain in
  let elem_bytes name =
    Tensor.Dtype.bytes (Ir.Chain.find_ref chain name).Ir.Operator.dtype
  in
  let tile_of = Analytical.Tiling.tile_of tiling in
  let blocks = ref 0 in
  let touch_ref (r : Ir.Operator.tensor_ref) ~starts =
    let base = List.assoc r.tensor bases in
    let eb = elem_bytes r.tensor in
    let box = Array.of_list (tile_box r ~starts ~tile_of) in
    let dims = Array.of_list r.dims in
    let rank = Array.length dims in
    let strides = Array.make rank 1 in
    for i = rank - 2 downto 0 do
      strides.(i) <- strides.(i + 1) * dims.(i + 1)
    done;
    (* Walk every row of the box; the innermost dimension is one
       contiguous range. *)
    let rec rows d offset =
      if d = rank - 1 then begin
        let lo, hi = box.(d) in
        if hi > lo then
          Line_cache.access_range cache
            ~addr:(base + ((offset + lo) * eb))
            ~bytes:((hi - lo) * eb)
      end
      else begin
        let lo, hi = box.(d) in
        for v = lo to hi - 1 do
          rows (d + 1) (offset + (v * strides.(d)))
        done
      end
    in
    if rank > 0 then rows 0 0
  in
  Trace.iter_blocks ~perm ~tiling
    ~f:(fun starts ->
      incr blocks;
      List.iteri
        (fun i (stage : Ir.Chain.stage) ->
          if Trace.stage_runs chain ~stage_index:i ~tiling starts then
            List.iter
              (fun r -> touch_ref r ~starts)
              (Ir.Operator.all_refs stage.Ir.Chain.op))
        chain.stages)
    ();
  {
    accesses = Line_cache.accesses cache;
    misses = Line_cache.misses cache;
    bytes_in = Line_cache.bytes_in cache;
    hit_rate = Line_cache.hit_rate cache;
    blocks_visited = !blocks;
  }
