(** Execution-time estimation for compiled kernels.

    The model is the paper's: a kernel is as fast as its slowest stage —
    the compute pipeline at [peak * micro-kernel efficiency], or the
    slowest memory level at [DV_d / bw_d] (Equations 2–3) — plus a fixed
    per-kernel launch overhead.  The NPU additionally models the Ascend
    Unified Buffer through which the producer's intermediate results
    transfer (the Figure 7 bottleneck). *)

type report = {
  time_seconds : float;
      (** the estimate: [max(compute, memory) + (1 - overlap) *
          min(compute, memory) + launch], where [overlap] is the micro
          kernel's modelled ability to hide transfers behind compute. *)
  compute_seconds : float;
  memory_seconds : float;  (** slowest memory level (Eq. 3 objective). *)
  per_level_cost : (string * float) list;  (** (level, seconds). *)
  micro_efficiency : float;
  parallel_efficiency : float;
      (** core occupancy: LPT load-balance efficiency of the tiling's
          safely-parallel tasks ([Analytical.Parallelism]). *)
  flops : float;
  dram_bytes : float;  (** modelled DRAM traffic. *)
  launch_seconds : float;
  kernels_launched : int;
}

val launch_overhead_seconds : Arch.Machine.t -> float
(** Fixed cost of dispatching one kernel (2 us CPU, 5 us GPU and NPU —
    engineering estimates recorded in DESIGN.md). *)

val unified_buffer_bandwidth_gbps : float
(** Modelled DMA bandwidth of the Ascend Unified Buffer (400 GB/s);
    charged as a round-trip only when the chain's intermediate exceeds
    the 256 KiB buffer. *)

val estimate :
  ?kernels_launched:int -> ?dram_bytes:float -> Codegen.Kernel.t -> report
(** Estimate a kernel's execution time.  [dram_bytes] overrides the
    analytical DV with a simulator-measured value; [kernels_launched]
    defaults to 1. *)

val gflops : report -> float
(** Achieved GFLOP/s implied by the report. *)
