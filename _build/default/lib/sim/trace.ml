type starts = (string * int) list

let iter_blocks ?(bounds = []) ~perm ~tiling ~f () =
  let axes = Array.of_list perm in
  let n = Array.length axes in
  let tiles = Array.map (fun a -> Analytical.Tiling.get tiling a) axes in
  let ranges =
    Array.map
      (fun a ->
        match List.assoc_opt a bounds with
        | Some (lo, hi) -> (lo, hi)
        | None -> (0, Analytical.Tiling.extent_of tiling a))
      axes
  in
  let starts = Array.make n 0 in
  let rec go i =
    if i = n then
      f (List.init n (fun j -> (axes.(j), starts.(j))))
    else begin
      let lo, hi = ranges.(i) in
      let s = ref lo in
      while !s < hi do
        starts.(i) <- !s;
        go (i + 1);
        s := !s + tiles.(i)
      done
    end
  in
  go 0

(* Hierarchical iteration: visit the outermost level's blocks in its
   order; within each block, cover it with the next level's sub-blocks in
   *that* level's order, down to the innermost level — the loop structure
   of the multi-level generated kernel (Section IV-C).  [levels] is
   outermost first; the callback receives absolute origins at the
   innermost level's granularity. *)
let iter_blocks_hier ~levels ~f =
  if levels = [] then invalid_arg "Trace.iter_blocks_hier: no levels";
  (* Flatten the nest: one loop per (level, axis), stepping by that
     level's tile within the enclosing level's block of the same axis. *)
  let loops =
    Array.of_list
      (List.concat_map
         (fun (perm, tiling) ->
           List.map (fun axis -> (axis, tiling)) perm)
         levels)
  in
  let n = Array.length loops in
  let innermost_tiling = snd (List.nth levels (List.length levels - 1)) in
  let extent axis = Analytical.Tiling.extent_of innermost_tiling axis in
  (* Per-axis state: current absolute start and the enclosing block span
     (the extent for the outermost occurrence). *)
  let start : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let span : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let get tbl axis ~default =
    match Hashtbl.find_opt tbl axis with Some v -> v | None -> default
  in
  let rec go i =
    if i = n then begin
      let starts =
        List.map
          (fun (perm, _) -> perm)
          [ List.nth levels (List.length levels - 1) ]
        |> List.concat
        |> List.map (fun axis -> (axis, get start axis ~default:0))
      in
      f starts
    end
    else begin
      let axis, tiling = loops.(i) in
      let tile = Analytical.Tiling.get tiling axis in
      let base = get start axis ~default:0 in
      let enclosing = get span axis ~default:(extent axis) in
      let limit = min (extent axis) (base + enclosing) in
      let saved_start = Hashtbl.find_opt start axis in
      let saved_span = Hashtbl.find_opt span axis in
      let s = ref base in
      while !s < limit do
        Hashtbl.replace start axis !s;
        Hashtbl.replace span axis tile;
        go (i + 1);
        s := !s + tile
      done;
      (match saved_start with
      | Some v -> Hashtbl.replace start axis v
      | None -> Hashtbl.remove start axis);
      (match saved_span with
      | Some v -> Hashtbl.replace span axis v
      | None -> Hashtbl.remove span axis)
    end
  in
  go 0

let block_count ~perm ~tiling =
  List.fold_left
    (fun acc a -> acc *. float_of_int (Analytical.Tiling.trip_count tiling a))
    1.0 perm

let earlier_reductions (chain : Ir.Chain.t) ~stage_index =
  List.concat
    (List.filteri
       (fun i _ -> i < stage_index)
       (List.map
          (fun (s : Ir.Chain.stage) -> s.op.Ir.Operator.reduction_axes)
          chain.stages))

let last_start tiling axis =
  let extent = Analytical.Tiling.extent_of tiling axis in
  let tile = Analytical.Tiling.get tiling axis in
  (Util.Ints.ceil_div extent tile - 1) * tile

let stage_runs (chain : Ir.Chain.t) ~stage_index ~tiling starts =
  let stage = List.nth chain.stages stage_index in
  let op = stage.Ir.Chain.op in
  let waits_on = earlier_reductions chain ~stage_index in
  List.for_all
    (fun (axis, start) ->
      if Ir.Operator.uses_axis op axis then true
      else if List.mem axis waits_on then start = last_start tiling axis
      else start = 0)
    starts

let is_last_reduction_block (stage : Ir.Chain.stage) ~tiling starts =
  List.for_all
    (fun axis ->
      match List.assoc_opt axis starts with
      | None -> true
      | Some start -> start = last_start tiling axis)
    stage.op.Ir.Operator.reduction_axes

let tile_key (r : Ir.Operator.tensor_ref) starts =
  let used = Ir.Access.axes_used r.access in
  let buf = Buffer.create 32 in
  Buffer.add_string buf r.tensor;
  List.iter
    (fun (axis, start) ->
      if List.mem axis used then begin
        Buffer.add_char buf '|';
        Buffer.add_string buf axis;
        Buffer.add_char buf ':';
        Buffer.add_string buf (string_of_int start)
      end)
    starts;
  Buffer.contents buf

type level_stats = {
  level : Arch.Level.t;
  hit_rate : float;
  accesses : int;
  misses : int;
  bytes_in : float;
  bytes_accessed : float;
}

type stats = {
  levels : level_stats list;
  dram_bytes : float;
  blocks_visited : int;
  stage_executions : int;
}

let run_measurement (chain : Ir.Chain.t) ~levels ~tiling ~spill_intermediates
    ~iter =
  let caches =
    List.map
      (fun (l : Arch.Level.t) -> (l, Lru.create ~capacity_bytes:l.capacity_bytes))
      levels
  in
  let tile_of = Analytical.Tiling.tile_of tiling in
  let stage_count = List.length chain.stages in
  let blocks = ref 0 in
  let execs = ref 0 in
  let intermediates = Ir.Chain.intermediate_names chain in
  (* The first touch of an intermediate tile is an on-chip allocation,
     not a transfer; only re-loads after eviction move bytes. *)
  let allocated : (string, unit) Hashtbl.t = Hashtbl.create 1024 in
  iter (fun starts ->
      incr blocks;
      for i = 0 to stage_count - 1 do
        if stage_runs chain ~stage_index:i ~tiling starts then begin
          incr execs;
          let stage = List.nth chain.stages i in
          List.iter
            (fun (r : Ir.Operator.tensor_ref) ->
              let bytes = Ir.Operator.tile_footprint_bytes r ~tile_of in
              let is_intermediate = List.mem r.tensor intermediates in
              let key = tile_key r starts in
              (* Spilled intermediates live in DRAM like any IO tensor
                 (first touch charged); kept intermediates are allocated
                 on chip for free and only charge re-loads after
                 eviction. *)
              let charge =
                (not is_intermediate) || spill_intermediates
                ||
                if Hashtbl.mem allocated key then true
                else begin
                  Hashtbl.add allocated key ();
                  false
                end
              in
              List.iter
                (fun (_, cache) -> ignore (Lru.access ~charge cache ~key ~bytes))
                caches)
            (Ir.Operator.all_refs stage.Ir.Chain.op)
        end
      done);
  (caches, blocks, execs)

let stats_of caches blocks execs =
  let level_stats =
    List.map
      (fun (level, cache) ->
        {
          level;
          hit_rate = Lru.hit_rate cache;
          accesses = Lru.accesses cache;
          misses = Lru.misses cache;
          bytes_in = Lru.bytes_in cache;
          bytes_accessed = Lru.bytes_accessed cache;
        })
      caches
  in
  let dram_bytes =
    match List.rev level_stats with
    | outer :: _ -> outer.bytes_in
    | [] -> 0.0
  in
  {
    levels = level_stats;
    dram_bytes;
    blocks_visited = !blocks;
    stage_executions = !execs;
  }

let measure_hier (chain : Ir.Chain.t) ~levels ~plan_levels
    ?(spill_intermediates = false) () =
  (match plan_levels with
  | [] -> invalid_arg "Trace.measure_hier: no plan levels"
  | (perm, _) :: _ -> Analytical.Movement.validate_perm chain perm);
  let innermost_tiling = snd (List.nth plan_levels (List.length plan_levels - 1)) in
  let caches, blocks, execs =
    run_measurement chain ~levels ~tiling:innermost_tiling
      ~spill_intermediates
      ~iter:(fun f -> iter_blocks_hier ~levels:plan_levels ~f)
  in
  stats_of caches blocks execs

let measure_chain (chain : Ir.Chain.t) ~levels ~perm ~tiling
    ?(spill_intermediates = false) () =
  Analytical.Movement.validate_perm chain perm;
  let caches, blocks, execs =
    run_measurement chain ~levels ~tiling ~spill_intermediates
      ~iter:(fun f -> iter_blocks ~perm ~tiling ~f ())
  in
  stats_of caches blocks execs

let measure (kernel : Codegen.Kernel.t) =
  let chain = kernel.Codegen.Kernel.chain in
  let machine = kernel.Codegen.Kernel.machine in
  match kernel.Codegen.Kernel.level_plans with
  | [] ->
      measure_chain chain
        ~levels:(Arch.Machine.on_chip_levels machine)
        ~perm:kernel.Codegen.Kernel.perm ~tiling:kernel.Codegen.Kernel.tiling
        ()
  | lps ->
      (* Outermost plan first, nesting inward — the generated loop
         structure. *)
      let plan_levels =
        List.rev_map
          (fun (lp : Analytical.Planner.level_plan) ->
            ( lp.Analytical.Planner.plan.Analytical.Planner.perm,
              lp.Analytical.Planner.plan.Analytical.Planner.tiling ))
          lps
      in
      measure_hier chain
        ~levels:(Arch.Machine.on_chip_levels machine)
        ~plan_levels ()
