(* Doubly-linked recency list with a hash index.  The list head is the
   most recently used entry, the tail the eviction candidate. *)

type node = {
  key : string;
  mutable bytes : int;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  capacity_bytes : int;
  index : (string, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  mutable resident : int;
  mutable accesses : int;
  mutable hits : int;
  mutable bytes_in : float;
  mutable bytes_accessed : float;
}

type outcome = Hit | Miss

let create ~capacity_bytes =
  if capacity_bytes <= 0 then invalid_arg "Lru.create: non-positive capacity";
  {
    capacity_bytes;
    index = Hashtbl.create 1024;
    head = None;
    tail = None;
    resident = 0;
    accesses = 0;
    hits = 0;
    bytes_in = 0.0;
    bytes_accessed = 0.0;
  }

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let evict_one t =
  match t.tail with
  | None -> ()
  | Some victim ->
      unlink t victim;
      Hashtbl.remove t.index victim.key;
      t.resident <- t.resident - victim.bytes

let access ?(charge = true) t ~key ~bytes =
  if bytes < 0 then invalid_arg "Lru.access: negative size";
  t.accesses <- t.accesses + 1;
  t.bytes_accessed <- t.bytes_accessed +. float_of_int bytes;
  match Hashtbl.find_opt t.index key with
  | Some node ->
      t.hits <- t.hits + 1;
      (* A tile's footprint can grow between accesses (different block
         shapes touching the same region); account the delta. *)
      if bytes > node.bytes then begin
        t.bytes_in <- t.bytes_in +. float_of_int (bytes - node.bytes);
        if bytes > t.capacity_bytes then begin
          (* Grown beyond the whole cache: stream it out. *)
          unlink t node;
          Hashtbl.remove t.index node.key;
          t.resident <- t.resident - node.bytes
        end
        else begin
          t.resident <- t.resident + (bytes - node.bytes);
          node.bytes <- bytes;
          (* Refresh recency first so the eviction loop below drains the
             other entries and terminates with just this node resident. *)
          unlink t node;
          push_front t node;
          let is_tail n = match t.tail with Some tl -> tl == n | None -> false in
          while t.resident > t.capacity_bytes && not (is_tail node) do
            evict_one t
          done
        end
      end
      else begin
        unlink t node;
        push_front t node
      end;
      Hit
  | None ->
      if charge then t.bytes_in <- t.bytes_in +. float_of_int bytes;
      if bytes <= t.capacity_bytes then begin
        while t.resident + bytes > t.capacity_bytes do
          evict_one t
        done;
        let node = { key; bytes; prev = None; next = None } in
        Hashtbl.add t.index key node;
        push_front t node;
        t.resident <- t.resident + bytes
      end;
      Miss

let accesses t = t.accesses
let hits t = t.hits
let misses t = t.accesses - t.hits
let bytes_in t = t.bytes_in
let bytes_accessed t = t.bytes_accessed

let hit_rate t =
  if t.accesses = 0 then 1.0 else float_of_int t.hits /. float_of_int t.accesses

let resident_bytes t = t.resident

let clear t =
  Hashtbl.reset t.index;
  t.head <- None;
  t.tail <- None;
  t.resident <- 0;
  t.accesses <- 0;
  t.hits <- 0;
  t.bytes_in <- 0.0;
  t.bytes_accessed <- 0.0
