(** A set-associative, line-granular cache model with per-set LRU
    replacement — the fine-grained validation counterpart of the
    tile-granular {!Lru} model.  Used by tests to check that the two
    agree on small traces, so the fast tile model can stand in for it on
    paper-sized problems. *)

type t
(** A mutable cache. *)

val create :
  capacity_bytes:int -> line_bytes:int -> ?ways:int -> unit -> t
(** [ways] defaults to 8.  Capacity must be a multiple of
    [line_bytes * ways]. *)

val access : t -> addr:int -> Lru.outcome
(** Touch one byte address. *)

val access_range : t -> addr:int -> bytes:int -> unit
(** Touch every line in [addr, addr+bytes). *)

val accesses : t -> int
(** Line-granular access count. *)

val misses : t -> int
(** Line fills. *)

val bytes_in : t -> float
(** [misses * line_bytes]. *)

val hit_rate : t -> float
(** [1 - misses/accesses] (1.0 when never accessed). *)
