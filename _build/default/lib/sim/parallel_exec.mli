(** Multicore numeric execution of fused kernels (OCaml 5 domains).

    The safely-parallel axes ([Analytical.Parallelism]) partition every
    stage's work and the chain's output into disjoint slices, so tasks
    can run on separate domains with no synchronisation: each task gets
    private copies of the intermediate tensors (the per-core halo
    buffers a real fused kernel allocates) and writes its disjoint slice
    of the shared outputs.

    This both demonstrates that the parallelism analysis is sound —
    results must equal the sequential execution bit-for-bit up to
    floating-point associativity inside a task, which is preserved
    because tasks never share accumulations — and speeds up the numeric
    checker on multicore hosts. *)

val run_fused_parallel :
  ?domains:int -> Ir.Chain.t -> perm:string list ->
  tiling:Analytical.Tiling.t -> Exec.env -> unit
(** Execute the fused loop nest with tasks spread over [domains]
    (default: [Domain.recommended_domain_count], capped by the task
    count).  Semantics identical to [Exec.run_fused]. *)

val tasks_of : Ir.Chain.t -> Analytical.Tiling.t -> (string * (int * int)) list list
(** The per-task bounds: one entry per parallel block combination. *)
