(** A byte-capacity LRU cache over named objects (data tiles).

    Used as the "measured" counterpart of the analytical model: the
    execution engine replays a kernel's tile access trace against one
    LRU per memory level and counts the bytes each level pulls in —
    the simulator stand-in for the hardware traffic counters the paper
    profiles in Figure 8. *)

type t
(** A mutable cache. *)

type outcome = Hit | Miss

val create : capacity_bytes:int -> t
(** An empty cache.  Raises on non-positive capacity. *)

val access : ?charge:bool -> t -> key:string -> bytes:int -> outcome
(** Touch an object.  A hit refreshes recency; a miss evicts
    least-recently-used objects until the newcomer fits and inserts it.
    Objects larger than the whole capacity stream through: they count as
    misses but are not cached and evict nothing.  [charge:false] makes a
    miss allocate without adding to {!bytes_in} — the first touch of an
    on-chip scratch buffer, which arrives from nowhere. *)

val accesses : t -> int
(** Total number of {!access} calls. *)

val hits : t -> int
(** Accesses that hit. *)

val misses : t -> int
(** Accesses that missed. *)

val bytes_in : t -> float
(** Total bytes pulled in by misses — the traffic across this level's
    upstream link. *)

val bytes_accessed : t -> float
(** Total bytes touched (hits + misses) — the traffic this level serves
    downstream. *)

val hit_rate : t -> float
(** [hits / accesses] (1.0 when never accessed). *)

val resident_bytes : t -> int
(** Current occupancy. *)

val clear : t -> unit
(** Drop contents and statistics. *)
