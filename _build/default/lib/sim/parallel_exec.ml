let tasks_of (chain : Ir.Chain.t) tiling =
  let axes = Analytical.Parallelism.parallel_axes chain in
  List.fold_left
    (fun tasks axis ->
      let extent = Ir.Chain.extent_of chain axis in
      let tile = Analytical.Tiling.get tiling axis in
      let rec blocks acc s =
        if s >= extent then List.rev acc
        else blocks ((s, min extent (s + tile)) :: acc) (s + tile)
      in
      let ranges = blocks [] 0 in
      List.concat_map
        (fun task -> List.map (fun r -> (axis, r) :: task) ranges)
        tasks)
    [ [] ] axes

(* A task-private view of the environment: intermediates are fresh
   zeroed tensors (the task's halo buffers); everything else aliases the
   shared storage.  Tasks write disjoint slices of the shared tensors
   because their bounds partition the parallel axes, which index every
   stage's output. *)
let private_env (chain : Ir.Chain.t) (shared : Exec.env) =
  let env : Exec.env = Hashtbl.create 8 in
  let intermediates = Ir.Chain.intermediate_names chain in
  List.iter
    (fun name ->
      let t = Exec.tensor shared name in
      if List.mem name intermediates then
        Hashtbl.replace env name
          (Tensor.Dense.create ~dtype:(Tensor.Dense.dtype t)
             (Tensor.Dense.shape t))
      else Hashtbl.replace env name t)
    (Ir.Chain.tensor_names chain);
  env

let zero_outputs (chain : Ir.Chain.t) env =
  let produced =
    List.map
      (fun (s : Ir.Chain.stage) -> s.op.Ir.Operator.output.Ir.Operator.tensor)
      chain.stages
  in
  List.iter (fun name -> Tensor.Dense.fill (Exec.tensor env name) 0.0) produced

let run_fused_parallel ?domains (chain : Ir.Chain.t) ~perm ~tiling env =
  let tasks = tasks_of chain tiling in
  let n_tasks = List.length tasks in
  let n_domains =
    let d =
      Option.value domains ~default:(Domain.recommended_domain_count ())
    in
    Util.Ints.clamp ~lo:1 ~hi:(max 1 n_tasks) d
  in
  zero_outputs chain env;
  if n_domains = 1 then
    List.iter
      (fun bounds ->
        let task_env = private_env chain env in
        Exec.run_fused ~bounds ~zero:false chain ~perm ~tiling task_env)
      tasks
  else begin
    (* Round-robin the tasks over the domains. *)
    let chunks = Array.make n_domains [] in
    List.iteri
      (fun i task -> chunks.(i mod n_domains) <- task :: chunks.(i mod n_domains))
      tasks;
    let work chunk () =
      List.iter
        (fun bounds ->
          let task_env = private_env chain env in
          Exec.run_fused ~bounds ~zero:false chain ~perm ~tiling task_env)
        chunk
    in
    let spawned =
      Array.to_list
        (Array.map (fun chunk -> Domain.spawn (work chunk)) chunks)
    in
    List.iter Domain.join spawned
  end
