(** Summary statistics used by the evaluation harness. *)

val mean : float list -> float
(** Arithmetic mean.  Raises [Invalid_argument] on the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values. *)

val stddev : float list -> float
(** Population standard deviation. *)

val minimum : float list -> float
(** Smallest element.  Raises on the empty list. *)

val maximum : float list -> float
(** Largest element.  Raises on the empty list. *)

val r_squared : predicted:float list -> measured:float list -> float
(** Coefficient of determination of [predicted] against [measured]
    (1 - SS_res / SS_tot).  Lists must be the same non-empty length. *)

val pearson : float list -> float list -> float
(** Pearson correlation coefficient. *)

val linear_fit : float list -> float list -> float * float
(** [linear_fit xs ys] returns [(slope, intercept)] of the least-squares
    line through the points. *)
