(** Permutation enumeration for the inter-block reordering search. *)

val factorial : int -> int
(** [factorial n] for [0 <= n <= 20]. *)

val all : 'a list -> 'a list list
(** All permutations of a list, in a deterministic order.  The input is
    expected to be short (the paper's search spaces are at most 10!);
    raises [Invalid_argument] beyond 10 elements to guard against
    accidental explosions. *)

val all_arrays : 'a array -> 'a array list
(** Same as {!all} on arrays. *)

val interleavings : 'a list -> 'a list -> 'a list list
(** [interleavings xs ys] enumerates every merge of the two lists that
    preserves the relative order inside each list. *)

val rank_of : cmp:('a -> 'a -> int) -> 'a list -> int
(** Lexicographic rank of a permutation of distinct elements among all
    permutations of the same multiset (0-based). *)
