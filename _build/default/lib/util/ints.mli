(** Small integer arithmetic helpers used throughout the framework. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is [ceil (a / b)] for positive [b].
    Raises [Invalid_argument] if [b <= 0] or [a < 0]. *)

val clamp : lo:int -> hi:int -> int -> int
(** [clamp ~lo ~hi x] bounds [x] into the inclusive range [lo, hi].
    Raises [Invalid_argument] if [lo > hi]. *)

val pow : int -> int -> int
(** [pow b e] is [b] raised to the non-negative exponent [e]. *)

val gcd : int -> int -> int
(** Greatest common divisor of the absolute values. *)

val lcm : int -> int -> int
(** Least common multiple of the absolute values; [lcm 0 _ = 0]. *)

val divisors : int -> int list
(** All positive divisors of a positive integer, in increasing order. *)

val round_down_to_divisor : int -> int -> int
(** [round_down_to_divisor n x] is the largest divisor of [n] that is
    [<= max 1 x].  Useful for snapping tile sizes onto even splits. *)

val is_pow2 : int -> bool
(** Whether the argument is a positive power of two. *)

val prev_pow2 : int -> int
(** Largest power of two [<= n] for [n >= 1]. *)

val next_pow2 : int -> int
(** Smallest power of two [>= n] for [n >= 1]. *)

val sum : int list -> int
(** Sum of a list. *)

val prod : int list -> int
(** Product of a list ([1] for the empty list). *)
