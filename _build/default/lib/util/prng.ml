type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed = { state = mix (Int64.of_int seed) }
let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = mix (next_int64 t) }

let int t ~bound =
  if bound <= 0 then invalid_arg "Prng.int: non-positive bound";
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (next_int64 t) mask) in
  v mod bound

let float t =
  (* 53 random mantissa bits. *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0

let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)
let bool t = Int64.logand (next_int64 t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t ~bound:(Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
