(** Plain-text table rendering for the benchmark harness output. *)

type t
(** A table under construction. *)

val create : columns:string list -> t
(** A table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row; must match the column count. *)

val add_float_row : t -> string -> float list -> t
(** [add_float_row t label xs] appends [label] followed by each float
    formatted with 3 significant decimals; returns [t] for chaining. *)

val render : t -> string
(** Render with aligned columns and a header rule. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val to_csv : t -> string
(** Comma-separated rendering (header row first, cells escaped). *)
