let factorial n =
  if n < 0 || n > 20 then invalid_arg "Perm.factorial: out of range";
  let rec go acc i = if i > n then acc else go (acc * i) (i + 1) in
  go 1 2

let all items =
  if List.length items > 10 then
    invalid_arg "Perm.all: refusing to enumerate more than 10! permutations";
  (* Insert [x] at every position of [perm]. *)
  let rec inserts x = function
    | [] -> [ [ x ] ]
    | y :: rest as perm ->
        (x :: perm) :: List.map (fun p -> y :: p) (inserts x rest)
  in
  List.fold_left
    (fun perms x -> List.concat_map (inserts x) perms)
    [ [] ] items

let all_arrays arr = List.map Array.of_list (all (Array.to_list arr))

let rec interleavings xs ys =
  match (xs, ys) with
  | [], _ -> [ ys ]
  | _, [] -> [ xs ]
  | x :: xs', y :: ys' ->
      List.map (fun m -> x :: m) (interleavings xs' ys)
      @ List.map (fun m -> y :: m) (interleavings xs ys')

let rank_of ~cmp perm =
  (* Factorial-number-system ranking: each element contributes the count of
     strictly smaller elements to its right, weighted by (len rest)!. *)
  let rec rank acc = function
    | [] -> acc
    | x :: rest ->
        let smaller = List.length (List.filter (fun y -> cmp y x < 0) rest) in
        rank (acc + (smaller * factorial (List.length rest))) rest
  in
  rank 0 perm
