let check_non_empty name = function
  | [] -> invalid_arg (name ^ ": empty list")
  | _ -> ()

let mean xs =
  check_non_empty "Stats.mean" xs;
  List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean xs =
  check_non_empty "Stats.geomean" xs;
  List.iter
    (fun x -> if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value")
    xs;
  exp (mean (List.map log xs))

let stddev xs =
  let m = mean xs in
  let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
  sqrt var

let minimum xs =
  check_non_empty "Stats.minimum" xs;
  List.fold_left min infinity xs

let maximum xs =
  check_non_empty "Stats.maximum" xs;
  List.fold_left max neg_infinity xs

let r_squared ~predicted ~measured =
  if List.length predicted <> List.length measured then
    invalid_arg "Stats.r_squared: length mismatch";
  check_non_empty "Stats.r_squared" measured;
  let mean_m = mean measured in
  let ss_tot =
    List.fold_left (fun acc y -> acc +. ((y -. mean_m) ** 2.0)) 0.0 measured
  in
  let ss_res =
    List.fold_left2
      (fun acc p y -> acc +. ((y -. p) ** 2.0))
      0.0 predicted measured
  in
  if ss_tot = 0.0 then if ss_res = 0.0 then 1.0 else 0.0
  else 1.0 -. (ss_res /. ss_tot)

let pearson xs ys =
  if List.length xs <> List.length ys then
    invalid_arg "Stats.pearson: length mismatch";
  check_non_empty "Stats.pearson" xs;
  let mx = mean xs and my = mean ys in
  let cov =
    List.fold_left2 (fun acc x y -> acc +. ((x -. mx) *. (y -. my))) 0.0 xs ys
  in
  let sx = sqrt (List.fold_left (fun a x -> a +. ((x -. mx) ** 2.0)) 0.0 xs) in
  let sy = sqrt (List.fold_left (fun a y -> a +. ((y -. my) ** 2.0)) 0.0 ys) in
  if sx = 0.0 || sy = 0.0 then 0.0 else cov /. (sx *. sy)

let linear_fit xs ys =
  if List.length xs <> List.length ys then
    invalid_arg "Stats.linear_fit: length mismatch";
  check_non_empty "Stats.linear_fit" xs;
  let mx = mean xs and my = mean ys in
  let cov =
    List.fold_left2 (fun acc x y -> acc +. ((x -. mx) *. (y -. my))) 0.0 xs ys
  in
  let var = List.fold_left (fun a x -> a +. ((x -. mx) ** 2.0)) 0.0 xs in
  if var = 0.0 then (0.0, my)
  else
    let slope = cov /. var in
    (slope, my -. (slope *. mx))
