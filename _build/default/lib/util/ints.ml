let ceil_div a b =
  if b <= 0 then invalid_arg "Ints.ceil_div: non-positive divisor";
  if a < 0 then invalid_arg "Ints.ceil_div: negative dividend";
  (a + b - 1) / b

let clamp ~lo ~hi x =
  if lo > hi then invalid_arg "Ints.clamp: lo > hi";
  if x < lo then lo else if x > hi then hi else x

let pow b e =
  if e < 0 then invalid_arg "Ints.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (acc * b) (b * b) (e asr 1)
    else go acc (b * b) (e asr 1)
  in
  go 1 b e

let rec gcd a b =
  let a = abs a and b = abs b in
  if b = 0 then a else gcd b (a mod b)

let lcm a b = if a = 0 || b = 0 then 0 else abs (a * b) / gcd a b

let divisors n =
  if n <= 0 then invalid_arg "Ints.divisors: non-positive argument";
  let rec go i small large =
    if i * i > n then List.rev_append small large
    else if n mod i = 0 then
      let large = if i * i = n then large else (n / i) :: large in
      go (i + 1) (i :: small) large
    else go (i + 1) small large
  in
  go 1 [] []

let round_down_to_divisor n x =
  let x = max 1 x in
  let rec best acc = function
    | [] -> acc
    | d :: rest -> if d <= x then best d rest else acc
  in
  best 1 (divisors n)

let is_pow2 n = n > 0 && n land (n - 1) = 0

let prev_pow2 n =
  if n < 1 then invalid_arg "Ints.prev_pow2";
  let rec go p = if p * 2 > n then p else go (p * 2) in
  go 1

let next_pow2 n =
  if n < 1 then invalid_arg "Ints.next_pow2";
  if is_pow2 n then n else 2 * prev_pow2 n

let sum = List.fold_left ( + ) 0
let prod = List.fold_left ( * ) 1
