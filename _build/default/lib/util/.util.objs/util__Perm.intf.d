lib/util/perm.mli:
