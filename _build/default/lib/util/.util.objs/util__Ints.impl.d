lib/util/ints.ml: List
