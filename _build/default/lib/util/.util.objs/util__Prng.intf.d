lib/util/prng.mli:
