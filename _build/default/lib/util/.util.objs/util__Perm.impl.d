lib/util/perm.ml: Array List
