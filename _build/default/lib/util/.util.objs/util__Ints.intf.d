lib/util/ints.mli:
