lib/util/table.mli:
