lib/util/stats.mli:
