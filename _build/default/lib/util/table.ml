type t = { columns : string list; mutable rows : string list list }

let create ~columns = { columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: column count mismatch";
  t.rows <- row :: t.rows

let add_float_row t label xs =
  add_row t (label :: List.map (Printf.sprintf "%.3f") xs);
  t

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row)
    all;
  let pad i s = s ^ String.make (widths.(i) - String.length s) ' ' in
  let line row = String.concat "  " (List.mapi pad row) in
  let rule =
    String.concat "--"
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n" ((line t.columns :: rule :: List.map line rows) @ [])

let print t =
  print_string (render t);
  print_newline ()

let to_csv t =
  let escape cell =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
    else cell
  in
  let line row = String.concat "," (List.map escape row) in
  String.concat "\n" (line t.columns :: List.map line (List.rev t.rows)) ^ "\n"
