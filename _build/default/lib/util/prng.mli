(** Deterministic splittable pseudo-random number generator (SplitMix64).

    All stochastic parts of the framework (synthetic tensor data, the
    Ansor-like tuner, random tiling samples) draw from this generator so
    that every experiment is reproducible bit-for-bit. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** A fresh generator from a seed. *)

val copy : t -> t
(** An independent clone with identical future output. *)

val split : t -> t
(** A statistically independent child generator; advances the parent. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> bound:int -> int
(** Uniform integer in [0, bound).  Raises on [bound <= 0]. *)

val float : t -> float
(** Uniform float in [0, 1). *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform float in [lo, hi). *)

val bool : t -> bool
(** Fair coin. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
