type t = {
  name : string;
  capacity_bytes : int;
  link_bandwidth_gbps : float;
  line_bytes : int;
}

let make ~name ~capacity_bytes ~link_bandwidth_gbps ?(line_bytes = 64) () =
  if capacity_bytes <= 0 then invalid_arg "Level.make: non-positive capacity";
  if link_bandwidth_gbps <= 0.0 then
    invalid_arg "Level.make: non-positive bandwidth";
  { name; capacity_bytes; link_bandwidth_gbps; line_bytes }

let dram ~bandwidth_gbps =
  {
    name = "DRAM";
    capacity_bytes = max_int;
    link_bandwidth_gbps = bandwidth_gbps;
    line_bytes = 64;
  }

let is_dram t = t.capacity_bytes = max_int

let pp fmt t =
  if is_dram t then
    Format.fprintf fmt "%s(unbounded, %.0f GB/s)" t.name t.link_bandwidth_gbps
  else
    Format.fprintf fmt "%s(%d KiB, %.0f GB/s)" t.name
      (t.capacity_bytes / 1024) t.link_bandwidth_gbps
