lib/arch/machine.ml: Format Level List
