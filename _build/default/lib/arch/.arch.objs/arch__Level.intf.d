lib/arch/level.mli: Format
