lib/arch/roofline.ml: Float Machine
