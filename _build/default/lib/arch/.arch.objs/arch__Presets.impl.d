lib/arch/presets.ml: Level List Machine String
