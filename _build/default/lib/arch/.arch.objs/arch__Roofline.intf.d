lib/arch/roofline.mli: Machine
