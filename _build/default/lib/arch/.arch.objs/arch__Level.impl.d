lib/arch/level.ml: Format
