lib/arch/machine.mli: Format Level
