lib/arch/presets.mli: Machine
