(** Roofline helpers: deciding whether a kernel is compute- or
    memory-bound and estimating its execution time on a machine model. *)

type boundedness = Compute_bound | Memory_bound

val arithmetic_intensity : flops:float -> bytes:float -> float
(** FLOP per byte moved. *)

val classify : Machine.t -> flops:float -> bytes:float -> boundedness
(** Compare the kernel's arithmetic intensity against the machine's ridge
    point. *)

val time_seconds :
  Machine.t -> flops:float -> bytes:float -> ?efficiency:float -> unit ->
  float
(** Roofline execution-time estimate:
    [max (flops / (efficiency * peak), bytes / dram_bw)].
    [efficiency] (default 1.0) scales achievable compute throughput, e.g.
    for micro-kernel pipeline utilisation. *)

val attainable_tflops :
  Machine.t -> intensity:float -> float
(** The roofline curve itself: attainable TFLOPS at a given arithmetic
    intensity. *)

val boundedness_to_string : boundedness -> string
(** ["compute-bound"] or ["memory-bound"]. *)
