type boundedness = Compute_bound | Memory_bound

let arithmetic_intensity ~flops ~bytes =
  if bytes <= 0.0 then invalid_arg "Roofline.arithmetic_intensity: no bytes";
  flops /. bytes

let classify machine ~flops ~bytes =
  let ai = arithmetic_intensity ~flops ~bytes in
  if ai >= Machine.ridge_flop_per_byte machine then Compute_bound
  else Memory_bound

let time_seconds machine ~flops ~bytes ?(efficiency = 1.0) () =
  if efficiency <= 0.0 || efficiency > 1.0 then
    invalid_arg "Roofline.time_seconds: efficiency must be in (0, 1]";
  let compute = flops /. (efficiency *. Machine.peak_flops machine) in
  let memory = bytes /. (Machine.dram_bandwidth_gbps machine *. 1e9) in
  Float.max compute memory

let attainable_tflops machine ~intensity =
  let bw = Machine.dram_bandwidth_gbps machine *. 1e9 in
  Float.min (Machine.peak_flops machine) (intensity *. bw) /. 1e12

let boundedness_to_string = function
  | Compute_bound -> "compute-bound"
  | Memory_bound -> "memory-bound"
