(** One level of a memory hierarchy.

    Levels are ordered innermost (closest to the compute units) to
    outermost (DRAM).  [link_bandwidth_gbps] is the bandwidth of the link
    that feeds this level's data to the next *inner* level — the [bw_d]
    of the paper's Equation 2, so the cost of keeping level [d] busy is
    [DV_d / bw_d]. *)

type t = {
  name : string;  (** e.g. ["L1"], ["shared"], ["L0A"]. *)
  capacity_bytes : int;
      (** usable capacity for one computation block; [max_int] for DRAM. *)
  link_bandwidth_gbps : float;
      (** bandwidth (GB/s) from this level toward the compute units. *)
  line_bytes : int;  (** transfer granule (cache line / DMA burst). *)
}

val make :
  name:string -> capacity_bytes:int -> link_bandwidth_gbps:float ->
  ?line_bytes:int -> unit -> t
(** Construct a level; [line_bytes] defaults to 64. *)

val dram : bandwidth_gbps:float -> t
(** The unbounded outermost level. *)

val is_dram : t -> bool
(** Whether this is an unbounded level. *)

val pp : Format.formatter -> t -> unit
(** Human-readable one-liner. *)
