#!/usr/bin/env python3
"""Assert the chaos-smoke invariants over a loadgen chaos report.

Usage: check_chaos.py CHAOS_REPORT.json CHAOS.prom

The report comes from an open-loop run against a multi-worker fleet
with a fixed chaos schedule (--chaos ... --chaos-seed N) and client
retries on.  The smoke asserts the chaos contract (docs/CHAOS.md):

  * faults actually fired — a chaos smoke that injected nothing proves
    nothing;
  * every request was terminally answered: recovered via retry, shed
    with a typed retryable error, or failed with a typed non-retryable
    one — never stuck;
  * workers really died and were respawned by the supervisor;
  * the Prometheus exposition carries the per-worker lifecycle series
    and the chaos event counts.

The companion CI step then replays the surviving cache through
`chimera batch --verify strict`, which exits non-zero if any corrupt
plan was trusted.
"""

import json
import re
import sys


def fail(msg):
    print(f"check_chaos: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 3:
        fail(f"usage: {sys.argv[0]} CHAOS_REPORT CHAOS_PROM")
    with open(sys.argv[1]) as f:
        r = json.load(f)
    with open(sys.argv[2]) as f:
        prom = f.read()

    if r["offered"] == 0:
        fail("loadgen offered nothing")

    # Chaos actually happened.
    chaos = r.get("chaos", {})
    fired = sum(v for k, v in chaos.items() if k != "ticks")
    if fired == 0:
        fail("no chaos events fired — the schedule never triggered")
    if r["router"]["chaos_injected"] == 0:
        fail("no fault injections reached the router")

    # The terminal-answer invariant: nothing stuck, ever.
    if r["unanswered"] != 0:
        fail(f"{r['unanswered']} requests stuck without a terminal answer")
    if r["answered"] != r["offered"]:
        fail(f"{r['offered'] - r['answered']} requests unanswered")

    # Recovery machinery actually engaged.
    if r["router"]["worker_restarts"] == 0:
        fail("chaos killed workers but the supervisor restarted none")
    if r["retried"] == 0:
        fail("no client retries despite retryable chaos errors")
    if r["ok_full"] + r["degraded"] == 0:
        fail("nothing was ever serviced under chaos")

    # Lifecycle and chaos series reach the exposition.
    for pat in (
        r'chimera_fleet_worker_restarts_total\{worker="\d+"\}',
        r'chimera_fleet_worker_up\{worker="\d+"\}',
        r'chimera_fleet_worker_permanently_down\{worker="\d+"\}',
        r'chimera_chaos_events\{kind="kill"\}',
    ):
        if not re.search(pat, prom):
            fail(f"prometheus exposition lacks {pat}")

    print(
        "check_chaos: OK "
        f"(offered {r['offered']}, answered {r['answered']}, "
        f"retried {r['retried']}, recovered {r['recovered']}, "
        f"gave_up {r['gave_up']}, restarts {r['router']['worker_restarts']}, "
        f"faults {fired})"
    )


if __name__ == "__main__":
    main()
