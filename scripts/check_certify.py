#!/usr/bin/env python3
"""Gate the certify job: every served plan must carry a checked
optimality certificate.

Usage: check_certify.py CERTIFY.jsonl [CERTIFY.prom]

CERTIFY.jsonl is the output of
`chimera lint --workload all --arch all --certify --strict --json`:
one JSON object per workload x preset pair, each carrying an `ok`
flag, a `certificate` verdict and a `diagnostics` array (see
docs/CERTIFY.md).  The optional CERTIFY.prom is a Prometheus scrape
from a `--verify strict` fleet/loadgen run, used to confirm the
verdict counters are actually wired.

Asserts:

  * every row parsed, is ok, and carries a certificate verdict;
  * every verdict is `certified` or `conditional` -- `failed` means a
    forged/broken certificate shipped, `uncertified` means an
    analytical plan lost its certificate somewhere in the pipeline;
  * at least one row is fully `certified` (the gate is vacuous
    otherwise);
  * no row carries a certificate-error diagnostic (CHIM036-042) or a
    coverage failure (CHIM040) at any severity;
  * when a scrape is given: chimera_verify_certified_total > 0 and
    chimera_verify_failures == 0.
"""

import json
import re
import sys

CERT_ERROR = re.compile(r"^CHIM03[6-9]$|^CHIM04[0-2]$")


def fail(msg):
    print(f"check_certify: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_rows(path):
    rows = []
    with open(path) as f:
        for i, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as e:
                fail(f"{path}:{i}: not JSON: {e}")
    if not rows:
        fail(f"{path}: no rows")

    verdicts = {}
    for row in rows:
        tag = f"{row.get('workload')}/{row.get('arch')}"
        if not row.get("ok", False):
            fail(f"{tag}: not ok")
        verdict = row.get("certificate")
        if verdict is None:
            fail(f"{tag}: no certificate verdict (was --certify passed?)")
        if verdict not in ("certified", "conditional"):
            fail(f"{tag}: certificate verdict {verdict!r}")
        verdicts[verdict] = verdicts.get(verdict, 0) + 1
        for d in row.get("diagnostics", []):
            code = d.get("code", "")
            if CERT_ERROR.match(code):
                fail(f"{tag}: certificate diagnostic {code}: "
                     f"{d.get('message', '')}")
    if verdicts.get("certified", 0) == 0:
        fail("no fully certified row at all")
    return len(rows), verdicts


def prom_value(text, name):
    total = None
    for line in text.splitlines():
        if line.startswith("#") or not line.strip():
            continue
        m = re.match(r"^(\w+)(\{[^}]*\})?\s+([0-9eE.+-]+)$", line.strip())
        if m and m.group(1) == name:
            total = (total or 0.0) + float(m.group(3))
    return total


def check_prom(path):
    with open(path) as f:
        text = f.read()
    certified = prom_value(text, "chimera_verify_certified_total")
    if certified is None:
        fail(f"{path}: chimera_verify_certified_total missing")
    if certified <= 0:
        fail(f"{path}: chimera_verify_certified_total = {certified}")
    failures = prom_value(text, "chimera_verify_failures")
    if failures is not None and failures != 0:
        fail(f"{path}: chimera_verify_failures = {failures}")
    return certified


def main():
    if len(sys.argv) not in (2, 3):
        fail(f"usage: {sys.argv[0]} CERTIFY.jsonl [CERTIFY.prom]")
    n, verdicts = check_rows(sys.argv[1])
    census = ", ".join(f"{k}={v}" for k, v in sorted(verdicts.items()))
    print(f"check_certify: OK: {n} rows ({census})")
    if len(sys.argv) == 3:
        certified = check_prom(sys.argv[2])
        print(f"check_certify: OK: scrape certified_total = {certified:g}")


if __name__ == "__main__":
    main()
