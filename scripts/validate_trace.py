#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file produced by `chimera trace`.

Checks, per (pid, tid) event stream:
  * the file is well-formed JSON with a `traceEvents` array;
  * B/E events obey stack discipline (every E matches the name of the
    innermost open B, nothing left open at the end);
  * timestamps are non-negative and non-decreasing in array order;
  * the span names the compilation pipeline is expected to emit are all
    present (fingerprint, cache lookup, solve, codegen, verify).

Usage: validate_trace.py trace.json [--require NAME ...]
Exit code 0 on success, 1 with a diagnostic on the first violation.
"""

import argparse
import json
import sys

DEFAULT_REQUIRED = [
    "fingerprint",
    "cache.lookup",
    "solve",
    "order",
    "codegen",
    "verify",
]


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace")
    ap.add_argument(
        "--require",
        action="append",
        default=None,
        help="span name that must appear (repeatable); "
        "defaults to the pipeline phases",
    )
    args = ap.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {args.trace}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("no traceEvents array")

    stacks = {}  # (pid, tid) -> [name, ...]
    last_ts = {}  # (pid, tid) -> ts
    names = set()
    n_spans = 0

    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "M":
            continue
        if ph not in ("B", "E"):
            fail(f"event {i}: unexpected phase {ph!r}")
        for field in ("ts", "pid", "tid", "name"):
            if field not in ev:
                fail(f"event {i}: missing {field!r}")
        key = (ev["pid"], ev["tid"])
        ts = ev["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"event {i}: bad ts {ts!r}")
        if ts < last_ts.get(key, 0):
            fail(
                f"event {i}: ts went backwards on pid={key[0]} tid={key[1]} "
                f"({last_ts[key]} -> {ts})"
            )
        last_ts[key] = ts
        stack = stacks.setdefault(key, [])
        if ph == "B":
            stack.append(ev["name"])
            names.add(ev["name"])
            n_spans += 1
        else:
            if not stack:
                fail(f"event {i}: E {ev['name']!r} with no open B")
            top = stack.pop()
            if top != ev["name"]:
                fail(
                    f"event {i}: E {ev['name']!r} closes B {top!r} "
                    f"(not well-nested)"
                )

    for key, stack in stacks.items():
        if stack:
            fail(f"pid={key[0]} tid={key[1]}: spans left open: {stack}")

    required = args.require if args.require is not None else DEFAULT_REQUIRED
    missing = [n for n in required if n not in names]
    if missing:
        fail(f"required span name(s) absent: {missing} (have {sorted(names)})")

    print(
        f"validate_trace: OK: {n_spans} spans, "
        f"{len(stacks)} thread(s), names {sorted(names)}"
    )


if __name__ == "__main__":
    main()
