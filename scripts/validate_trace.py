#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file produced by `chimera trace`
(single-process mode) or by the fleet's flight recorder (`--fleet`).

Checks, per (pid, tid) event stream:
  * the file is well-formed JSON with a `traceEvents` array;
  * B/E events obey stack discipline (every E matches the name of the
    innermost open B, nothing left open at the end);
  * timestamps are non-negative and non-decreasing in array order;
  * the span names the compilation pipeline is expected to emit are all
    present (fingerprint, cache lookup, solve, codegen, verify).

With `--fleet` the file is a multi-process distributed-trace dump and
the checks extend to:
  * every span carries `args.trace`/`args.sid` (the distributed-trace
    correlation fields);
  * every worker `request` span has `args.parent_sid` and it binds to
    a `fleet.request` span of the same trace in a *different* pid —
    the cross-process parent edge;
  * every `fleet.request` span carrying `args.parent_sid` binds to a
    `client.request` span of the same trace;
  * the dump spans more than one pid (router + at least one worker).

Usage: validate_trace.py trace.json [--fleet] [--require NAME ...]
Exit code 0 on success, 1 with a diagnostic on the first violation.
"""

import argparse
import json
import sys

DEFAULT_REQUIRED = [
    "fingerprint",
    "cache.lookup",
    "solve",
    "order",
    "codegen",
    "verify",
]

FLEET_REQUIRED = [
    "client.request",
    "fleet.request",
    "request",
]


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_fleet(spans):
    """Cross-process parent edges over the collected B spans."""
    by_trace = {}
    pids = set()
    for s in spans:
        trace = s["args"].get("trace")
        sid = s["args"].get("sid")
        if trace is None or sid is None:
            fail(
                f"fleet span {s['name']!r} (pid {s['pid']}) missing "
                f"args.trace/args.sid"
            )
        by_trace.setdefault(trace, []).append(s)
        pids.add(s["pid"])

    if len(pids) < 2:
        fail(f"fleet dump spans a single pid {sorted(pids)}; expected router + workers")

    n_edges = 0
    for trace, tspans in by_trace.items():
        for s in tspans:
            parent = s["args"].get("parent_sid")
            if s["name"] == "request":
                if parent is None:
                    fail(
                        f"trace {trace}: worker 'request' span has no "
                        f"args.parent_sid"
                    )
                anchors = [
                    a
                    for a in tspans
                    if a["name"] == "fleet.request" and a["args"]["sid"] == parent
                ]
                if not anchors:
                    fail(
                        f"trace {trace}: worker 'request' parent_sid={parent} "
                        f"binds to no 'fleet.request' span"
                    )
                if all(a["pid"] == s["pid"] for a in anchors):
                    fail(
                        f"trace {trace}: worker 'request' parent edge is not "
                        f"cross-process (pid {s['pid']})"
                    )
                n_edges += 1
            elif s["name"] == "fleet.request" and parent is not None:
                if not any(
                    a["name"] == "client.request" and a["args"]["sid"] == parent
                    for a in tspans
                ):
                    fail(
                        f"trace {trace}: 'fleet.request' parent_sid={parent} "
                        f"binds to no 'client.request' span"
                    )
                n_edges += 1
    return len(by_trace), len(pids), n_edges


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace")
    ap.add_argument(
        "--fleet",
        action="store_true",
        help="validate a multi-process flight-recorder dump: correlation "
        "args and cross-process parent edges",
    )
    ap.add_argument(
        "--require",
        action="append",
        default=None,
        help="span name that must appear (repeatable); "
        "defaults to the pipeline phases (or the client/router/worker "
        "request spans with --fleet)",
    )
    args = ap.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {args.trace}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("no traceEvents array")

    stacks = {}  # (pid, tid) -> [name, ...]
    last_ts = {}  # (pid, tid) -> ts
    names = set()
    spans = []  # B events, for the fleet checks
    n_spans = 0

    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "M":
            continue
        if ph not in ("B", "E"):
            fail(f"event {i}: unexpected phase {ph!r}")
        for field in ("ts", "pid", "tid", "name"):
            if field not in ev:
                fail(f"event {i}: missing {field!r}")
        key = (ev["pid"], ev["tid"])
        ts = ev["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"event {i}: bad ts {ts!r}")
        if ts < last_ts.get(key, 0):
            fail(
                f"event {i}: ts went backwards on pid={key[0]} tid={key[1]} "
                f"({last_ts[key]} -> {ts})"
            )
        last_ts[key] = ts
        stack = stacks.setdefault(key, [])
        if ph == "B":
            stack.append(ev["name"])
            names.add(ev["name"])
            n_spans += 1
            spans.append(
                {
                    "name": ev["name"],
                    "pid": ev["pid"],
                    "tid": ev["tid"],
                    "args": ev.get("args", {}),
                }
            )
        else:
            if not stack:
                fail(f"event {i}: E {ev['name']!r} with no open B")
            top = stack.pop()
            if top != ev["name"]:
                fail(
                    f"event {i}: E {ev['name']!r} closes B {top!r} "
                    f"(not well-nested)"
                )

    for key, stack in stacks.items():
        if stack:
            fail(f"pid={key[0]} tid={key[1]}: spans left open: {stack}")

    if args.require is not None:
        required = args.require
    elif args.fleet:
        required = FLEET_REQUIRED
    else:
        required = DEFAULT_REQUIRED
    missing = [n for n in required if n not in names]
    if missing:
        fail(f"required span name(s) absent: {missing} (have {sorted(names)})")

    fleet_note = ""
    if args.fleet:
        n_traces, n_pids, n_edges = check_fleet(spans)
        fleet_note = (
            f", {n_traces} trace(s) across {n_pids} pid(s), "
            f"{n_edges} cross-process edge(s)"
        )

    print(
        f"validate_trace: OK: {n_spans} spans, "
        f"{len(stacks)} thread(s), names {sorted(names)}{fleet_note}"
    )


if __name__ == "__main__":
    main()
