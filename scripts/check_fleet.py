#!/usr/bin/env python3
"""Assert the fleet-smoke invariants over two loadgen reports.

Usage: check_fleet.py REPORT_1W.json REPORT_4W.json FLEET.prom

The two reports come from identical open-loop runs (same rps, duration,
seed, jitter) against a single-worker and a four-worker fleet.  The
smoke asserts the fleet's contract:

  * every request got a typed answer (no hangs, no protocol errors);
  * overload surfaced as shedding AND degradation, not as failures;
  * four workers serviced strictly more load than one;
  * the Prometheus exposition merges worker histograms losslessly and
    carries per-worker labelled series plus the router's own counters.
"""

import json
import re
import sys


def fail(msg):
    print(f"check_fleet: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    with open(path) as f:
        return json.load(f)


def check_answered(tag, r):
    if r["answered"] != r["offered"]:
        fail(f"{tag}: {r['offered'] - r['answered']} requests unanswered")
    if r["unanswered"] != 0:
        fail(f"{tag}: unanswered = {r['unanswered']}")
    if r["failed"] != 0:
        fail(f"{tag}: {r['failed']} typed failures")
    if r["router"]["protocol_errors"] != 0:
        fail(f"{tag}: {r['router']['protocol_errors']} protocol errors")
    if r["offered"] == 0:
        fail(f"{tag}: loadgen offered nothing")


def serviced(r):
    """Requests that got a real plan (full or degraded), not a shed."""
    return r["ok_full"] + r["degraded"]


def main():
    if len(sys.argv) != 4:
        fail(f"usage: {sys.argv[0]} REPORT_1W REPORT_4W FLEET_PROM")
    one, four, prom_path = sys.argv[1], sys.argv[2], sys.argv[3]
    r1, r4 = load(one), load(four)

    check_answered("1-worker", r1)
    check_answered("4-worker", r4)

    # Saturation must surface as load shedding and ladder degradation.
    if r4["shed"] == 0:
        fail("4-worker run shed nothing: the smoke did not saturate")
    if r4["degraded"] == 0:
        fail("4-worker run degraded nothing: soft admission band inert")
    if r4["router"]["admission_degraded"] == 0:
        fail("router injected no deadlines")

    s1, s4 = serviced(r1), serviced(r4)
    if not s4 > 1.2 * s1:
        fail(
            f"4 workers serviced {s4} vs {s1} for one: "
            "no throughput win from sharding"
        )
    print(f"check_fleet: serviced 1w={s1} 4w={s4}  "
          f"shed 1w={r1['shed']} 4w={r4['shed']}  "
          f"degraded 4w={r4['degraded']}")

    # Fleet-wide latency quantiles must come from the merged stream.
    lat = r4["latency_ms"]
    for q in ("p50", "p90", "p99"):
        if not (isinstance(lat[q], (int, float)) and lat[q] >= 0):
            fail(f"latency {q} missing or negative")
    if lat["p99"] < lat["p50"]:
        fail("p99 below p50: quantiles inconsistent")

    with open(prom_path) as f:
        prom = f.read()

    # Merged (unlabelled) series, per-worker labelled series for every
    # slot, and the router's own counters.
    if not re.search(r"^chimera_requests \d+$", prom, re.M):
        fail("no merged chimera_requests series")
    for w in range(4):
        if f'{{worker="{w}"}}' not in prom:
            fail(f"no per-worker series for worker {w}")
    m = re.search(r"^chimera_fleet_workers (\d+)$", prom, re.M)
    if not m or int(m.group(1)) != 4:
        fail("chimera_fleet_workers != 4")
    m = re.search(r"^chimera_fleet_shed (\d+)$", prom, re.M)
    if not m or int(m.group(1)) == 0:
        fail("chimera_fleet_shed missing or zero")
    if not re.search(r"^chimera_solve_ms_bucket\{le=", prom, re.M):
        fail("no merged solve histogram buckets")

    # The merged solve histogram's cumulative buckets must be
    # monotonically non-decreasing (a broken merge shows up here).
    cum = [
        int(v)
        for v in re.findall(r'^chimera_solve_ms_bucket\{le="[^"]*"\} (\d+)$',
                            prom, re.M)
    ]
    if not cum:
        fail("no unlabelled solve buckets")
    if any(b < a for a, b in zip(cum, cum[1:])):
        fail("merged solve buckets not cumulative")

    # Client-side latency histogram covers every answer.
    m = re.search(r"^chimera_loadgen_latency_ms_count (\d+)$", prom, re.M)
    if not m or int(m.group(1)) != r4["answered"]:
        fail("loadgen latency histogram does not cover every answer")

    print("check_fleet: OK")


if __name__ == "__main__":
    main()
