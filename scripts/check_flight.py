#!/usr/bin/env python3
"""Check the tail-sampler invariant on a flight-recorder dump.

The flight recorder (`chimera fleet --flight-dir`, `chimera loadgen
--trace-out`, or the `cmd:flight` verb) must retain *every* flagged
trace — slow, errored, shed, deadline, degraded, retried,
chaos-affected — while probabilistically sampling healthy ones.  This
script asserts that from the dump's own `sampler` counters:

  * `flagged_evicted == 0` — no interesting trace was pushed out;
  * `flagged == flagged_retained` — every flagged trace is in the dump;
  * every trace id listed in `flags` has span events in `traceEvents`.

With `--report loadgen.json` (a `chimera loadgen --json` report) it
also cross-checks that the sampler flagged at least as many traces as
the run produced non-ok or degraded-or-recovered logical requests —
each of those owns a distinct distributed trace, and each must have
been flagged.

Usage: check_flight.py flight.json [--report loadgen.json]
Exit code 0 on success, 1 with a diagnostic on the first violation.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_flight: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("flight")
    ap.add_argument(
        "--report",
        default=None,
        help="loadgen --json report to cross-check flagged counts against",
    )
    args = ap.parse_args()

    doc = load(args.flight)
    sampler = doc.get("sampler")
    if not isinstance(sampler, dict):
        fail("no 'sampler' counters object in the dump")
    for key in (
        "traces_seen",
        "flagged",
        "flagged_retained",
        "flagged_evicted",
        "sampled_retained",
        "sampled_evicted",
        "passed",
    ):
        if not isinstance(sampler.get(key), int):
            fail(f"sampler counter {key!r} missing or not an integer")

    if sampler["flagged_evicted"] != 0:
        fail(
            f"{sampler['flagged_evicted']} flagged trace(s) were evicted — "
            f"the tail-sampling retention guarantee is broken"
        )
    if sampler["flagged"] != sampler["flagged_retained"]:
        fail(
            f"flagged={sampler['flagged']} but "
            f"flagged_retained={sampler['flagged_retained']}"
        )

    flags = doc.get("flags")
    if not isinstance(flags, dict):
        fail("no 'flags' object in the dump")
    n_flagged_traces = sum(1 for v in flags.values() if v)
    if n_flagged_traces != sampler["flagged"]:
        fail(
            f"'flags' lists {n_flagged_traces} flagged trace(s) but the "
            f"sampler says {sampler['flagged']}"
        )

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("no traceEvents array")
    dumped = {
        ev.get("args", {}).get("trace")
        for ev in events
        if ev.get("ph") == "B"
    }
    for trace_id in flags:
        if trace_id not in dumped:
            fail(f"retained trace {trace_id} has no span events in the dump")

    if args.report is not None:
        report = load(args.report)
        for key in ("shed", "rejected", "failed", "degraded", "recovered"):
            if not isinstance(report.get(key), int):
                fail(f"report counter {key!r} missing or not an integer")
        # Each terminally non-ok, degraded, or retried-then-recovered
        # logical request owns a distinct distributed trace, and each
        # must have been flagged (shed/failed/deadline/degraded/retried).
        floor = (
            report["shed"]
            + report["rejected"]
            + report["failed"]
            + report["degraded"]
            + report["recovered"]
        )
        if sampler["flagged"] < floor:
            fail(
                f"sampler flagged {sampler['flagged']} trace(s) but the run "
                f"produced {floor} non-ok/degraded/recovered request(s) — "
                f"some interesting traces were never flagged"
            )

    print(
        f"check_flight: OK: {sampler['flagged']} flagged trace(s) all "
        f"retained, {sampler['sampled_retained']} healthy sample(s), "
        f"{sampler['traces_seen']} seen"
    )


if __name__ == "__main__":
    main()
