#!/usr/bin/env python3
"""Assert the disabled-tracing overhead bound from the obs bench JSON.

Reads the JSON written by `dune exec bench/main.exe -- obs --json FILE`
and fails if any workload's estimated disabled-mode overhead
(span-call count x measured ns-per-disabled-call / plan wall time)
exceeds the budget (default 2%).

Usage: check_overhead.py obs-bench.json [--max-pct 2.0]
"""

import argparse
import json
import sys


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("bench_json")
    ap.add_argument("--max-pct", type=float, default=2.0)
    args = ap.parse_args()

    with open(args.bench_json) as f:
        doc = json.load(f)

    records = [
        r
        for r in doc.get("records", [])
        if r.get("section") == "obs" and r.get("name") == "overhead"
    ]
    if not records:
        print("check_overhead: FAIL: no obs overhead records", file=sys.stderr)
        sys.exit(1)

    bad = False
    for r in records:
        pct = r["disabled_overhead_pct"]
        verdict = "OK" if pct < args.max_pct else "FAIL"
        bad = bad or pct >= args.max_pct
        print(
            f"check_overhead: {verdict}: {r['workload']}: "
            f"disabled overhead {pct:.4f}% "
            f"({r['spans']} span sites over {r['disabled_ms']:.2f} ms) "
            f"< {args.max_pct}%"
        )
    sys.exit(1 if bad else 0)


if __name__ == "__main__":
    main()
