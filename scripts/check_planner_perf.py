#!/usr/bin/env python3
"""Gate the planner benchmark: the batched engine's speed, the
certificate checker's overhead, and the tie-aware pruning must all
hold on every run.

Usage: check_planner_perf.py BENCH_planner.json
           [--min-geomean 18] [--max-cert-pct 5] [--max-conv-ms 40]

BENCH_planner.json is the output of
`bench/main.exe planner --json ...`: one record per workload x preset
pair (ref/fast latencies, prune accounting, certificate-check cost)
plus a summary record (geomeans, cert aggregate, calibration fits,
allocation counters).

Asserts:

  * geomean cold-plan speedup >= --min-geomean (paper-scale wins, not
    a lucky row);
  * every conv row plans in under --max-conv-ms (the interactive
    budget; conv rows are the slow family);
  * the independent certificate check costs < --max-cert-pct of the
    aggregate cold-plan time it certifies;
  * every GEMM row pruned at least one order -- GEMM boxes price to
    exact DV ties, so pruning there proves the tie-aware gate works;
  * the per-preset calibration fit never regresses the raw model
    error (the fitter keeps identity as a candidate);
  * the allocation counters are present (the bench itself enforces
    their bounds and aborts the run on a regression).
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_planner_perf: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("bench_json")
    ap.add_argument("--min-geomean", type=float, default=18.0)
    ap.add_argument("--max-cert-pct", type=float, default=5.0)
    ap.add_argument("--max-conv-ms", type=float, default=40.0)
    args = ap.parse_args()

    with open(args.bench_json) as f:
        doc = json.load(f)
    records = doc.get("records", [])
    rows = [r for r in records if r.get("family") in ("gemm", "conv")]
    summaries = [r for r in records if r.get("name") == "summary"]
    if not rows:
        fail("no per-workload rows")
    if len(summaries) != 1:
        fail(f"expected exactly one summary record, got {len(summaries)}")
    summary = summaries[0]

    gm = summary.get("geomean_speedup")
    if gm is None:
        fail("summary carries no geomean_speedup")
    if gm < args.min_geomean:
        fail(f"geomean speedup {gm:.1f}x < {args.min_geomean:g}x")

    cert = summary.get("cert_check_aggregate_pct")
    if cert is None:
        fail("summary carries no cert_check_aggregate_pct")
    if cert >= args.max_cert_pct:
        fail(f"certificate check at {cert:.2f}% of cold-plan time "
             f"(budget < {args.max_cert_pct:g}%)")

    slow_conv = [(r["name"], r["fast_ms"])
                 for r in rows
                 if r.get("family") == "conv"
                 and r.get("fast_ms", 0.0) >= args.max_conv_ms]
    if slow_conv:
        worst = max(slow_conv, key=lambda nv: nv[1])
        fail(f"{len(slow_conv)} conv row(s) at or over {args.max_conv_ms:g} "
             f"ms (worst {worst[0]} at {worst[1]:.1f} ms)")

    unpruned_gemm = [r["name"] for r in rows
                     if r.get("family") == "gemm"
                     and r.get("perms_pruned", 0) <= 0]
    if unpruned_gemm:
        fail("tie-aware pruning never fired on GEMM row(s): "
             + ", ".join(unpruned_gemm))

    calib = []
    for key in sorted(summary):
        if not key.endswith("_fitted_rel_err"):
            continue
        preset = key[len("calib_"):-len("_fitted_rel_err")]
        fitted = summary[key]
        raw = summary.get(f"calib_{preset}_raw_rel_err")
        if raw is not None and fitted > raw + 1e-9:
            fail(f"calibration fit for {preset} regresses the raw model: "
                 f"{fitted:.4f} > {raw:.4f}")
        calib.append(f"{preset} {100 * fitted:.1f}%"
                     + ("" if raw is None else f" (raw {100 * raw:.1f}%)"))
    if not calib:
        fail("summary carries no calibration fit")

    for counter in ("alloc_words_per_eval_batched_G1",
                    "alloc_words_per_eval_reference_G1"):
        if counter not in summary:
            fail(f"summary carries no {counter} (allocation accounting "
                 "was skipped?)")

    conv_ms = [r["fast_ms"] for r in rows if r.get("family") == "conv"]
    print(f"check_planner_perf: OK: {len(rows)} rows, geomean {gm:.1f}x, "
          f"cert check {cert:.2f}%, worst conv {max(conv_ms):.1f} ms, "
          f"calibration error " + "; ".join(calib))


if __name__ == "__main__":
    main()
